//! Strategies: composable recipes for generating random values.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred`, retrying with fresh draws.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, pred }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 10000 consecutive values", self.reason);
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// -- range strategies --------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        // 53 uniform mantissa bits in [0, 1).
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + frac * (self.end - self.start)
    }
}

// -- tuple strategies --------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
