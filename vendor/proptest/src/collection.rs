//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length specification: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange { min: r.start, max: r.end }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `elem` and whose length is
/// drawn uniformly from `size` (a `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { elem, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
