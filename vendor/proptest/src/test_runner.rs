//! The deterministic case runner behind `proptest!`.

use crate::strategy::Strategy;
use std::fmt;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A test-case-level failure (distinct from a panic).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be discarded (unused by this stand-in's combinators
    /// but part of the public surface).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection from a message.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Hashes the test name into a per-test seed so distinct tests explore
/// distinct streams while every run of the same test is identical.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `body` against `config.cases` generated inputs, panicking with the
/// offending input on the first failure.
pub fn run_cases<S, F>(config: ProptestConfig, strategy: S, name: &str, body: F)
where
    S: Strategy,
    S::Value: fmt::Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::new(seed_for(name));
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        let repr = format!("{value:?}");
        match body(value) {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {case}/{}:\n{msg}\ninput: {repr}",
                       config.cases);
            }
        }
    }
}
