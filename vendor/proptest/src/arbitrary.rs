//! The `any::<T>()` strategy for types with a canonical random distribution.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range random distribution.
pub trait Arbitrary: Sized {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy producing arbitrary values of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + (rng.next_u64() % 95) as u8) as char
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}
