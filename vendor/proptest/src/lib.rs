//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/runner surface this workspace uses — `proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert*!`, `Just`, `any`, integer and
//! float range strategies, tuple strategies, `collection::vec`, `prop_map`,
//! and `prop_filter` — with a deterministic seeded runner. Failing cases are
//! reported with their generated input; there is no shrinking.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
    /// `prop::collection::vec(...)`-style paths resolve through this alias.
    pub use crate as prop;
}

/// Runs each `#[test]` body against many generated inputs.
///
/// Supports an optional `#![proptest_config(...)]` header and any number of
/// test functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run_cases(
                config,
                strategy,
                stringify!($name),
                |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Defines a function returning a composed strategy, mirroring
/// `proptest::prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)(
            $($arg:ident in $strat:expr),+ $(,)?
        ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                    stringify!($left), stringify!($right), l, r,
                    ::std::format!($($fmt)*),
                ),
            ));
        }
    }};
}
