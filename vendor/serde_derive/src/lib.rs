//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the simplified `serde::Serialize` / `serde::Deserialize`
//! traits (a `Value`-tree data model rather than the real crate's visitor
//! architecture). The macro parses the item's token stream directly — no
//! `syn`/`quote` — which is enough because this workspace derives only on
//! non-generic structs and enums without `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated Serialize impl did not parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated Deserialize impl did not parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

enum Fields {
    /// Named fields of a braced struct / struct variant.
    Named(Vec<String>),
    /// Field count of a tuple struct / tuple variant.
    Tuple(usize),
    /// No payload.
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, doc comments) and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in does not support generic type `{name}`");
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, got {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Extracts field names from the token stream of a braced field list,
/// skipping attributes, visibility, and type expressions (commas inside
/// angle brackets or nested groups do not split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = toks.next() else { break };
        let TokenTree::Ident(fname) = tree else {
            panic!("serde_derive: expected field name, got {tree:?}");
        };
        fields.push(fname.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        skip_type_until_comma(&mut toks);
    }
    fields
}

/// Advances past a type expression, stopping after the comma that ends it
/// (or at end of stream). Tracks `<`/`>` depth so commas inside generics
/// don't terminate early; parenthesized tuples arrive as single groups.
fn skip_type_until_comma(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle: i32 = 0;
    for tree in toks.by_ref() {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut count = 0;
    while toks.peek().is_some() {
        count += 1;
        // Leading visibility/attributes are consumed by the type skipper.
        skip_type_until_comma(&mut toks);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip variant attributes.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let Some(tree) = toks.next() else { break };
        let TokenTree::Ident(vname) = tree else {
            panic!("serde_derive: expected variant name, got {tree:?}");
        };
        let name = vname.to_string();
        let mut fields = Fields::Unit;
        match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                fields = Fields::Named(parse_named_fields(g.stream()));
                toks.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                fields = Fields::Tuple(count_tuple_fields(g.stream()));
                toks.next();
            }
            _ => {}
        }
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => skip_type_until_comma(&mut toks),
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {}
            other => panic!("serde_derive: unexpected token after variant: {other:?}"),
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> =
                        (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n    \
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from({vn:?})),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => \
                             ::serde::variant({vn:?}, ::serde::Serialize::to_value(f0)),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::variant({vn:?}, \
                                 ::serde::Value::Array(::std::vec![{}])),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let entries: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::variant({vn:?}, \
                                 ::serde::Value::Object(::std::vec![{}])),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n    \
                 fn to_value(&self) -> ::serde::Value {{\n        \
                 match self {{\n            {}\n        }}\n    }}\n}}",
                arms.join("\n            ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::obj_get(v, {f:?})?)?"
                            )
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(::serde::arr_get(v, {i})?)?"
                            )
                        })
                        .collect();
                    format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n    \
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => return ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{vn:?} => return ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(content)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         ::serde::arr_get(content, {i})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => return ::std::result::Result::Ok(\
                                 {name}::{vn}({})),",
                                inits.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::obj_get(content, {f:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => return ::std::result::Result::Ok(\
                                 {name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n    \
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n        \
                 if let ::serde::Value::Str(s) = v {{\n            \
                 match s.as_str() {{\n                {}\n                _ => {{}}\n            }}\n        }}\n        \
                 if let ::std::option::Option::Some((tag, content)) = ::serde::single_entry(v) {{\n            \
                 let _ = content;\n            \
                 match tag {{\n                {}\n                _ => {{}}\n            }}\n        }}\n        \
                 ::std::result::Result::Err(::serde::DeError::msg(\
                 ::std::format!(\"invalid value for enum {name}\")))\n    }}\n}}",
                unit_arms.join("\n                "),
                data_arms.join("\n                ")
            )
        }
    }
}
