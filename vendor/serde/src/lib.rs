//! Offline stand-in for `serde`.
//!
//! Instead of the real crate's visitor-based architecture, this stand-in
//! serializes through an owned [`Value`] tree: `Serialize` lowers a type to
//! a `Value`, `Deserialize` rebuilds it from one. `serde_json` (the sibling
//! stand-in) renders and parses that tree. The derive macros generate impls
//! of these simplified traits, and the external representation matches real
//! serde's JSON conventions (structs as objects, unit enum variants as
//! strings, data variants as single-key objects) so persisted results stay
//! readable.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Error produced when a [`Value`] cannot be converted back into a type.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Builds an error from a message.
    pub fn msg(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Converts `self` into the serialization tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Attempts to rebuild `Self` from the serialization tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// -- helpers used by derive-generated code ----------------------------------

/// Wraps an enum variant payload as `{"Name": value}`.
pub fn variant(name: &str, value: Value) -> Value {
    Value::Object(vec![(name.to_string(), value)])
}

/// Looks up a field in an object `Value`.
pub fn obj_get<'a>(v: &'a Value, name: &str) -> Result<&'a Value, DeError> {
    match v {
        Value::Object(entries) => entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::msg(format!("missing field `{name}`"))),
        other => Err(DeError::msg(format!("expected object with field `{name}`, got {other:?}"))),
    }
}

/// Indexes into an array `Value`.
pub fn arr_get(v: &Value, idx: usize) -> Result<&Value, DeError> {
    match v {
        Value::Array(items) => items
            .get(idx)
            .ok_or_else(|| DeError::msg(format!("missing tuple element {idx}"))),
        other => Err(DeError::msg(format!("expected array, got {other:?}"))),
    }
}

/// If `v` is a single-entry object, returns its key and payload
/// (the externally-tagged enum representation).
pub fn single_entry(v: &Value) -> Option<(&str, &Value)> {
    match v {
        Value::Object(entries) if entries.len() == 1 => {
            Some((entries[0].0.as_str(), &entries[0].1))
        }
        _ => None,
    }
}

// -- primitive impls ---------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::U64(x) => x,
                    Value::I64(x) if x >= 0 => x as u64,
                    ref other => {
                        return Err(DeError::msg(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::I64(x) => x,
                    Value::U64(x) => i64::try_from(x)
                        .map_err(|_| DeError::msg(format!("integer {x} out of range")))?,
                    ref other => {
                        return Err(DeError::msg(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            ref other => Err(DeError::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($($t::from_value(arr_get(v, $i)?)?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
