//! Minimal offline stand-in for the `rand` crate.
//!
//! Covers exactly the API surface this workspace uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over half-open
//! integer ranges. The generator is xoshiro256++ seeded through SplitMix64,
//! which matches the statistical quality (not the exact stream) of the real
//! crate's `SmallRng`. Streams are deterministic for a given seed, which is
//! the property the fault-sampling code relies on.

/// Random number generator implementations.
pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small {
    use crate::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 to spread a 64-bit seed over the full 256-bit state.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit output interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (matching the real `rand` crate).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(0u64..0);
    }
}
