//! Offline stand-in for `serde_json`: renders and parses the simplified
//! [`serde::Value`] tree as standard JSON text.

use serde::Value;
use std::fmt;

/// JSON serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// -- writer ------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// -- parser ------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::msg(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: u64,
        y: i32,
        label: String,
        weight: f64,
        tags: Vec<(String, u64)>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Dot,
        Circle(u32),
        Rect { w: u64, h: u64 },
    }

    #[test]
    fn struct_roundtrip() {
        let p = Point {
            x: 7,
            y: -3,
            label: "a \"quoted\"\nname".to_string(),
            weight: 2.59e-5,
            tags: vec![("k".to_string(), 1)],
        };
        let json = crate::to_string(&p).unwrap();
        let back: Point = crate::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn enum_roundtrip() {
        for s in [Shape::Dot, Shape::Circle(9), Shape::Rect { w: 3, h: 4 }] {
            let json = crate::to_string(&s).unwrap();
            let back: Shape = crate::from_str(&json).unwrap();
            assert_eq!(s, back);
        }
    }

    #[test]
    fn unit_variant_renders_as_string() {
        assert_eq!(crate::to_string(&Shape::Dot).unwrap(), "\"Dot\"");
    }
}
