//! Offline stand-in for `criterion`.
//!
//! Measures real wall-clock time with a warm-up phase and a fixed measurement
//! window, prints one line per benchmark, and writes each benchmark group's
//! results to `BENCH_<group>.json` at the workspace root so performance can
//! be tracked across commits.

use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units of work per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter rendering.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

/// One completed measurement.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    id: String,
    iters: u64,
    total: Duration,
    throughput: Option<Throughput>,
}

impl Record {
    fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the nominal number of samples (kept for API compatibility; this
    /// stand-in scales the measurement window rather than sampling).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), throughput: None }
    }

    /// Convenience for an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        let mut g = self.benchmark_group("default");
        g.bench_function(id, f);
        g.finish();
        self
    }

    fn run_one(
        &mut self,
        group: &str,
        id: &str,
        throughput: Option<Throughput>,
        mut routine: impl FnMut(&mut Bencher),
    ) {
        let mut b = Bencher {
            mode: Mode::WarmUp,
            window: self.warm_up_time,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        b.mode = Mode::Measure;
        b.window = self.measurement_time;
        b.iters = 0;
        b.elapsed = Duration::ZERO;
        routine(&mut b);
        let rec = Record {
            group: group.to_string(),
            id: id.to_string(),
            iters: b.iters,
            total: b.elapsed,
            throughput,
        };
        let per_iter = rec.ns_per_iter();
        let thrpt = match throughput {
            Some(Throughput::Elements(n)) => {
                format!(" thrpt: {:.3} Melem/s", n as f64 / per_iter * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(" thrpt: {:.3} MiB/s", n as f64 / per_iter * 1e9 / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!(
            "{group}/{id}: {} per iter ({} iters in {:.3}s){thrpt}",
            fmt_ns(per_iter),
            rec.iters,
            rec.total.as_secs_f64(),
        );
        self.records.push(rec);
    }

    /// Writes `BENCH_<group>.json` files for everything measured so far.
    /// Called automatically by `criterion_group!`.
    pub fn final_summary(&mut self) {
        let root = workspace_root();
        let mut groups: Vec<String> = Vec::new();
        for r in &self.records {
            if !groups.contains(&r.group) {
                groups.push(r.group.clone());
            }
        }
        for group in groups {
            let mut json = String::from("{\n");
            json.push_str(&format!("  \"group\": \"{group}\",\n  \"benchmarks\": [\n"));
            let members: Vec<&Record> =
                self.records.iter().filter(|r| r.group == group).collect();
            for (i, r) in members.iter().enumerate() {
                let thrpt = match r.throughput {
                    Some(Throughput::Elements(n)) => format!(
                        ", \"elements_per_sec\": {:.1}",
                        n as f64 / r.ns_per_iter() * 1e9
                    ),
                    Some(Throughput::Bytes(n)) => {
                        format!(", \"bytes_per_sec\": {:.1}", n as f64 / r.ns_per_iter() * 1e9)
                    }
                    None => String::new(),
                };
                json.push_str(&format!(
                    "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}{}}}{}\n",
                    r.id,
                    r.ns_per_iter(),
                    r.iters,
                    thrpt,
                    if i + 1 < members.len() { "," } else { "" },
                ));
            }
            json.push_str("  ]\n}\n");
            let path = root.join(format!("BENCH_{}.json", sanitize(&group)));
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("wrote {}", path.display());
            }
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput basis for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with an auxiliary input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let (name, throughput) = (self.name.clone(), self.throughput);
        self.c.run_one(&name, &id.id, throughput, |b| f(b, input));
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let (name, throughput) = (self.name.clone(), self.throughput);
        self.c.run_one(&name, id, throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

#[derive(PartialEq)]
enum Mode {
    WarmUp,
    Measure,
}

/// Handed to benchmark closures; [`Bencher::iter`] runs the routine
/// repeatedly inside the current timing window.
pub struct Bencher {
    mode: Mode,
    window: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.window {
                break;
            }
        }
        if self.mode == Mode::Measure {
            self.iters += iters;
            self.elapsed += start.elapsed();
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
        .collect()
}

/// Walks up from the current directory to the outermost directory holding a
/// `Cargo.toml` (the workspace root), falling back to the current directory.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut root = cwd.clone();
    for dir in cwd.ancestors() {
        if dir.join("Cargo.toml").exists() {
            root = dir.to_path_buf();
        }
    }
    root
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
