//! Aggregations over per-fault forensic records.
//!
//! A `--records` campaign stream ([`FaultRecord`]) is one JSON object per
//! injection; these functions fold a stream into the report tables the
//! harnesses print: detection-latency distributions, class-by-cycle and
//! class-by-bit heatmaps, and a census of where faulted state first
//! diverged from the golden run.
//!
//! Every function returns an empty [`Table`] (headers only) for an empty
//! record slice, so harnesses can print unconditionally.

use softerr_inject::{FaultClass, FaultRecord};
use softerr_telemetry::Table;
use std::collections::BTreeMap;

/// Headers shared by the per-class tables: one leading label column, one
/// column per class, and a total.
fn class_headers(label: &str) -> Vec<String> {
    let mut headers = vec![label.to_string()];
    headers.extend(FaultClass::ALL.iter().map(|c| c.name().to_string()));
    headers.push("total".to_string());
    headers
}

/// One table row from a label and per-class counts.
fn class_row(label: String, counts: &[u64; 5]) -> Vec<String> {
    let mut row = vec![label];
    row.extend(counts.iter().map(|n| n.to_string()));
    row.push(counts.iter().sum::<u64>().to_string());
    row
}

/// Detection-latency distribution: how many cycles passed between the
/// injection and the verdict, bucketed by powers of two, split by class.
///
/// Crash/Assert latencies measure how long the corruption stayed latent
/// before the machine noticed; SDC/Masked latencies measure how long the
/// engine needed to prove the fault's fate.
pub fn latency_table(records: &[FaultRecord]) -> Table {
    let mut table = Table::new(class_headers("latency (cycles)"));
    if records.is_empty() {
        return table;
    }
    let bucket_of = |latency: u64| -> usize {
        if latency == 0 {
            0
        } else {
            64 - latency.leading_zeros() as usize
        }
    };
    let top = records
        .iter()
        .map(|r| bucket_of(r.detect_latency_cycles()))
        .max()
        .expect("non-empty");
    let mut buckets = vec![[0u64; 5]; top + 1];
    for r in records {
        buckets[bucket_of(r.detect_latency_cycles())][r.class as usize] += 1;
    }
    for (k, counts) in buckets.iter().enumerate() {
        let label = if k == 0 {
            "0".to_string()
        } else {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}-{hi}")
            }
        };
        table.row(class_row(label, counts));
    }
    table
}

/// Class-by-injection-cycle heatmap: the golden execution is split into
/// `bins` equal windows and each record lands in the window its fault was
/// injected in, so vulnerability phases of the program become visible.
/// The trailing column is each window's AVF (non-masked fraction).
pub fn class_by_cycle_table(records: &[FaultRecord], bins: usize) -> Table {
    let mut headers = class_headers("cycle window");
    headers.push("AVF".to_string());
    let mut table = Table::new(headers);
    let bins = bins.max(1);
    if records.is_empty() {
        return table;
    }
    let span = records
        .iter()
        .map(|r| r.golden_cycles)
        .max()
        .expect("non-empty")
        .max(1);
    let mut grid = vec![[0u64; 5]; bins];
    for r in records {
        // Faults can land past the golden end (out-of-range sampling);
        // clamp them into the last window.
        let bin = ((r.spec.cycle as u128 * bins as u128 / span as u128) as usize).min(bins - 1);
        grid[bin][r.class as usize] += 1;
    }
    for (bin, counts) in grid.iter().enumerate() {
        let lo = bin as u64 * span / bins as u64;
        let hi = (bin as u64 + 1) * span / bins as u64;
        let total: u64 = counts.iter().sum();
        let avf = if total == 0 {
            0.0
        } else {
            1.0 - counts[FaultClass::Masked as usize] as f64 / total as f64
        };
        let mut row = class_row(format!("{lo}-{hi}"), counts);
        row.push(format!("{avf:.3}"));
        table.row(row);
    }
    table
}

/// Class-by-bit heatmap: the structure's `bit_population` injectable bits
/// are split into `bins` equal ranges and each record lands in the range
/// its flipped bit belongs to, exposing vulnerable regions of a structure
/// (e.g. architecturally mapped registers vs. the speculative tail).
pub fn class_by_bit_table(records: &[FaultRecord], bit_population: u64, bins: usize) -> Table {
    let mut headers = class_headers("bit range");
    headers.push("AVF".to_string());
    let mut table = Table::new(headers);
    let bins = bins.max(1);
    if records.is_empty() {
        return table;
    }
    let span = bit_population.max(1);
    let mut grid = vec![[0u64; 5]; bins];
    for r in records {
        let bin = ((r.spec.bit as u128 * bins as u128 / span as u128) as usize).min(bins - 1);
        grid[bin][r.class as usize] += 1;
    }
    for (bin, counts) in grid.iter().enumerate() {
        let lo = bin as u64 * span / bins as u64;
        let hi = ((bin as u64 + 1) * span / bins as u64).saturating_sub(1);
        let total: u64 = counts.iter().sum();
        let avf = if total == 0 {
            0.0
        } else {
            1.0 - counts[FaultClass::Masked as usize] as f64 / total as f64
        };
        let mut row = class_row(format!("{lo}-{hi}"), counts);
        row.push(format!("{avf:.3}"));
        table.row(row);
    }
    table
}

/// Census of first-divergence components: for every simulator component
/// that ever showed up as a fault's first point of divergence, the
/// per-class record counts. Records with no divergence (faults into dead
/// state, or landing after the program's end) count under `(none)`.
pub fn divergence_table(records: &[FaultRecord]) -> Table {
    let mut table = Table::new(class_headers("first divergence"));
    if records.is_empty() {
        return table;
    }
    let mut census: BTreeMap<String, [u64; 5]> = BTreeMap::new();
    for r in records {
        let component = r
            .first_divergence
            .as_ref()
            .map(|site| site.component.clone())
            .unwrap_or_else(|| "(none)".to_string());
        census.entry(component).or_insert([0u64; 5])[r.class as usize] += 1;
    }
    let mut rows: Vec<(String, [u64; 5])> = census.into_iter().collect();
    // Most-implicated components first; ties in name order (BTreeMap gave
    // us a deterministic base order).
    rows.sort_by_key(|(_, counts)| std::cmp::Reverse(counts.iter().sum::<u64>()));
    for (component, counts) in rows {
        table.row(class_row(component, &counts));
    }
    table
}

/// Propagation heatmap: how corruption spreads through the machine over
/// time. Folds every [`softerr_inject::PropagationTrace`] in the record
/// stream into a component × time-since-injection grid: each snapshot
/// lands in the `bucket`-cycle window given by its distance from the
/// fault's injection cycle, and a cell counts how many snapshots in that
/// window showed the component diverging from the golden run. The final
/// `(samples)` row gives each window's snapshot population, so a cell's
/// fraction of it is the probability that a still-diverging fault has
/// reached that component by then. Records without a timeline (the
/// non-traced majority) are ignored; an all-`None` stream yields an
/// empty table.
pub fn propagation_heatmap(records: &[FaultRecord], bucket: u64) -> Table {
    let bucket = bucket.max(1);
    let mut grid: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut population: Vec<u64> = Vec::new();
    for r in records {
        let Some(trace) = &r.propagation else {
            continue;
        };
        for sample in &trace.samples {
            let dt = sample.cycle.saturating_sub(r.spec.cycle);
            let bin = (dt / bucket) as usize;
            if population.len() <= bin {
                population.resize(bin + 1, 0);
            }
            population[bin] += 1;
            for component in &sample.components {
                let row = grid.entry(component.clone()).or_default();
                if row.len() <= bin {
                    row.resize(bin + 1, 0);
                }
                row[bin] += 1;
            }
        }
    }
    let bins = population.len();
    let mut headers = vec!["component".to_string()];
    for bin in 0..bins {
        let lo = bin as u64 * bucket;
        headers.push(format!("+{lo}-{}", lo + bucket - 1));
    }
    let mut table = Table::new(headers);
    if bins == 0 {
        return table;
    }
    let mut rows: Vec<(String, Vec<u64>)> = grid.into_iter().collect();
    // Most-corrupted components first; ties in name order.
    rows.sort_by_key(|(_, counts)| std::cmp::Reverse(counts.iter().sum::<u64>()));
    for (component, mut counts) in rows {
        counts.resize(bins, 0);
        let mut row = vec![component];
        row.extend(counts.iter().map(|n| n.to_string()));
        table.row(row);
    }
    let mut row = vec!["(samples)".to_string()];
    row.extend(population.iter().map(|n| n.to_string()));
    table.row(row);
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use softerr_inject::{DivergenceSite, FaultSpec, PropagationSample, PropagationTrace};
    use softerr_sim::Structure;

    fn record(
        cycle: u64,
        bit: u64,
        class: FaultClass,
        end: u64,
        comp: Option<&str>,
    ) -> FaultRecord {
        FaultRecord {
            spec: FaultSpec {
                structure: Structure::RegFile,
                bit,
                cycle,
            },
            class,
            end_cycle: end,
            golden_cycles: 1000,
            pruned: false,
            pruned_static: false,
            weight: 1.0,
            first_divergence: comp.map(|c| DivergenceSite {
                cycle,
                pc: 0x40,
                component: c.to_string(),
            }),
            propagation: None,
        }
    }

    #[test]
    fn latency_buckets_are_log2_and_cover_all_records() {
        let records = vec![
            record(10, 0, FaultClass::Masked, 10, None), // latency 0
            record(10, 1, FaultClass::Sdc, 11, Some("rf")), // latency 1
            record(10, 2, FaultClass::Crash, 15, Some("rf")), // latency 5 → 4-7
            record(10, 3, FaultClass::Crash, 522, Some("rob")), // latency 512 → 512-1023
        ];
        let t = latency_table(&records);
        let csv = t.to_csv();
        assert!(csv.contains("4-7"));
        assert!(csv.contains("512-1023"));
        // Every record lands in exactly one bucket.
        let total: u64 = csv
            .lines()
            .skip(1)
            .map(|l| l.rsplit(',').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, records.len() as u64);
    }

    #[test]
    fn cycle_heatmap_bins_by_injection_cycle() {
        let records = vec![
            record(0, 0, FaultClass::Masked, 0, None),
            record(999, 0, FaultClass::Sdc, 1200, Some("rf")),
            record(500, 0, FaultClass::Crash, 700, Some("iq")),
        ];
        let t = class_by_cycle_table(&records, 2);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        // First window holds the cycle-0 masked fault: AVF 0.
        assert!(rows[0].ends_with("0.000"), "{}", rows[0]);
        // Second window holds the SDC and the Crash: AVF 1.
        assert!(rows[1].ends_with("1.000"), "{}", rows[1]);
    }

    #[test]
    fn bit_heatmap_bins_by_bit_index() {
        let records = vec![
            record(5, 0, FaultClass::Masked, 5, None),
            record(5, 99, FaultClass::Sdc, 80, Some("rf")),
        ];
        let t = class_by_bit_table(&records, 100, 4);
        assert_eq!(t.len(), 4);
        let csv = t.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert!(rows[0].starts_with("0-24"));
        assert!(rows[3].starts_with("75-99"));
    }

    #[test]
    fn divergence_census_counts_sites_and_none() {
        let records = vec![
            record(1, 0, FaultClass::Sdc, 40, Some("rf")),
            record(2, 1, FaultClass::Crash, 41, Some("rf")),
            record(3, 2, FaultClass::Masked, 3, None),
        ];
        let t = divergence_table(&records);
        let csv = t.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert_eq!(rows.len(), 2);
        // rf implicated twice, so it sorts first; the masked no-site record
        // counts under (none).
        assert!(rows[0].starts_with("rf"), "{}", rows[0]);
        assert!(rows[1].starts_with("(none)"), "{}", rows[1]);
    }

    #[test]
    fn empty_records_give_empty_tables() {
        assert!(latency_table(&[]).is_empty());
        assert!(class_by_cycle_table(&[], 10).is_empty());
        assert!(class_by_bit_table(&[], 64, 10).is_empty());
        assert!(divergence_table(&[]).is_empty());
        assert!(propagation_heatmap(&[], 64).is_empty());
    }

    #[test]
    fn propagation_heatmap_buckets_by_time_since_injection() {
        let mut traced = record(100, 0, FaultClass::Sdc, 400, Some("rf"));
        traced.propagation = Some(PropagationTrace {
            every: 50,
            samples: vec![
                PropagationSample {
                    cycle: 100, // dt 0 → bucket +0-63
                    components: vec!["rf".into()],
                },
                PropagationSample {
                    cycle: 150, // dt 50 → bucket +0-63
                    components: vec!["rf".into(), "rob".into()],
                },
                PropagationSample {
                    cycle: 200, // dt 100 → bucket +64-127
                    components: vec!["rob".into(), "mem.l1d".into()],
                },
            ],
            converged_at: None,
        });
        let untraced = record(5, 1, FaultClass::Masked, 5, None);
        let t = propagation_heatmap(&[traced, untraced], 64);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "component,+0-63,+64-127");
        let rows: Vec<&str> = lines.collect();
        // rf and rob both implicated twice; name order breaks the tie.
        assert_eq!(rows[0], "rf,2,0");
        assert_eq!(rows[1], "rob,1,1");
        assert_eq!(rows[2], "mem.l1d,0,1");
        assert_eq!(rows[3], "(samples),2,1");
    }
}
