//! ECC protection configurations (paper Fig. 12).

use serde::{Deserialize, Serialize};
use softerr_sim::Structure;
use std::fmt;

/// Which caches carry single-error-correcting ECC.
///
/// A protected structure's single-bit upsets are corrected in place, so its
/// FIT contribution is zero (the paper's modeling assumption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EccScheme {
    /// Fully unprotected design (e.g. Samsung Exynos 5250's A15).
    None,
    /// ECC on the L1 data cache and the L2 (typical A72 configuration).
    L1dAndL2,
    /// ECC on the L2 only.
    L2Only,
}

impl EccScheme {
    /// The three configurations of Fig. 12.
    pub const ALL: [EccScheme; 3] = [EccScheme::None, EccScheme::L1dAndL2, EccScheme::L2Only];

    /// Whether `structure` is ECC-protected under this scheme.
    pub fn protects(self, structure: Structure) -> bool {
        match self {
            EccScheme::None => false,
            EccScheme::L1dAndL2 => matches!(
                structure,
                Structure::L1DData | Structure::L1DTag | Structure::L2Data | Structure::L2Tag
            ),
            EccScheme::L2Only => {
                matches!(structure, Structure::L2Data | Structure::L2Tag)
            }
        }
    }
}

impl fmt::Display for EccScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccScheme::None => write!(f, "no ECC"),
            EccScheme::L1dAndL2 => write!(f, "ECC on L1D+L2"),
            EccScheme::L2Only => write!(f, "ECC on L2 only"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_sets() {
        assert!(!EccScheme::None.protects(Structure::L2Data));
        assert!(EccScheme::L1dAndL2.protects(Structure::L1DData));
        assert!(EccScheme::L1dAndL2.protects(Structure::L2Tag));
        assert!(!EccScheme::L1dAndL2.protects(Structure::L1IData));
        assert!(!EccScheme::L1dAndL2.protects(Structure::RegFile));
        assert!(EccScheme::L2Only.protects(Structure::L2Data));
        assert!(!EccScheme::L2Only.protects(Structure::L1DData));
    }

    #[test]
    fn pipeline_structures_never_protected() {
        for scheme in EccScheme::ALL {
            for s in [
                Structure::RegFile,
                Structure::IqSrc,
                Structure::RobPc,
                Structure::LoadQueue,
            ] {
                assert!(!scheme.protects(s));
            }
        }
    }

    /// Fixture matching Fig. 12's setting: every structure carries some
    /// vulnerability, caches carry most of the bits.
    fn fig12_measurements() -> Vec<crate::StructureMeasurement> {
        use softerr_inject::ClassCounts;
        Structure::ALL
            .iter()
            .map(|&structure| {
                let cache = matches!(
                    structure,
                    Structure::L1IData
                        | Structure::L1ITag
                        | Structure::L1DData
                        | Structure::L1DTag
                        | Structure::L2Data
                        | Structure::L2Tag
                );
                crate::StructureMeasurement {
                    structure,
                    bits: if cache { 100_000 } else { 2_000 },
                    counts: ClassCounts {
                        masked: 80,
                        sdc: 10,
                        crash: 8,
                        timeout: 1,
                        assert_: 1,
                    },
                }
            })
            .collect()
    }

    #[test]
    fn fig12_none_variant_counts_every_structure() {
        let ms = fig12_measurements();
        let total = crate::cpu_fit(&ms, 1e-5, EccScheme::None);
        // Every structure has AVF 0.2; FIT = Σ raw·bits·AVF.
        let bits: u64 = ms.iter().map(|m| m.bits).sum();
        assert!((total - 1e-5 * bits as f64 * 0.2).abs() < 1e-9);
    }

    #[test]
    fn fig12_l1d_l2_variant_removes_both_protected_caches() {
        let ms = fig12_measurements();
        let protected = crate::cpu_fit(&ms, 1e-5, EccScheme::L1dAndL2);
        let unprotected_bits: u64 = ms
            .iter()
            .filter(|m| !EccScheme::L1dAndL2.protects(m.structure))
            .map(|m| m.bits)
            .sum();
        assert!((protected - 1e-5 * unprotected_bits as f64 * 0.2).abs() < 1e-9);
        // L1D (data+tag) and L2 (data+tag) dropped: 4 × 100k bits gone.
        let none = crate::cpu_fit(&ms, 1e-5, EccScheme::None);
        assert!((none - protected - 1e-5 * 400_000.0 * 0.2).abs() < 1e-9);
    }

    #[test]
    fn fig12_l2_only_variant_sits_between_the_other_two() {
        let ms = fig12_measurements();
        let none = crate::cpu_fit(&ms, 1e-5, EccScheme::None);
        let l2_only = crate::cpu_fit(&ms, 1e-5, EccScheme::L2Only);
        let l1d_l2 = crate::cpu_fit(&ms, 1e-5, EccScheme::L1dAndL2);
        // Fig. 12's ordering: protecting more SRAM can only lower the FIT.
        assert!(none > l2_only, "{none} vs {l2_only}");
        assert!(l2_only > l1d_l2, "{l2_only} vs {l1d_l2}");
        // L2-only drops exactly the two L2 arrays.
        assert!((none - l2_only - 1e-5 * 200_000.0 * 0.2).abs() < 1e-9);
    }

    #[test]
    fn scheme_roundtrips_through_serde_and_displays() {
        for scheme in EccScheme::ALL {
            let json = serde_json::to_string(&scheme).unwrap();
            let back: EccScheme = serde_json::from_str(&json).unwrap();
            assert_eq!(back, scheme);
            assert!(!scheme.to_string().is_empty());
        }
    }
}
