//! ECC protection configurations (paper Fig. 12).

use serde::{Deserialize, Serialize};
use softerr_sim::Structure;
use std::fmt;

/// Which caches carry single-error-correcting ECC.
///
/// A protected structure's single-bit upsets are corrected in place, so its
/// FIT contribution is zero (the paper's modeling assumption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EccScheme {
    /// Fully unprotected design (e.g. Samsung Exynos 5250's A15).
    None,
    /// ECC on the L1 data cache and the L2 (typical A72 configuration).
    L1dAndL2,
    /// ECC on the L2 only.
    L2Only,
}

impl EccScheme {
    /// The three configurations of Fig. 12.
    pub const ALL: [EccScheme; 3] = [EccScheme::None, EccScheme::L1dAndL2, EccScheme::L2Only];

    /// Whether `structure` is ECC-protected under this scheme.
    pub fn protects(self, structure: Structure) -> bool {
        match self {
            EccScheme::None => false,
            EccScheme::L1dAndL2 => matches!(
                structure,
                Structure::L1DData | Structure::L1DTag | Structure::L2Data | Structure::L2Tag
            ),
            EccScheme::L2Only => {
                matches!(structure, Structure::L2Data | Structure::L2Tag)
            }
        }
    }
}

impl fmt::Display for EccScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccScheme::None => write!(f, "no ECC"),
            EccScheme::L1dAndL2 => write!(f, "ECC on L1D+L2"),
            EccScheme::L2Only => write!(f, "ECC on L2 only"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_sets() {
        assert!(!EccScheme::None.protects(Structure::L2Data));
        assert!(EccScheme::L1dAndL2.protects(Structure::L1DData));
        assert!(EccScheme::L1dAndL2.protects(Structure::L2Tag));
        assert!(!EccScheme::L1dAndL2.protects(Structure::L1IData));
        assert!(!EccScheme::L1dAndL2.protects(Structure::RegFile));
        assert!(EccScheme::L2Only.protects(Structure::L2Data));
        assert!(!EccScheme::L2Only.protects(Structure::L1DData));
    }

    #[test]
    fn pipeline_structures_never_protected() {
        for scheme in EccScheme::ALL {
            for s in [
                Structure::RegFile,
                Structure::IqSrc,
                Structure::RobPc,
                Structure::LoadQueue,
            ] {
                assert!(!scheme.protects(s));
            }
        }
    }
}
