//! Uniform vs. importance-sampling efficiency comparison (the
//! `repro sampling` table).
//!
//! An importance-sampled campaign draws fault sites only from the golden
//! run's live-and-demanded subpopulation and reweights its tallies by that
//! subpopulation's mass (Horvitz–Thompson), so it reaches the same 99%
//! confidence margin as a uniform campaign with roughly `weight²`× fewer
//! forked child simulations. This module holds the plain-data comparison
//! row and its table renderer; the campaigns themselves are run by the
//! harness (`repro sampling` walks the paper grid, one cell per row).

use softerr_telemetry::Table;

/// One (machine, workload, level) cell of the uniform-vs-importance
/// comparison, both campaigns run to the same target margin.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingCell {
    /// Machine name (e.g. `"Cortex-A15-like"`).
    pub machine: String,
    /// Workload name.
    pub workload: String,
    /// Optimization level (e.g. `"O2"`).
    pub level: String,
    /// AVF estimated by the uniform campaign.
    pub uniform_avf: f64,
    /// Achieved 99% error margin of the uniform campaign.
    pub uniform_margin: f64,
    /// Forked child simulations the uniform campaign paid for (faults not
    /// classified by a pruner).
    pub uniform_sims: u64,
    /// Horvitz–Thompson-reweighted AVF estimated by the importance
    /// campaign.
    pub importance_avf: f64,
    /// Achieved (reweighted) 99% error margin of the importance campaign.
    pub importance_margin: f64,
    /// Forked child simulations the importance campaign paid for.
    pub importance_sims: u64,
    /// The importance sampler's weight: the live-and-demanded fraction of
    /// the structure's `(bit × cycle)` population.
    pub weight: f64,
}

impl SamplingCell {
    /// Child-simulation savings factor of importance over uniform
    /// (`uniform_sims / importance_sims`); `None` when the importance
    /// campaign simulated nothing (empty live subpopulation).
    pub fn speedup(&self) -> Option<f64> {
        (self.importance_sims > 0).then(|| self.uniform_sims as f64 / self.importance_sims as f64)
    }

    /// Whether the two estimates agree within their combined margins —
    /// the same acceptance predicate the `importance/verify` sampler
    /// enforces at campaign level.
    pub fn agrees(&self) -> bool {
        (self.uniform_avf - self.importance_avf).abs()
            <= self.uniform_margin + self.importance_margin
    }
}

/// Renders the comparison as the `repro sampling` table: one row per cell
/// with AVF ± margin and child-simulation counts for both samplers, the
/// per-cell savings factor, and the agreement verdict.
pub fn sampling_table(cells: &[SamplingCell]) -> Table {
    let mut t = Table::new(vec![
        "machine".into(),
        "workload".into(),
        "level".into(),
        "uniform AVF".into(),
        "sims".into(),
        "importance AVF".into(),
        "sims".into(),
        "weight".into(),
        "speedup".into(),
        "agree".into(),
    ]);
    for c in cells {
        t.row(vec![
            c.machine.clone(),
            c.workload.clone(),
            c.level.clone(),
            format!("{:.4} ±{:.4}", c.uniform_avf, c.uniform_margin),
            c.uniform_sims.to_string(),
            format!("{:.4} ±{:.4}", c.importance_avf, c.importance_margin),
            c.importance_sims.to_string(),
            format!("{:.4}", c.weight),
            match c.speedup() {
                Some(s) => format!("{s:.1}x"),
                None => "-".into(),
            },
            if c.agrees() { "yes" } else { "NO" }.into(),
        ]);
    }
    t
}

/// Mean child-simulation savings factor over all cells with a defined
/// speedup; `None` if no cell has one.
pub fn mean_sampling_speedup(cells: &[SamplingCell]) -> Option<f64> {
    let speedups: Vec<f64> = cells.iter().filter_map(SamplingCell::speedup).collect();
    (!speedups.is_empty()).then(|| speedups.iter().sum::<f64>() / speedups.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(u_sims: u64, i_sims: u64) -> SamplingCell {
        SamplingCell {
            machine: "Cortex-A15-like".into(),
            workload: "qsort".into(),
            level: "O2".into(),
            uniform_avf: 0.31,
            uniform_margin: 0.05,
            uniform_sims: u_sims,
            importance_avf: 0.29,
            importance_margin: 0.04,
            importance_sims: i_sims,
            weight: 0.2,
        }
    }

    #[test]
    fn speedup_and_agreement() {
        let c = cell(640, 32);
        assert_eq!(c.speedup(), Some(20.0));
        assert!(c.agrees());
        let mut far = cell(640, 32);
        far.importance_avf = 0.5;
        assert!(!far.agrees());
        let degenerate = cell(640, 0);
        assert_eq!(degenerate.speedup(), None);
        assert_eq!(
            mean_sampling_speedup(&[cell(640, 32), cell(100, 10)]),
            Some(15.0)
        );
        assert_eq!(mean_sampling_speedup(&[degenerate]), None);
    }

    #[test]
    fn table_has_one_row_per_cell() {
        let t = sampling_table(&[cell(640, 32), cell(100, 10)]);
        let text = t.to_string();
        assert_eq!(text.lines().count(), 2 + 2, "header + rule + two rows");
        assert!(text.contains("20.0x"));
        assert!(text.contains("yes"));
    }
}
