//! Stage-attribution profiling over span traces.
//!
//! A traced run ([`softerr_telemetry::set_tracing`] +
//! [`softerr_telemetry::take_trace`]) yields a flat list of
//! [`SpanRecord`]s; these functions roll that list into the wall-time
//! tables the harnesses print under `--profile`:
//!
//! * [`stage_table`] — campaign wall-time by pipeline stage (golden run,
//!   liveness build, static-mask attach, fault sampling, pruning,
//!   classification), per structure, using *self time* (a span's duration
//!   minus its direct children's) so the stage rows sum exactly to the
//!   total row;
//! * [`worker_table`] — the convoy/fresh engine's per-worker counters
//!   (claims, forks, convergences, graduations) and busy time;
//! * [`cell_table`] — orchestrator cell lifecycle (store lookup, compile,
//!   execute, store write) per grid cell, hit vs. miss.
//!
//! Every function returns an empty [`Table`] (headers only) when the trace
//! holds no relevant spans, so harnesses can print unconditionally.

use softerr_telemetry::{SpanRecord, Table, Trace};
use std::collections::BTreeMap;

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Direct children of `root`: same thread, one level deeper, nested inside
/// the root's window.
fn children<'t>(trace: &'t Trace, root: &'t SpanRecord) -> impl Iterator<Item = &'t SpanRecord> {
    trace
        .spans
        .iter()
        .filter(move |s| s.depth == root.depth + 1 && root.contains(s))
}

/// The innermost `campaign.run` span (if any) enclosing `s` on its thread
/// — the structure a nested stage belongs to.
fn enclosing_run<'t>(trace: &'t Trace, s: &SpanRecord) -> Option<&'t SpanRecord> {
    trace
        .spans
        .iter()
        .filter(|r| r.name == "campaign.run" && r.depth < s.depth && r.contains(s))
        .max_by_key(|r| r.depth)
}

/// Campaign wall-time by stage and structure.
///
/// Every `campaign.*` span except the per-thread `campaign.worker`
/// contributes one row keyed by (structure, stage), where *stage* is the
/// span name minus the `campaign.` prefix — except `campaign.run` itself,
/// whose self time (orchestration not covered by a child stage) shows as
/// `(untracked)`. Structure comes from the enclosing `campaign.run`'s
/// `structure` field; the golden run and liveness build happen once per
/// injector, outside any run, and are attributed to `(shared)`. Worker
/// spans overlap the classify stage in parallel campaigns, so their time
/// stays inside `classify` here and is broken out by [`worker_table`].
///
/// Because rows carry self time, they sum *exactly* to the trailing
/// `total` row (the summed durations of the top-level campaign spans):
/// the table is a complete decomposition of traced campaign wall time.
pub fn stage_table(trace: &Trace) -> Table {
    let mut table = Table::new(
        ["structure", "stage", "spans", "ms", "share"]
            .map(String::from)
            .to_vec(),
    );
    // (structure, stage) -> (span count, self ns). BTreeMap keeps the
    // row order deterministic.
    let mut rows: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
    let mut total_ns = 0u64;
    for s in &trace.spans {
        if !s.name.starts_with("campaign.") || s.name == "campaign.worker" {
            continue;
        }
        let child_ns: u64 = children(trace, s)
            .filter(|c| c.name != "campaign.worker")
            .map(|c| c.dur_ns)
            .sum();
        let self_ns = s.dur_ns.saturating_sub(child_ns);
        let structure = enclosing_run(trace, s)
            .or(Some(s).filter(|s| s.name == "campaign.run"))
            .and_then(|r| r.str_field("structure"))
            .unwrap_or("(shared)")
            .to_string();
        let stage = match s.name {
            "campaign.run" => "(untracked)".to_string(),
            name => name.trim_start_matches("campaign.").to_string(),
        };
        let slot = rows.entry((structure, stage)).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += self_ns;
        // Self times telescope: summing every non-worker campaign span's
        // self time equals summing the campaign-family roots' durations
        // (the golden run and liveness build precede the run; everything
        // else nests inside one of the three).
        if matches!(
            s.name,
            "campaign.run" | "campaign.golden" | "campaign.liveness"
        ) {
            total_ns += s.dur_ns;
        }
    }
    if rows.is_empty() {
        return table;
    }
    let share = |ns: u64| {
        if total_ns == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", ns as f64 / total_ns as f64 * 100.0)
        }
    };
    for ((structure, stage), (count, self_ns)) in &rows {
        table.row(vec![
            structure.clone(),
            stage.clone(),
            count.to_string(),
            ms(*self_ns),
            share(*self_ns),
        ]);
    }
    table.row(vec![
        String::new(),
        "total".to_string(),
        String::new(),
        ms(total_ns),
        share(total_ns),
    ]);
    table
}

/// Per-worker engine counters from `campaign.worker` spans: fault claims,
/// fork/no-fork split, how children left the convoy (converged, ran to
/// the program's end, graduated past every later fault, asserted), and
/// the simulated-cycle split between converged and ran-to-end children.
/// One row per worker span in trace order, plus a `total` row.
pub fn worker_table(trace: &Trace) -> Table {
    const COUNTERS: [&str; 10] = [
        "claimed",
        "fresh",
        "forks",
        "masked_nofork",
        "converged",
        "ended",
        "graduated",
        "asserts",
        "converged_cycles",
        "ran_cycles",
    ];
    let mut headers = vec!["worker".to_string()];
    headers.extend(COUNTERS.iter().map(|c| c.to_string()));
    headers.push("ms".to_string());
    let mut table = Table::new(headers);
    let workers: Vec<&SpanRecord> = trace
        .spans
        .iter()
        .filter(|s| s.name == "campaign.worker")
        .collect();
    if workers.is_empty() {
        return table;
    }
    let mut totals = [0u64; COUNTERS.len()];
    let mut total_ns = 0u64;
    for (i, w) in workers.iter().enumerate() {
        let mut row = vec![format!("w{i} (tid {})", w.tid)];
        for (slot, counter) in totals.iter_mut().zip(COUNTERS) {
            let v = w.u64_field(counter).unwrap_or(0);
            *slot += v;
            row.push(v.to_string());
        }
        total_ns += w.dur_ns;
        row.push(ms(w.dur_ns));
        table.row(row);
    }
    let mut row = vec!["total".to_string()];
    row.extend(totals.iter().map(|v| v.to_string()));
    row.push(ms(total_ns));
    table.row(row);
    table
}

/// Orchestrator cell lifecycle: one row per `cell` span, labelled by its
/// machine/workload/level fields, with the store-lookup, compile,
/// execute, and store-write child stages broken out and hit-vs-miss
/// provenance. Cells served from the result store show `hit` with only
/// lookup time; executed cells show the full pipeline.
pub fn cell_table(trace: &Trace) -> Table {
    const STAGES: [&str; 4] = ["cell.lookup", "cell.compile", "cell.execute", "cell.store"];
    let mut table = Table::new(
        [
            "cell",
            "hit",
            "lookup ms",
            "compile ms",
            "execute ms",
            "store ms",
            "total ms",
        ]
        .map(String::from)
        .to_vec(),
    );
    for s in trace.spans.iter().filter(|s| s.name == "cell") {
        let label = format!(
            "{}/{}/{}",
            s.str_field("machine").unwrap_or("?"),
            s.str_field("workload").unwrap_or("?"),
            s.str_field("level").unwrap_or("?"),
        );
        let hit = match s.field("hit") {
            Some(softerr_telemetry::FieldValue::Bool(b)) => {
                if *b {
                    "hit"
                } else {
                    "miss"
                }
            }
            _ => "?",
        };
        let mut row = vec![label, hit.to_string()];
        for stage in STAGES {
            let ns: u64 = children(trace, s)
                .filter(|c| c.name == stage)
                .map(|c| c.dur_ns)
                .sum();
            row.push(ms(ns));
        }
        row.push(ms(s.dur_ns));
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use softerr_telemetry::FieldValue;

    fn span(
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        tid: u32,
        depth: u32,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> SpanRecord {
        SpanRecord {
            name,
            start_ns,
            dur_ns,
            tid,
            depth,
            fields,
        }
    }

    fn trace(spans: Vec<SpanRecord>) -> Trace {
        Trace { spans, dropped: 0 }
    }

    #[test]
    fn stage_rows_sum_exactly_to_the_total_row() {
        const MS: u64 = 1_000_000;
        let t = trace(vec![
            span("campaign.golden", 0, 100 * MS, 0, 0, vec![]),
            span("campaign.liveness", 100 * MS, 200 * MS, 0, 0, vec![]),
            span("campaign.masks", 150 * MS, 50 * MS, 0, 1, vec![]),
            span(
                "campaign.run",
                300 * MS,
                1000 * MS,
                0,
                0,
                vec![("structure", FieldValue::Str("rf".into()))],
            ),
            span("campaign.sample", 310 * MS, 100 * MS, 0, 1, vec![]),
            span("campaign.classify", 450 * MS, 700 * MS, 0, 1, vec![]),
            // Inline worker (threads = 1): nested under classify, must not
            // be subtracted from classify's self time or get its own row.
            span("campaign.worker", 460 * MS, 600 * MS, 0, 2, vec![]),
        ]);
        let table = stage_table(&t);
        let csv = table.to_csv();
        let rows: Vec<Vec<&str>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').collect())
            .collect();
        assert!(
            !csv.contains("worker"),
            "worker spans belong to worker_table: {csv}"
        );
        let ms_of = |stage: &str| -> f64 {
            rows.iter()
                .find(|r| r[1] == stage)
                .unwrap_or_else(|| panic!("missing stage {stage} in {csv}"))[3]
                .parse()
                .unwrap()
        };
        // Self times: golden 100, liveness 200-50, masks 50, sample 100,
        // classify 700 (worker stays inside), untracked 1000-100-700.
        assert_eq!(ms_of("golden"), 100.0);
        assert_eq!(ms_of("liveness"), 150.0);
        assert_eq!(ms_of("masks"), 50.0);
        assert_eq!(ms_of("sample"), 100.0);
        assert_eq!(ms_of("classify"), 700.0);
        assert_eq!(ms_of("(untracked)"), 200.0);
        let total = ms_of("total");
        let sum: f64 = rows
            .iter()
            .filter(|r| r[1] != "total")
            .map(|r| r[3].parse::<f64>().unwrap())
            .sum();
        assert!((sum - total).abs() < 1e-9, "stages {sum} != total {total}");
        // 100 + 200 + 1000 ms.
        assert_eq!(total, 1300.0);
        // Nested stages carry the run's structure; shared setup does not.
        assert!(csv.contains("rf,classify"));
        assert!(csv.contains("(shared),golden"));
    }

    #[test]
    fn worker_table_sums_counters() {
        let fields = |claimed: u64, forks: u64| {
            vec![
                ("claimed", FieldValue::U64(claimed)),
                ("forks", FieldValue::U64(forks)),
                ("converged", FieldValue::U64(1)),
            ]
        };
        let t = trace(vec![
            span("campaign.worker", 0, 1_000_000, 1, 0, fields(10, 4)),
            span("campaign.worker", 0, 2_000_000, 2, 0, fields(20, 6)),
        ]);
        let csv = worker_table(&t).to_csv();
        let total = csv.lines().last().unwrap();
        assert!(total.starts_with("total,30,"), "{total}");
        assert!(total.contains(",10,"), "forks sum to 10: {total}");
        assert!(total.ends_with("3.000"), "busy ms sums: {total}");
    }

    #[test]
    fn cell_table_reads_fields_and_child_stages() {
        let t = trace(vec![
            span(
                "cell",
                0,
                5_000_000,
                0,
                0,
                vec![
                    ("machine", FieldValue::Str("A15".into())),
                    ("workload", FieldValue::Str("qsort".into())),
                    ("level", FieldValue::Str("O1".into())),
                    ("hit", FieldValue::Bool(false)),
                ],
            ),
            span("cell.lookup", 0, 1_000_000, 0, 1, vec![]),
            span("cell.execute", 1_000_000, 3_000_000, 0, 1, vec![]),
        ]);
        let csv = cell_table(&t).to_csv();
        let row = csv.lines().nth(1).unwrap();
        assert_eq!(row, "A15/qsort/O1,miss,1.000,0.000,3.000,0.000,5.000");
    }

    #[test]
    fn empty_traces_give_empty_tables() {
        let t = trace(vec![]);
        assert!(stage_table(&t).is_empty());
        assert!(worker_table(&t).is_empty());
        assert!(cell_table(&t).is_empty());
    }
}
