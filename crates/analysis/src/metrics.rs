//! Weighted AVF (eq. 1), FIT (eq. 2), and FPE (eq. 3).

use crate::ecc::EccScheme;
use serde::{Deserialize, Serialize};
use softerr_inject::{ClassCounts, FaultClass};
use softerr_sim::Structure;

/// Measured vulnerability of one structure for one workload/level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructureMeasurement {
    /// The structure field.
    pub structure: Structure,
    /// Its injectable bit count on the measured machine.
    pub bits: u64,
    /// Injection tallies.
    pub counts: ClassCounts,
}

impl StructureMeasurement {
    /// AVF: non-masked fraction.
    pub fn avf(&self) -> f64 {
        let n = self.counts.total();
        if n == 0 {
            return 0.0;
        }
        1.0 - self.counts.masked as f64 / n as f64
    }

    /// Fraction of injections in `class`.
    pub fn fraction(&self, class: FaultClass) -> f64 {
        let n = self.counts.total();
        if n == 0 {
            return 0.0;
        }
        self.counts.get(class) as f64 / n as f64
    }
}

/// Execution-time-weighted AVF over benchmarks (paper eq. 1):
/// `wAVF = Σ AVF_k·t_k / Σ t_k`.
///
/// An empty slice, or one whose times are all zero, returns `0.0` rather
/// than `NaN` (no observed execution time means no observed vulnerability).
///
/// ```
/// use softerr_analysis::weighted_avf;
/// // A long benchmark at AVF 0.1 dominates a short one at AVF 0.9.
/// let w = weighted_avf(&[(0.1, 900), (0.9, 100)]);
/// assert!((w - 0.18).abs() < 1e-12);
/// assert_eq!(weighted_avf(&[]), 0.0);
/// assert_eq!(weighted_avf(&[(0.5, 0), (0.9, 0)]), 0.0);
/// ```
pub fn weighted_avf(avf_and_time: &[(f64, u64)]) -> f64 {
    let total_time: u64 = avf_and_time.iter().map(|(_, t)| *t).sum();
    if total_time == 0 {
        return 0.0;
    }
    avf_and_time
        .iter()
        .map(|(avf, t)| avf * *t as f64)
        .sum::<f64>()
        / total_time as f64
}

/// FIT of one structure (paper eq. 2): `FIT = FIT_bit × bits × AVF`.
pub fn fit_of_structure(raw_fit_per_bit: f64, bits: u64, avf: f64) -> f64 {
    raw_fit_per_bit * bits as f64 * avf
}

/// CPU FIT: sum of per-structure FITs, with ECC-protected structures
/// contributing zero.
pub fn cpu_fit(measurements: &[StructureMeasurement], raw_fit_per_bit: f64, ecc: EccScheme) -> f64 {
    measurements
        .iter()
        .filter(|m| !ecc.protects(m.structure))
        .map(|m| fit_of_structure(raw_fit_per_bit, m.bits, m.avf()))
        .sum()
}

/// CPU FIT split by failure class (paper Fig. 10): each structure's FIT is
/// apportioned to SDC / Crash / Timeout / Assert by its class fractions.
pub fn cpu_fit_by_class(
    measurements: &[StructureMeasurement],
    raw_fit_per_bit: f64,
    ecc: EccScheme,
) -> Vec<(FaultClass, f64)> {
    let classes = [
        FaultClass::Sdc,
        FaultClass::Crash,
        FaultClass::Timeout,
        FaultClass::Assert,
    ];
    classes
        .iter()
        .map(|&class| {
            let fit: f64 = measurements
                .iter()
                .filter(|m| !ecc.protects(m.structure))
                .map(|m| raw_fit_per_bit * m.bits as f64 * m.fraction(class))
                .sum();
            (class, fit)
        })
        .collect()
}

/// Failures per execution (paper eq. 3): `FPE = FIT × t_exec / 10⁹ h`.
///
/// `exec_seconds` is the single-execution wall time (cycles / frequency).
/// A zero execution time returns `0.0` (an instantaneous run cannot
/// absorb a strike); the function never produces `NaN` for finite inputs.
pub fn fpe(fit: f64, exec_seconds: f64) -> f64 {
    fit * (exec_seconds / 3600.0) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(
        structure: Structure,
        bits: u64,
        masked: u64,
        sdc: u64,
        crash: u64,
    ) -> StructureMeasurement {
        StructureMeasurement {
            structure,
            bits,
            counts: ClassCounts {
                masked,
                sdc,
                crash,
                timeout: 0,
                assert_: 0,
            },
        }
    }

    #[test]
    fn avf_is_nonmasked_fraction() {
        let meas = m(Structure::RegFile, 4096, 80, 15, 5);
        assert!((meas.avf() - 0.20).abs() < 1e-12);
        assert!((meas.fraction(FaultClass::Sdc) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn weighted_avf_matches_equation_1() {
        // Equal times → arithmetic mean.
        assert!((weighted_avf(&[(0.2, 100), (0.4, 100)]) - 0.3).abs() < 1e-12);
        // Zero-time corner.
        assert_eq!(weighted_avf(&[]), 0.0);
        // Single benchmark.
        assert_eq!(weighted_avf(&[(0.42, 1234)]), 0.42);
    }

    #[test]
    fn weighted_avf_of_all_zero_times_is_zero_not_nan() {
        let w = weighted_avf(&[(0.5, 0), (0.9, 0), (1.0, 0)]);
        assert_eq!(w, 0.0);
        assert!(!w.is_nan());
    }

    #[test]
    fn fit_matches_equation_2() {
        // Paper example scale: A15 raw FIT 2.59e-5, a 32 KB data array.
        let fit = fit_of_structure(2.59e-5, 32 * 1024 * 8, 0.1);
        assert!((fit - 2.59e-5 * 262_144.0 * 0.1).abs() < 1e-9);
    }

    #[test]
    fn cpu_fit_sums_and_ecc_zeroes() {
        let ms = vec![
            m(Structure::L1DData, 1000, 50, 50, 0),
            m(Structure::RegFile, 1000, 50, 50, 0),
        ];
        let all = cpu_fit(&ms, 1e-5, EccScheme::None);
        let ecc = cpu_fit(&ms, 1e-5, EccScheme::L1dAndL2);
        assert!((all - 2.0 * 1e-5 * 1000.0 * 0.5).abs() < 1e-12);
        assert!((ecc - 1e-5 * 1000.0 * 0.5).abs() < 1e-12, "L1D removed");
    }

    #[test]
    fn class_split_sums_to_total_fit() {
        let ms = vec![
            m(Structure::L1IData, 5000, 70, 10, 20),
            m(Structure::RegFile, 3000, 40, 40, 20),
        ];
        let total = cpu_fit(&ms, 2e-5, EccScheme::None);
        let split: f64 = cpu_fit_by_class(&ms, 2e-5, EccScheme::None)
            .iter()
            .map(|(_, f)| f)
            .sum();
        assert!((total - split).abs() < 1e-9);
    }

    #[test]
    fn fpe_matches_equation_3() {
        // 1000 FIT over a 3.6-second execution = 1000 × 0.001 h / 1e9.
        let v = fpe(1000.0, 3.6);
        assert!((v - 1e-9 * 1000.0 * 0.001).abs() < 1e-18);
    }

    #[test]
    fn fpe_rewards_faster_executions() {
        // Same FIT, 10× faster execution → 10× fewer failures per run.
        assert!(fpe(500.0, 1.0) < fpe(500.0, 10.0));
    }

    #[test]
    fn fpe_of_zero_exec_time_is_zero_not_nan() {
        let v = fpe(1000.0, 0.0);
        assert_eq!(v, 0.0);
        assert!(!v.is_nan());
    }
}
