//! ACE-style static AVF estimation from one golden run.
//!
//! Instead of thousands of fault injections, one un-faulted simulation
//! with residency tracking ([`softerr_sim::Sim::enable_residency`]) yields
//! a per-structure **static AVF estimate**
//!
//! ```text
//! AVF(s) ≈ live-bit-cycles(s) / (bits(s) × cycles)
//! ```
//!
//! where a bit is live (ACE) from the cycle it is written to the last
//! cycle it is read before being overwritten, freed, or evicted
//! (Mukherjee et al., MICRO'03; bit-level refinement per BEC). Free and
//! dead entries are un-ACE, so the estimate directly reflects how a
//! compiler optimization level changes structure *utilization* — the
//! mechanism the paper measures by injection.
//!
//! The accounting granularity is one entry (register, queue slot, cache
//! line), so the estimate is an **upper bound** on true bit-level
//! ACE-ness, and it deliberately ignores fault→crash conversion: a tag
//! fault that would crash the machine counts the same as one silently
//! corrupting data. See `EXPERIMENTS.md` ("The static layer") for the
//! measured static-vs-injected deltas and the known divergences.

use serde::{Deserialize, Serialize};
use softerr_sim::{MachineConfig, Sim, SimOutcome, Structure};

/// Per-structure static AVF from one golden run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AceEstimate {
    /// Cycles the golden run took.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// One estimate per injectable structure, in [`Structure::ALL`] order.
    pub structures: Vec<StructureAvf>,
}

/// The static AVF of one structure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StructureAvf {
    /// The structure.
    pub structure: Structure,
    /// Total bits (the injection population).
    pub bits: u64,
    /// Sum over bits of cycles spent ACE.
    pub live_bit_cycles: u64,
    /// `live_bit_cycles / (bits × cycles)`, clamped to [0, 1].
    pub avf: f64,
}

impl AceEstimate {
    /// The static AVF of `structure` (0.0 if the structure is unknown,
    /// which cannot happen for estimates built by [`estimate`]).
    pub fn avf(&self, structure: Structure) -> f64 {
        self.structures
            .iter()
            .find(|s| s.structure == structure)
            .map_or(0.0, |s| s.avf)
    }
}

/// Runs one golden simulation of `program` on `cfg` with residency
/// tracking and returns the per-structure static AVF estimate.
///
/// # Errors
///
/// A description of the outcome if the golden run does not halt cleanly
/// within `max_cycles` (a program that crashes un-faulted has no
/// meaningful AVF).
pub fn estimate(
    cfg: &MachineConfig,
    program: &softerr_isa::Program,
    max_cycles: u64,
) -> Result<AceEstimate, String> {
    let mut sim = Sim::new(cfg, program);
    sim.enable_residency();
    match sim.run(max_cycles) {
        SimOutcome::Halted {
            cycles, retired, ..
        } => {
            let report = sim.residency_report().expect("residency was enabled");
            let structures = report
                .structures
                .iter()
                .map(|r| {
                    let denom = (r.bits as f64) * (cycles as f64);
                    let avf = if denom > 0.0 {
                        (r.live_bit_cycles as f64 / denom).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    StructureAvf {
                        structure: r.structure,
                        bits: r.bits,
                        live_bit_cycles: r.live_bit_cycles,
                        avf,
                    }
                })
                .collect();
            Ok(AceEstimate {
                cycles,
                retired,
                structures,
            })
        }
        other => Err(format!("golden run did not halt cleanly: {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softerr_cc::{Compiler, OptLevel};
    use softerr_isa::Profile;

    fn compile(src: &str, profile: Profile, level: OptLevel) -> softerr_isa::Program {
        Compiler::new(profile, level)
            .compile(src)
            .expect("compile")
            .program
    }

    const LOOP_SRC: &str = "
        void main() {
            int s = 0;
            for (int i = 0; i < 200; i = i + 1) { s = s + i * 3; }
            out(s);
        }";

    #[test]
    fn estimates_are_valid_fractions() {
        let cfg = MachineConfig::cortex_a72();
        let prog = compile(LOOP_SRC, Profile::A64, OptLevel::O2);
        let est = estimate(&cfg, &prog, 10_000_000).unwrap();
        assert_eq!(est.structures.len(), Structure::ALL.len());
        for s in &est.structures {
            assert!((0.0..=1.0).contains(&s.avf), "{:?}: {}", s.structure, s.avf);
            assert!(s.bits > 0);
        }
        // A compute loop keeps some architectural registers live.
        assert!(est.avf(Structure::RegFile) > 0.0);
    }

    #[test]
    fn crashing_program_is_rejected() {
        let cfg = MachineConfig::cortex_a72();
        // Out-of-range store crashes un-faulted.
        let prog = compile(
            "void main() { int a[2]; int *p = &a[0]; p[9000000] = 1; out(1); }",
            Profile::A64,
            OptLevel::O0,
        );
        assert!(estimate(&cfg, &prog, 1_000_000).is_err());
    }

    #[test]
    fn busier_structures_show_higher_residency() {
        // O0 keeps every value on the stack → far more cache traffic and
        // longer runtimes than O2; the register file holds fewer live
        // temporaries per cycle at O0.
        let cfg = MachineConfig::cortex_a15();
        let o0 = estimate(
            &cfg,
            &compile(LOOP_SRC, Profile::A32, OptLevel::O0),
            10_000_000,
        )
        .unwrap();
        let o2 = estimate(
            &cfg,
            &compile(LOOP_SRC, Profile::A32, OptLevel::O2),
            10_000_000,
        )
        .unwrap();
        assert!(o0.cycles > o2.cycles, "O0 must be slower than O2");
        // L1D holds the stack-resident locals continuously at O0.
        assert!(o0.avf(Structure::L1DData) > 0.0);
        assert!(o2.avf(Structure::RegFile) > 0.0);
    }
}
