//! # softerr-analysis
//!
//! The study's vulnerability mathematics, mapping measured injection
//! campaigns to the paper's reported quantities:
//!
//! * **weighted AVF** (eq. 1) — per-structure AVF aggregated over
//!   benchmarks, weighted by execution time,
//! * **FIT** (eq. 2) — `FIT = FIT_bit × bits × AVF` per structure, summed
//!   into a CPU failure rate, optionally split by fault class (Fig. 10),
//! * **ECC configurations** (Fig. 12) — unprotected, L1D+L2 protected, and
//!   L2-only protected designs,
//! * **FPE** (eq. 3) — the performance-aware Failures-Per-Execution metric,
//! * **static ACE AVF** ([`mod@ace`]) — a bit-liveness estimate of every
//!   structure's AVF from one golden run, no injections required,
//! * **fault forensics** ([`mod@forensics`]) — detection-latency
//!   distributions, class-by-cycle/bit heatmaps, and first-divergence
//!   censuses over per-fault campaign records,
//! * **sampling efficiency** ([`mod@sampling`]) — uniform vs.
//!   importance-sampling comparison rows and the `repro sampling` table.
#![warn(missing_docs)]

pub mod ace;
mod ecc;
pub mod forensics;
mod metrics;
pub mod profile;
pub mod sampling;
pub mod vuln;

pub use ace::{estimate as ace_estimate, AceEstimate, StructureAvf};
pub use ecc::EccScheme;
pub use metrics::{
    cpu_fit, cpu_fit_by_class, fit_of_structure, fpe, weighted_avf, StructureMeasurement,
};
pub use sampling::{mean_sampling_speedup, sampling_table, SamplingCell};
pub use vuln::{
    mean_static_uplift, static_injected_rank_correlation, static_vuln_table, StaticVulnCell,
};
