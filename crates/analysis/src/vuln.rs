//! Static bit-vulnerability vs. injected AVF comparison (the `repro vuln`
//! table).
//!
//! The compiler's bit-level demand analysis proves, per def site, which
//! destination-register bits can never influence an architecturally
//! visible value. This module relates that *static* masked fraction to the
//! *measured* register-file AVF of the same (machine, workload, level)
//! cell, and quantifies how much the static masks add on top of dynamic
//! liveness pruning. The two quantities are not the same thing — the
//! static fraction is over def-site bits while AVF is over bit-cycles —
//! but they must correlate: a cell whose compiled code carries more
//! provably-dead bits has more masked faults.

use softerr_telemetry::Table;

/// One (machine, workload, level) cell of the static-vs-injected
/// comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticVulnCell {
    /// Machine name (e.g. `"cortex-a15"`).
    pub machine: String,
    /// Workload name.
    pub workload: String,
    /// Optimization level (e.g. `"O2"`).
    pub level: String,
    /// Fraction of def-site destination bits the static analysis proved
    /// masked (0 = every bit demanded, 1 = all provably dead).
    pub static_masked: f64,
    /// Injected register-file AVF measured by the campaign.
    pub injected_avf: f64,
    /// Fraction of sampled RF faults the dynamic liveness pruner
    /// classified without simulation.
    pub prune_rate_liveness: f64,
    /// Fraction pruned with the static demand masks composed on top
    /// (always ≥ `prune_rate_liveness`: static pruning is a refinement).
    pub prune_rate_static: f64,
}

impl StaticVulnCell {
    /// Additional prune rate the static masks bought over liveness alone.
    pub fn static_uplift(&self) -> f64 {
        (self.prune_rate_static - self.prune_rate_liveness).max(0.0)
    }
}

/// Renders the comparison as the `repro vuln` table: one row per cell,
/// with the static masked fraction beside the measured RF AVF and both
/// prune rates.
pub fn static_vuln_table(cells: &[StaticVulnCell]) -> Table {
    let mut t = Table::new(vec![
        "machine".into(),
        "workload".into(),
        "level".into(),
        "static masked".into(),
        "RF AVF".into(),
        "prune (liveness)".into(),
        "prune (+static)".into(),
        "uplift".into(),
    ]);
    for c in cells {
        t.row(vec![
            c.machine.clone(),
            c.workload.clone(),
            c.level.clone(),
            format!("{:.4}", c.static_masked),
            format!("{:.4}", c.injected_avf),
            format!("{:.4}", c.prune_rate_liveness),
            format!("{:.4}", c.prune_rate_static),
            format!("{:+.4}", c.prune_rate_static - c.prune_rate_liveness),
        ]);
    }
    t
}

/// Mean additional prune rate across cells (the headline "what did the
/// static analysis buy" number).
pub fn mean_static_uplift(cells: &[StaticVulnCell]) -> f64 {
    if cells.is_empty() {
        return 0.0;
    }
    cells.iter().map(StaticVulnCell::static_uplift).sum::<f64>() / cells.len() as f64
}

/// Spearman rank correlation between the static masked fraction and the
/// *masked* fraction of injections (`1 - AVF`) across cells. Positive
/// means the static proof tracks the measured masking, which is the
/// soundness-adjacent sanity check the paper's methodology section asks
/// for. Returns `None` with fewer than three cells or when either side
/// has no variation (rank correlation is undefined on constants).
pub fn static_injected_rank_correlation(cells: &[StaticVulnCell]) -> Option<f64> {
    if cells.len() < 3 {
        return None;
    }
    let xs: Vec<f64> = cells.iter().map(|c| c.static_masked).collect();
    let ys: Vec<f64> = cells.iter().map(|c| 1.0 - c.injected_avf).collect();
    let rx = ranks(&xs);
    let ry = ranks(&ys);
    pearson(&rx, &ry)
}

/// Fractional (average-tie) ranks of a sample.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation; `None` when either side is constant.
fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(masked: f64, avf: f64, live: f64, stat: f64) -> StaticVulnCell {
        StaticVulnCell {
            machine: "m".into(),
            workload: "w".into(),
            level: "O2".into(),
            static_masked: masked,
            injected_avf: avf,
            prune_rate_liveness: live,
            prune_rate_static: stat,
        }
    }

    #[test]
    fn uplift_is_nonnegative_and_averaged() {
        let cells = vec![cell(0.2, 0.1, 0.5, 0.7), cell(0.1, 0.2, 0.6, 0.6)];
        assert!((cells[0].static_uplift() - 0.2).abs() < 1e-12);
        assert_eq!(cells[1].static_uplift(), 0.0);
        assert!((mean_static_uplift(&cells) - 0.1).abs() < 1e-12);
        assert_eq!(mean_static_uplift(&[]), 0.0);
    }

    #[test]
    fn table_has_one_row_per_cell_and_all_columns() {
        let cells = vec![cell(0.25, 0.125, 0.5, 0.625)];
        let rendered = static_vuln_table(&cells).to_string();
        assert!(rendered.contains("static masked"));
        assert!(rendered.contains("0.2500"));
        assert!(rendered.contains("+0.1250"));
        assert_eq!(
            rendered.lines().filter(|l| l.contains("O2")).count(),
            1,
            "one data row"
        );
    }

    #[test]
    fn perfectly_aligned_cells_correlate_positively() {
        // More statically-masked bits ↔ more masked injections.
        let cells: Vec<StaticVulnCell> = (0..6)
            .map(|i| {
                let f = i as f64 / 10.0;
                cell(f, 1.0 - f, 0.0, 0.0)
            })
            .collect();
        let rho = static_injected_rank_correlation(&cells).unwrap();
        assert!((rho - 1.0).abs() < 1e-9, "rho = {rho}");
        let anti: Vec<StaticVulnCell> = (0..6)
            .map(|i| {
                let f = i as f64 / 10.0;
                cell(f, f, 0.0, 0.0)
            })
            .collect();
        let rho = static_injected_rank_correlation(&anti).unwrap();
        assert!((rho + 1.0).abs() < 1e-9, "rho = {rho}");
    }

    #[test]
    fn degenerate_correlations_are_none() {
        assert!(static_injected_rank_correlation(&[]).is_none());
        let constant = vec![cell(0.3, 0.1, 0.0, 0.0); 5];
        assert!(static_injected_rank_correlation(&constant).is_none());
    }

    #[test]
    fn tied_ranks_average() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![0.0, 1.5, 1.5, 3.0]);
    }
}
