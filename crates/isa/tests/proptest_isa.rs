//! Property-based tests for the ISA: encode/decode roundtrips, decoder
//! totality (no panics on arbitrary words), and emulator robustness on
//! random-but-valid straight-line programs.

use proptest::prelude::*;
use softerr_isa::{
    decode, encode, eval_alu, AluOp, BranchCond, Emulator, Instr, MemWidth, Profile, Program, Reg,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

fn arb_imm_op() -> impl Strategy<Value = AluOp> {
    arb_alu_op().prop_filter("imm form", |op| op.has_imm_form())
}

fn arb_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![Just(MemWidth::B), Just(MemWidth::W), Just(MemWidth::D)]
}

fn arb_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

prop_compose! {
    fn arb_instr()(
        kind in 0u8..10,
        op in arb_alu_op(),
        imm_op in arb_imm_op(),
        rd in arb_reg(),
        rs1 in arb_reg(),
        rs2 in arb_reg(),
        width in arb_width(),
        signed in any::<bool>(),
        imm14 in -8192i32..8192,
        imm19 in -262144i32..262144,
    ) -> Instr {
        match kind {
            0 => Instr::Alu { op, rd, rs1, rs2 },
            1 => Instr::AluImm { op: imm_op, rd, rs1, imm: imm14 },
            2 => Instr::Load { width, signed: signed && width != MemWidth::D, rd, base: rs1, offset: imm14 },
            3 => Instr::Store { width, src: rs2, base: rs1, offset: imm14 },
            4 => Instr::Branch { cond: BranchCond::Eq, rs1, rs2, offset: imm14 },
            5 => Instr::Lui { rd, imm: imm19 },
            6 => Instr::Jal { rd, offset: imm19 },
            7 => Instr::Jalr { rd, base: rs1, offset: imm14 },
            8 => Instr::Out { rs1 },
            _ => Instr::Halt,
        }
    }
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(instr in arb_instr()) {
        let word = encode(instr);
        // Loads of width D are decoded with signed == false.
        let expect = match instr {
            Instr::Load { width: MemWidth::D, rd, base, offset, .. } =>
                Instr::Load { width: MemWidth::D, signed: false, rd, base, offset },
            other => other,
        };
        prop_assert_eq!(decode(word), Ok(expect));
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decode_of_valid_with_one_bit_flip_never_panics(instr in arb_instr(), bit in 0u32..32) {
        let _ = decode(encode(instr) ^ (1 << bit));
    }

    #[test]
    fn branch_cond_roundtrip(cond in arb_cond(), rs1 in arb_reg(), rs2 in arb_reg(), off in -8192i32..8192) {
        let i = Instr::Branch { cond, rs1, rs2, offset: off };
        prop_assert_eq!(decode(encode(i)), Ok(i));
    }

    #[test]
    fn alu_matches_native_semantics_on_a64(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(eval_alu(Profile::A64, AluOp::Add, a, b), a.wrapping_add(b));
        prop_assert_eq!(eval_alu(Profile::A64, AluOp::Xor, a, b), a ^ b);
        prop_assert_eq!(eval_alu(Profile::A64, AluOp::Sltu, a, b), u64::from(a < b));
    }

    #[test]
    fn a32_results_always_fit_32_bits(op in arb_alu_op(), a in any::<u64>(), b in any::<u64>()) {
        let v = eval_alu(Profile::A32, op, a, b);
        prop_assert_eq!(v >> 32, 0, "A32 result {:#x} exceeds 32 bits", v);
    }

    /// Straight-line ALU programs over in-profile registers never trap and
    /// always match between a fresh emulator and a re-run.
    #[test]
    fn emulator_is_deterministic(
        ops in prop::collection::vec((arb_imm_op(), 3u8..8, 3u8..8, -100i32..100), 1..40)
    ) {
        let mut instrs: Vec<Instr> = ops
            .into_iter()
            .map(|(op, rd, rs1, imm)| Instr::AluImm {
                op,
                rd: Reg::new(rd),
                rs1: Reg::new(rs1),
                imm,
            })
            .collect();
        for r in 3u8..8 {
            instrs.push(Instr::Out { rs1: Reg::new(r) });
        }
        instrs.push(Instr::Halt);
        let program = Program::from_instrs(Profile::A32, instrs);
        let out1 = Emulator::new(&program).run(10_000).unwrap();
        let out2 = Emulator::new(&program).run(10_000).unwrap();
        prop_assert!(out1.completed);
        prop_assert_eq!(out1, out2);
    }
}
