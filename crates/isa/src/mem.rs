//! Flat guest memory with a protected null page and natural-alignment rules.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Kind of guest memory fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemFaultKind {
    /// Access beyond the end of guest memory.
    OutOfRange,
    /// Access inside the unmapped null page (`0..0x1000`).
    NullPage,
    /// Address not naturally aligned for the access width.
    Misaligned,
}

/// A guest memory access fault.
///
/// In the study these faults model what an MMU/bus would raise on real
/// hardware; the fault-injection framework classifies a committed fault as a
/// **Crash** outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemFault {
    /// Faulting guest address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// Fault kind.
    pub kind: MemFaultKind,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory fault at {:#x} (size {}): {:?}",
            self.addr, self.size, self.kind
        )
    }
}

impl std::error::Error for MemFault {}

/// Size of the unmapped guard page at address zero.
pub const NULL_PAGE: u64 = 0x1000;

/// Flat little-endian guest memory.
///
/// The first 4 KiB are unmapped so that null-pointer dereferences fault, as
/// they would under an OS; everything else is readable and writable.
///
/// The byte store is copy-on-write: cloning a `Memory` shares the backing
/// allocation, and the first write after a clone materializes a private
/// copy. This makes forking a simulator from a checkpoint cheap — suffix
/// runs that never write back to main memory (the common case for cached
/// workloads) never pay for a copy of guest memory.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Arc<Vec<u8>>,
}

impl PartialEq for Memory {
    fn eq(&self, other: &Memory) -> bool {
        // Clones that were never written to still share the allocation.
        Arc::ptr_eq(&self.bytes, &other.bytes) || self.bytes == other.bytes
    }
}

impl Eq for Memory {}

impl Memory {
    /// Allocates `size` bytes of zeroed guest memory.
    pub fn new(size: u64) -> Memory {
        Memory {
            bytes: Arc::new(vec![0; size as usize]),
        }
    }

    /// Total guest memory size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn check(&self, addr: u64, size: u64) -> Result<usize, MemFault> {
        if addr < NULL_PAGE {
            return Err(MemFault {
                addr,
                size,
                kind: MemFaultKind::NullPage,
            });
        }
        if !addr.is_multiple_of(size) {
            return Err(MemFault {
                addr,
                size,
                kind: MemFaultKind::Misaligned,
            });
        }
        if addr.checked_add(size).is_none_or(|end| end > self.size()) {
            return Err(MemFault {
                addr,
                size,
                kind: MemFaultKind::OutOfRange,
            });
        }
        Ok(addr as usize)
    }

    /// Reads a naturally-aligned little-endian value of `size` bytes (1, 2, 4
    /// or 8), zero-extended to 64 bits.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] on misalignment, null-page access, or
    /// out-of-range access.
    pub fn read(&self, addr: u64, size: u64) -> Result<u64, MemFault> {
        let base = self.check(addr, size)?;
        let mut value = 0u64;
        for i in (0..size as usize).rev() {
            value = (value << 8) | u64::from(self.bytes[base + i]);
        }
        Ok(value)
    }

    /// Writes the low `size` bytes of `value` little-endian at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] on misalignment, null-page access, or
    /// out-of-range access.
    pub fn write(&mut self, addr: u64, size: u64, value: u64) -> Result<(), MemFault> {
        let base = self.check(addr, size)?;
        let bytes = Arc::make_mut(&mut self.bytes);
        for i in 0..size as usize {
            bytes[base + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Fetches a 32-bit instruction word (4-byte aligned).
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] exactly as [`Memory::read`] would.
    pub fn fetch(&self, addr: u64) -> Result<u32, MemFault> {
        self.read(addr, 4).map(|v| v as u32)
    }

    /// Copies raw bytes into memory without alignment checks (used by the
    /// program loader and cache line fills, whose addresses are aligned by
    /// construction).
    ///
    /// # Panics
    ///
    /// Panics if the range is outside guest memory — loader addresses are
    /// trusted.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let base = addr as usize;
        Arc::make_mut(&mut self.bytes)[base..base + data.len()].copy_from_slice(data);
    }

    /// Reads raw bytes without alignment checks (cache line fills).
    ///
    /// # Panics
    ///
    /// Panics if the range is outside guest memory.
    pub fn read_bytes(&self, addr: u64, len: usize) -> &[u8] {
        let base = addr as usize;
        &self.bytes[base..base + len]
    }

    /// Whether `addr..addr+len` lies entirely in mapped guest memory (above
    /// the null page and below the end).
    pub fn contains_range(&self, addr: u64, len: u64) -> bool {
        addr >= NULL_PAGE && addr.checked_add(len).is_some_and(|end| end <= self.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut m = Memory::new(0x3000);
        for (size, val) in [
            (1, 0xAB),
            (2, 0xBEEF),
            (4, 0xDEAD_BEEF),
            (8, 0x0123_4567_89AB_CDEF),
        ] {
            m.write(0x2000, size, val).unwrap();
            assert_eq!(m.read(0x2000, size).unwrap(), val);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(0x3000);
        m.write(0x2000, 4, 0x0403_0201).unwrap();
        assert_eq!(m.read(0x2000, 1).unwrap(), 0x01);
        assert_eq!(m.read(0x2003, 1).unwrap(), 0x04);
    }

    #[test]
    fn null_page_faults() {
        let mut m = Memory::new(0x3000);
        assert_eq!(m.read(0, 4).unwrap_err().kind, MemFaultKind::NullPage);
        assert_eq!(m.read(0xFFC, 4).unwrap_err().kind, MemFaultKind::NullPage);
        assert_eq!(m.write(8, 8, 1).unwrap_err().kind, MemFaultKind::NullPage);
        assert!(m.read(0x1000, 4).is_ok());
    }

    #[test]
    fn misaligned_faults() {
        let m = Memory::new(0x3000);
        assert_eq!(
            m.read(0x2001, 4).unwrap_err().kind,
            MemFaultKind::Misaligned
        );
        assert_eq!(
            m.read(0x2004, 8).unwrap_err().kind,
            MemFaultKind::Misaligned
        );
        assert!(m.read(0x2001, 1).is_ok(), "bytes have no alignment");
    }

    #[test]
    fn out_of_range_faults() {
        let m = Memory::new(0x3000);
        assert_eq!(
            m.read(0x3000, 4).unwrap_err().kind,
            MemFaultKind::OutOfRange
        );
        assert_eq!(
            m.read(0x2FFC, 8).unwrap_err().kind,
            MemFaultKind::Misaligned
        );
        assert!(m.read(0x2FF8, 8).is_ok(), "last aligned dword is in range");
        // u64::MAX - 7 is 8-aligned; its end overflows u64 → out of range.
        assert_eq!(
            m.read(u64::MAX - 7, 8).unwrap_err().kind,
            MemFaultKind::OutOfRange
        );
    }

    #[test]
    fn overflowing_address_faults_not_panics() {
        let m = Memory::new(0x3000);
        // Aligned address whose end overflows u64.
        assert_eq!(m.read(!7, 8).unwrap_err().kind, MemFaultKind::OutOfRange);
    }

    #[test]
    fn contains_range_matches_fault_rules() {
        let m = Memory::new(0x3000);
        assert!(m.contains_range(0x1000, 0x2000));
        assert!(!m.contains_range(0x800, 8));
        assert!(!m.contains_range(0x2FFF, 8));
        assert!(!m.contains_range(u64::MAX, 8));
    }
}
