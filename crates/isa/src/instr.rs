//! Instruction definitions, the fixed 32-bit encoding, and shared ALU/branch
//! semantics used by both the reference emulator and the cycle-level
//! simulator.
//!
//! ## Encoding
//!
//! Every instruction is one little-endian 32-bit word. Bits `[7:0]` hold the
//! major opcode; only 43 of the 256 opcode values are defined, and unused
//! operand bits must be zero, so the overwhelming majority of random words
//! (and of single-bit corruptions of valid words) fail to decode. Formats:
//!
//! | Format | `[7:0]` | `[12:8]` | `[17:13]` | `[22:18]` | `[31:23]` |
//! |--------|---------|----------|-----------|-----------|-----------|
//! | R      | opcode  | rd       | rs1       | rs2       | must be 0 |
//! | I      | opcode  | rd       | rs1       | imm14 `[31:18]` (signed) | |
//! | S/B    | opcode  | imm[4:0] | rs1       | rs2       | imm[13:5] |
//! | U/J    | opcode  | rd       | imm19 `[31:13]` (signed) | | |

use crate::{Profile, Reg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Integer ALU operation, shared by register-register and immediate forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low half).
    Mul,
    /// Signed division; division by zero yields 0 (Arm semantics).
    Div,
    /// Unsigned division; division by zero yields 0.
    Divu,
    /// Signed remainder; remainder by zero yields the dividend.
    Rem,
    /// Unsigned remainder; remainder by zero yields the dividend.
    Remu,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount taken modulo the datapath width).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Signed set-less-than (1 or 0).
    Slt,
    /// Unsigned set-less-than (1 or 0).
    Sltu,
}

impl AluOp {
    /// Whether the operation has an immediate (I-type) form.
    pub fn has_imm_form(self) -> bool {
        !matches!(
            self,
            AluOp::Sub | AluOp::Mul | AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu
        )
    }
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemWidth {
    /// One byte.
    B,
    /// Four bytes (a 32-bit word).
    W,
    /// Eight bytes; only valid on the [`Profile::A64`] profile.
    D,
}

impl MemWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }
}

/// Branch condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// A decoded instruction.
///
/// Offsets in [`Instr::Branch`] and [`Instr::Jal`] are in *instruction words*
/// relative to the instruction's own PC; [`Instr::Jalr`] and memory offsets
/// are in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// Register-register ALU operation: `rd = rs1 op rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Register-immediate ALU operation: `rd = rs1 op imm`.
    AluImm {
        /// Operation; must satisfy [`AluOp::has_imm_form`].
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Signed 14-bit immediate.
        imm: i32,
    },
    /// Memory load: `rd = mem[rs1 + offset]`.
    Load {
        /// Access width.
        width: MemWidth,
        /// Sign-extend the loaded value (ignored for [`MemWidth::D`]).
        signed: bool,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset (14-bit).
        offset: i32,
    },
    /// Memory store: `mem[base + offset] = src`.
    Store {
        /// Access width.
        width: MemWidth,
        /// Register holding the value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset (14-bit).
        offset: i32,
    },
    /// Conditional branch to `pc + offset*4`.
    Branch {
        /// Condition comparing `rs1` and `rs2`.
        cond: BranchCond,
        /// First comparison source.
        rs1: Reg,
        /// Second comparison source.
        rs2: Reg,
        /// Signed offset in instruction words (14-bit).
        offset: i32,
    },
    /// Load upper immediate: `rd = imm << 13` (sign-extended).
    Lui {
        /// Destination register.
        rd: Reg,
        /// Signed 19-bit immediate.
        imm: i32,
    },
    /// Jump and link: `rd = pc + 4; pc += offset*4`.
    Jal {
        /// Link register (use [`Reg::ZERO`] for a plain jump).
        rd: Reg,
        /// Signed offset in instruction words (19-bit).
        offset: i32,
    },
    /// Indirect jump: `rd = pc + 4; pc = base + offset`.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset (14-bit).
        offset: i32,
    },
    /// Emit the value of `rs1` to the program output stream.
    Out {
        /// Register whose value is emitted.
        rs1: Reg,
    },
    /// Stop the program successfully.
    Halt,
}

/// The major opcode byte of each instruction form.
///
/// Values are scattered over the 8-bit space so that bit flips rarely map one
/// valid opcode onto another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Opcode {
    Add = 0x33,
    Sub = 0xB3,
    Mul = 0x47,
    Div = 0x8E,
    Divu = 0xD1,
    Rem = 0x5C,
    Remu = 0xE9,
    And = 0x77,
    Or = 0x1D,
    Xor = 0xC5,
    Sll = 0x3A,
    Srl = 0x96,
    Sra = 0x62,
    Slt = 0x29,
    Sltu = 0xF4,
    Addi = 0x13,
    Andi = 0x7C,
    Ori = 0xA1,
    Xori = 0x58,
    Slli = 0x2F,
    Srli = 0x9B,
    Srai = 0x66,
    Slti = 0xD8,
    Sltiu = 0x41,
    Lb = 0x03,
    Lbu = 0x83,
    Lw = 0x23,
    Lwu = 0xA7,
    Ld = 0x63,
    Sb = 0x0B,
    Sw = 0x2B,
    Sd = 0x6B,
    Beq = 0x17,
    Bne = 0x97,
    Blt = 0x37,
    Bge = 0xB7,
    Bltu = 0x57,
    Bgeu = 0xD7,
    Lui = 0x0F,
    Jal = 0x6F,
    Jalr = 0xE7,
    Out = 0x4D,
    Halt = 0x73,
}

/// All defined opcodes, used by tests and the decoder.
pub(crate) const ALL_OPCODES: [Opcode; 43] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Divu,
    Opcode::Rem,
    Opcode::Remu,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Sll,
    Opcode::Srl,
    Opcode::Sra,
    Opcode::Slt,
    Opcode::Sltu,
    Opcode::Addi,
    Opcode::Andi,
    Opcode::Ori,
    Opcode::Xori,
    Opcode::Slli,
    Opcode::Srli,
    Opcode::Srai,
    Opcode::Slti,
    Opcode::Sltiu,
    Opcode::Lb,
    Opcode::Lbu,
    Opcode::Lw,
    Opcode::Lwu,
    Opcode::Ld,
    Opcode::Sb,
    Opcode::Sw,
    Opcode::Sd,
    Opcode::Beq,
    Opcode::Bne,
    Opcode::Blt,
    Opcode::Bge,
    Opcode::Bltu,
    Opcode::Bgeu,
    Opcode::Lui,
    Opcode::Jal,
    Opcode::Jalr,
    Opcode::Out,
    Opcode::Halt,
];

impl Opcode {
    fn from_byte(b: u8) -> Option<Opcode> {
        ALL_OPCODES.iter().copied().find(|op| *op as u8 == b)
    }
}

/// Error produced when a 32-bit word does not decode to a valid instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeError {
    /// The opcode byte is not a defined opcode.
    UnknownOpcode(u8),
    /// Operand bits that the format requires to be zero are set.
    NonZeroPadding(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(b) => write!(f, "unknown opcode byte {b:#04x}"),
            DecodeError::NonZeroPadding(w) => {
                write!(f, "non-zero padding bits in word {w:#010x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const IMM14_MIN: i32 = -(1 << 13);
const IMM14_MAX: i32 = (1 << 13) - 1;
const IMM19_MIN: i32 = -(1 << 18);
const IMM19_MAX: i32 = (1 << 18) - 1;

fn rd_bits(r: Reg) -> u32 {
    (r.index() as u32) << 8
}
fn rs1_bits(r: Reg) -> u32 {
    (r.index() as u32) << 13
}
fn rs2_bits(r: Reg) -> u32 {
    (r.index() as u32) << 18
}

fn check_imm14(imm: i32) -> u32 {
    assert!(
        (IMM14_MIN..=IMM14_MAX).contains(&imm),
        "immediate {imm} out of 14-bit range"
    );
    (imm as u32) & 0x3FFF
}

fn check_imm19(imm: i32) -> u32 {
    assert!(
        (IMM19_MIN..=IMM19_MAX).contains(&imm),
        "immediate {imm} out of 19-bit range"
    );
    (imm as u32) & 0x7_FFFF
}

fn enc_r(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    op as u32 | rd_bits(rd) | rs1_bits(rs1) | rs2_bits(rs2)
}

fn enc_i(op: Opcode, rd: Reg, rs1: Reg, imm: i32) -> u32 {
    op as u32 | rd_bits(rd) | rs1_bits(rs1) | (check_imm14(imm) << 18)
}

fn enc_sb(op: Opcode, rs1: Reg, rs2: Reg, imm: i32) -> u32 {
    let imm = check_imm14(imm);
    op as u32 | ((imm & 0x1F) << 8) | rs1_bits(rs1) | rs2_bits(rs2) | ((imm >> 5) << 23)
}

fn enc_uj(op: Opcode, rd: Reg, imm: i32) -> u32 {
    op as u32 | rd_bits(rd) | (check_imm19(imm) << 13)
}

/// Encodes an instruction to its 32-bit machine word.
///
/// # Panics
///
/// Panics if an immediate is out of range for its field, or if
/// [`Instr::AluImm`] is used with an operation that has no immediate form
/// (see [`AluOp::has_imm_form`]). Both indicate a code-generation bug, not a
/// runtime condition.
pub fn encode(instr: Instr) -> u32 {
    match instr {
        Instr::Alu { op, rd, rs1, rs2 } => {
            let opc = match op {
                AluOp::Add => Opcode::Add,
                AluOp::Sub => Opcode::Sub,
                AluOp::Mul => Opcode::Mul,
                AluOp::Div => Opcode::Div,
                AluOp::Divu => Opcode::Divu,
                AluOp::Rem => Opcode::Rem,
                AluOp::Remu => Opcode::Remu,
                AluOp::And => Opcode::And,
                AluOp::Or => Opcode::Or,
                AluOp::Xor => Opcode::Xor,
                AluOp::Sll => Opcode::Sll,
                AluOp::Srl => Opcode::Srl,
                AluOp::Sra => Opcode::Sra,
                AluOp::Slt => Opcode::Slt,
                AluOp::Sltu => Opcode::Sltu,
            };
            enc_r(opc, rd, rs1, rs2)
        }
        Instr::AluImm { op, rd, rs1, imm } => {
            let opc = match op {
                AluOp::Add => Opcode::Addi,
                AluOp::And => Opcode::Andi,
                AluOp::Or => Opcode::Ori,
                AluOp::Xor => Opcode::Xori,
                AluOp::Sll => Opcode::Slli,
                AluOp::Srl => Opcode::Srli,
                AluOp::Sra => Opcode::Srai,
                AluOp::Slt => Opcode::Slti,
                AluOp::Sltu => Opcode::Sltiu,
                other => panic!("ALU op {other:?} has no immediate form"),
            };
            enc_i(opc, rd, rs1, imm)
        }
        Instr::Load {
            width,
            signed,
            rd,
            base,
            offset,
        } => {
            let opc = match (width, signed) {
                (MemWidth::B, true) => Opcode::Lb,
                (MemWidth::B, false) => Opcode::Lbu,
                (MemWidth::W, true) => Opcode::Lw,
                (MemWidth::W, false) => Opcode::Lwu,
                (MemWidth::D, _) => Opcode::Ld,
            };
            enc_i(opc, rd, base, offset)
        }
        Instr::Store {
            width,
            src,
            base,
            offset,
        } => {
            let opc = match width {
                MemWidth::B => Opcode::Sb,
                MemWidth::W => Opcode::Sw,
                MemWidth::D => Opcode::Sd,
            };
            enc_sb(opc, base, src, offset)
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            let opc = match cond {
                BranchCond::Eq => Opcode::Beq,
                BranchCond::Ne => Opcode::Bne,
                BranchCond::Lt => Opcode::Blt,
                BranchCond::Ge => Opcode::Bge,
                BranchCond::Ltu => Opcode::Bltu,
                BranchCond::Geu => Opcode::Bgeu,
            };
            enc_sb(opc, rs1, rs2, offset)
        }
        Instr::Lui { rd, imm } => enc_uj(Opcode::Lui, rd, imm),
        Instr::Jal { rd, offset } => enc_uj(Opcode::Jal, rd, offset),
        Instr::Jalr { rd, base, offset } => enc_i(Opcode::Jalr, rd, base, offset),
        Instr::Out { rs1 } => enc_r(Opcode::Out, Reg::ZERO, rs1, Reg::ZERO),
        Instr::Halt => Opcode::Halt as u32,
    }
}

fn dec_rd(word: u32) -> Reg {
    Reg::new(((word >> 8) & 0x1F) as u8)
}
fn dec_rs1(word: u32) -> Reg {
    Reg::new(((word >> 13) & 0x1F) as u8)
}
fn dec_rs2(word: u32) -> Reg {
    Reg::new(((word >> 18) & 0x1F) as u8)
}
fn dec_imm14_i(word: u32) -> i32 {
    // Arithmetic shift sign-extends the top 14 bits.
    (word as i32) >> 18
}
fn dec_imm14_sb(word: u32) -> i32 {
    let lo = (word >> 8) & 0x1F;
    let hi = (word >> 23) & 0x1FF;
    let raw = (hi << 5) | lo;
    ((raw << 18) as i32) >> 18
}
fn dec_imm19(word: u32) -> i32 {
    (word as i32) >> 13
}

/// Decodes a 32-bit machine word.
///
/// # Errors
///
/// Returns [`DecodeError::UnknownOpcode`] if the opcode byte is undefined and
/// [`DecodeError::NonZeroPadding`] if format-reserved bits are set. Random or
/// corrupted words usually fail one of these checks, which the simulator
/// surfaces as an undefined-instruction fault.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let opc = Opcode::from_byte((word & 0xFF) as u8)
        .ok_or(DecodeError::UnknownOpcode((word & 0xFF) as u8))?;
    let require_zero = |mask: u32| -> Result<(), DecodeError> {
        if word & mask != 0 {
            Err(DecodeError::NonZeroPadding(word))
        } else {
            Ok(())
        }
    };
    let r_type = |op: AluOp| -> Result<Instr, DecodeError> {
        require_zero(0xFF80_0000)?;
        Ok(Instr::Alu {
            op,
            rd: dec_rd(word),
            rs1: dec_rs1(word),
            rs2: dec_rs2(word),
        })
    };
    let i_alu = |op: AluOp| -> Result<Instr, DecodeError> {
        Ok(Instr::AluImm {
            op,
            rd: dec_rd(word),
            rs1: dec_rs1(word),
            imm: dec_imm14_i(word),
        })
    };
    let load = |width: MemWidth, signed: bool| -> Result<Instr, DecodeError> {
        Ok(Instr::Load {
            width,
            signed,
            rd: dec_rd(word),
            base: dec_rs1(word),
            offset: dec_imm14_i(word),
        })
    };
    let store = |width: MemWidth| -> Result<Instr, DecodeError> {
        Ok(Instr::Store {
            width,
            src: dec_rs2(word),
            base: dec_rs1(word),
            offset: dec_imm14_sb(word),
        })
    };
    let branch = |cond: BranchCond| -> Result<Instr, DecodeError> {
        Ok(Instr::Branch {
            cond,
            rs1: dec_rs1(word),
            rs2: dec_rs2(word),
            offset: dec_imm14_sb(word),
        })
    };
    match opc {
        Opcode::Add => r_type(AluOp::Add),
        Opcode::Sub => r_type(AluOp::Sub),
        Opcode::Mul => r_type(AluOp::Mul),
        Opcode::Div => r_type(AluOp::Div),
        Opcode::Divu => r_type(AluOp::Divu),
        Opcode::Rem => r_type(AluOp::Rem),
        Opcode::Remu => r_type(AluOp::Remu),
        Opcode::And => r_type(AluOp::And),
        Opcode::Or => r_type(AluOp::Or),
        Opcode::Xor => r_type(AluOp::Xor),
        Opcode::Sll => r_type(AluOp::Sll),
        Opcode::Srl => r_type(AluOp::Srl),
        Opcode::Sra => r_type(AluOp::Sra),
        Opcode::Slt => r_type(AluOp::Slt),
        Opcode::Sltu => r_type(AluOp::Sltu),
        Opcode::Addi => i_alu(AluOp::Add),
        Opcode::Andi => i_alu(AluOp::And),
        Opcode::Ori => i_alu(AluOp::Or),
        Opcode::Xori => i_alu(AluOp::Xor),
        Opcode::Slli => i_alu(AluOp::Sll),
        Opcode::Srli => i_alu(AluOp::Srl),
        Opcode::Srai => i_alu(AluOp::Sra),
        Opcode::Slti => i_alu(AluOp::Slt),
        Opcode::Sltiu => i_alu(AluOp::Sltu),
        Opcode::Lb => load(MemWidth::B, true),
        Opcode::Lbu => load(MemWidth::B, false),
        Opcode::Lw => load(MemWidth::W, true),
        Opcode::Lwu => load(MemWidth::W, false),
        Opcode::Ld => load(MemWidth::D, false),
        Opcode::Sb => store(MemWidth::B),
        Opcode::Sw => store(MemWidth::W),
        Opcode::Sd => store(MemWidth::D),
        Opcode::Beq => branch(BranchCond::Eq),
        Opcode::Bne => branch(BranchCond::Ne),
        Opcode::Blt => branch(BranchCond::Lt),
        Opcode::Bge => branch(BranchCond::Ge),
        Opcode::Bltu => branch(BranchCond::Ltu),
        Opcode::Bgeu => branch(BranchCond::Geu),
        Opcode::Lui => Ok(Instr::Lui {
            rd: dec_rd(word),
            imm: dec_imm19(word),
        }),
        Opcode::Jal => Ok(Instr::Jal {
            rd: dec_rd(word),
            offset: dec_imm19(word),
        }),
        Opcode::Jalr => Ok(Instr::Jalr {
            rd: dec_rd(word),
            base: dec_rs1(word),
            offset: dec_imm14_i(word),
        }),
        Opcode::Out => {
            require_zero(0xFFFC_1F00)?;
            Ok(Instr::Out { rs1: dec_rs1(word) })
        }
        Opcode::Halt => {
            require_zero(0xFFFF_FF00)?;
            Ok(Instr::Halt)
        }
    }
}

/// Evaluates an ALU operation with the profile's width semantics.
///
/// This single definition is shared by the reference emulator and the
/// simulator's execution units so that architectural and microarchitectural
/// results can never diverge.
pub fn eval_alu(profile: Profile, op: AluOp, a: u64, b: u64) -> u64 {
    let sa = profile.as_signed(a);
    let sb = profile.as_signed(b);
    let ua = profile.mask(a);
    let ub = profile.mask(b);
    let shift_mask = (profile.xlen() - 1) as u64;
    let raw = match op {
        AluOp::Add => ua.wrapping_add(ub),
        AluOp::Sub => ua.wrapping_sub(ub),
        AluOp::Mul => ua.wrapping_mul(ub),
        AluOp::Div => {
            if sb == 0 {
                0 // Arm SDIV semantics: division by zero yields zero
            } else if sa == i64::MIN && sb == -1 {
                sa as u64
            } else {
                (sa / sb) as u64
            }
        }
        AluOp::Divu => ua.checked_div(ub).unwrap_or(0),
        AluOp::Rem => {
            if sb == 0 {
                sa as u64
            } else if sa == i64::MIN && sb == -1 {
                0
            } else {
                (sa % sb) as u64
            }
        }
        AluOp::Remu => {
            if ub == 0 {
                ua
            } else {
                ua % ub
            }
        }
        AluOp::And => ua & ub,
        AluOp::Or => ua | ub,
        AluOp::Xor => ua ^ ub,
        AluOp::Sll => ua.wrapping_shl((ub & shift_mask) as u32),
        AluOp::Srl => ua.wrapping_shr((ub & shift_mask) as u32),
        AluOp::Sra => (sa >> (ub & shift_mask)) as u64,
        AluOp::Slt => u64::from(sa < sb),
        AluOp::Sltu => u64::from(ua < ub),
    };
    profile.mask(raw)
}

/// Evaluates a branch condition with the profile's width semantics.
pub fn eval_branch(profile: Profile, cond: BranchCond, a: u64, b: u64) -> bool {
    let sa = profile.as_signed(a);
    let sb = profile.as_signed(b);
    let ua = profile.mask(a);
    let ub = profile.mask(b);
    match cond {
        BranchCond::Eq => ua == ub,
        BranchCond::Ne => ua != ub,
        BranchCond::Lt => sa < sb,
        BranchCond::Ge => sa >= sb,
        BranchCond::Ltu => ua < ub,
        BranchCond::Geu => ua >= ub,
    }
}

impl Instr {
    /// Whether this instruction can redirect control flow.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Halt
        )
    }

    /// Destination register, if the instruction writes one.
    ///
    /// Writes to [`Reg::ZERO`] are reported as `None` (they are
    /// architectural no-ops).
    pub fn dest(self) -> Option<Reg> {
        let rd = match self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Lui { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. } => rd,
            Instr::Store { .. } | Instr::Branch { .. } | Instr::Out { .. } | Instr::Halt => {
                return None
            }
        };
        (rd != Reg::ZERO).then_some(rd)
    }

    /// Source registers read by the instruction (zero register included).
    pub fn sources(self) -> (Option<Reg>, Option<Reg>) {
        match self {
            Instr::Alu { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
            Instr::AluImm { rs1, .. } => (Some(rs1), None),
            Instr::Load { base, .. } => (Some(base), None),
            Instr::Store { src, base, .. } => (Some(base), Some(src)),
            Instr::Branch { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
            Instr::Lui { .. } | Instr::Jal { .. } | Instr::Halt => (None, None),
            Instr::Jalr { base, .. } => (Some(base), None),
            Instr::Out { rs1 } => (Some(rs1), None),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lower = |s: String| s.to_ascii_lowercase();
        match *self {
            Instr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", lower(format!("{op:?}")))
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", lower(format!("{op:?}")))
            }
            Instr::Load {
                width,
                signed,
                rd,
                base,
                offset,
            } => write!(
                f,
                "l{}{} {rd}, {offset}({base})",
                lower(format!("{width:?}")),
                if signed { "" } else { "u" }
            ),
            Instr::Store {
                width,
                src,
                base,
                offset,
            } => write!(
                f,
                "s{} {src}, {offset}({base})",
                lower(format!("{width:?}"))
            ),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => write!(f, "b{} {rs1}, {rs2}, {offset}", lower(format!("{cond:?}"))),
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {imm}"),
            Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr { rd, base, offset } => write!(f, "jalr {rd}, {offset}({base})"),
            Instr::Out { rs1 } => write!(f, "out {rs1}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcodes_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for op in ALL_OPCODES {
            assert!(
                seen.insert(op as u8),
                "duplicate opcode byte {:#04x}",
                op as u8
            );
        }
        assert_eq!(seen.len(), 43);
    }

    #[test]
    fn roundtrip_representative_instructions() {
        let r = |n| Reg::new(n);
        let cases = [
            Instr::Alu {
                op: AluOp::Add,
                rd: r(3),
                rs1: r(4),
                rs2: r(5),
            },
            Instr::Alu {
                op: AluOp::Sltu,
                rd: r(31),
                rs1: r(0),
                rs2: r(30),
            },
            Instr::AluImm {
                op: AluOp::Add,
                rd: r(8),
                rs1: r(8),
                imm: -8192,
            },
            Instr::AluImm {
                op: AluOp::Sra,
                rd: r(9),
                rs1: r(10),
                imm: 63,
            },
            Instr::Load {
                width: MemWidth::W,
                signed: true,
                rd: r(6),
                base: r(2),
                offset: 8191,
            },
            Instr::Load {
                width: MemWidth::D,
                signed: false,
                rd: r(6),
                base: r(2),
                offset: -4,
            },
            Instr::Store {
                width: MemWidth::B,
                src: r(7),
                base: r(2),
                offset: -8192,
            },
            Instr::Branch {
                cond: BranchCond::Geu,
                rs1: r(1),
                rs2: r(2),
                offset: -1,
            },
            Instr::Lui {
                rd: r(5),
                imm: -262144,
            },
            Instr::Jal {
                rd: Reg::RA,
                offset: 262143,
            },
            Instr::Jalr {
                rd: Reg::ZERO,
                base: Reg::RA,
                offset: 0,
            },
            Instr::Out { rs1: r(8) },
            Instr::Halt,
        ];
        for instr in cases {
            let word = encode(instr);
            assert_eq!(decode(word), Ok(instr), "roundtrip failed for {instr}");
        }
    }

    #[test]
    fn decode_rejects_unknown_opcode() {
        assert_eq!(decode(0x0000_0000), Err(DecodeError::UnknownOpcode(0)));
        assert_eq!(decode(0xFFFF_FFFE), Err(DecodeError::UnknownOpcode(0xFE)));
    }

    #[test]
    fn decode_rejects_padded_r_type() {
        let word = encode(Instr::Alu {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            rs2: Reg::new(3),
        });
        assert!(decode(word | (1 << 31)).is_err());
        assert!(decode(word | (1 << 23)).is_err());
    }

    #[test]
    fn halt_requires_zero_operands() {
        assert_eq!(decode(Opcode::Halt as u32), Ok(Instr::Halt));
        assert!(decode(Opcode::Halt as u32 | (1 << 8)).is_err());
    }

    #[test]
    #[should_panic(expected = "no immediate form")]
    fn encode_rejects_imm_mul() {
        encode(Instr::AluImm {
            op: AluOp::Mul,
            rd: Reg::new(1),
            rs1: Reg::new(1),
            imm: 3,
        });
    }

    #[test]
    #[should_panic(expected = "out of 14-bit range")]
    fn encode_rejects_oversized_imm() {
        encode(Instr::AluImm {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(1),
            imm: 8192,
        });
    }

    #[test]
    fn alu_division_by_zero_is_zero() {
        for p in [Profile::A32, Profile::A64] {
            assert_eq!(eval_alu(p, AluOp::Div, 42, 0), 0);
            assert_eq!(eval_alu(p, AluOp::Divu, 42, 0), 0);
            assert_eq!(eval_alu(p, AluOp::Rem, 42, 0), 42);
            assert_eq!(eval_alu(p, AluOp::Remu, 42, 0), 42);
        }
    }

    #[test]
    fn alu_width_semantics_differ_between_profiles() {
        // 0xFFFF_FFFF + 1 wraps to 0 on A32 but not on A64.
        assert_eq!(eval_alu(Profile::A32, AluOp::Add, 0xFFFF_FFFF, 1), 0);
        assert_eq!(
            eval_alu(Profile::A64, AluOp::Add, 0xFFFF_FFFF, 1),
            0x1_0000_0000
        );
        // Arithmetic shift right sees the A32 sign bit.
        assert_eq!(
            eval_alu(Profile::A32, AluOp::Sra, 0x8000_0000, 31),
            0xFFFF_FFFF
        );
        assert_eq!(eval_alu(Profile::A64, AluOp::Sra, 0x8000_0000, 31), 1);
    }

    #[test]
    fn signed_overflow_division_edge() {
        assert_eq!(
            eval_alu(Profile::A64, AluOp::Div, i64::MIN as u64, u64::MAX),
            i64::MIN as u64
        );
        assert_eq!(
            eval_alu(Profile::A64, AluOp::Rem, i64::MIN as u64, u64::MAX),
            0
        );
        assert_eq!(
            eval_alu(Profile::A32, AluOp::Div, 0x8000_0000, 0xFFFF_FFFF),
            0x8000_0000
        );
    }

    #[test]
    fn branch_signedness() {
        assert!(eval_branch(Profile::A32, BranchCond::Lt, 0xFFFF_FFFF, 0)); // -1 < 0
        assert!(!eval_branch(Profile::A32, BranchCond::Ltu, 0xFFFF_FFFF, 0));
        assert!(eval_branch(Profile::A64, BranchCond::Ge, 5, 5));
        assert!(eval_branch(Profile::A64, BranchCond::Ne, 1, 2));
    }

    #[test]
    fn dest_and_sources_classification() {
        let i = Instr::Store {
            width: MemWidth::W,
            src: Reg::new(5),
            base: Reg::SP,
            offset: 0,
        };
        assert_eq!(i.dest(), None);
        assert_eq!(i.sources(), (Some(Reg::SP), Some(Reg::new(5))));
        let j = Instr::Jal {
            rd: Reg::ZERO,
            offset: 4,
        };
        assert_eq!(j.dest(), None, "writes to zero register are no-ops");
        assert!(j.is_control());
    }
}
