//! Program disassembly, for debugging compiled workloads and inspecting
//! what injected instruction-bit flips turned an encoding into.

use crate::{decode, Program, CODE_BASE};
use std::fmt::Write;

/// Disassembles a whole program, one instruction per line with addresses.
/// Words that do not decode are shown as `.word`.
///
/// ```
/// use softerr_isa::{disassemble, Instr, Profile, Program, Reg};
/// let p = Program::from_instrs(Profile::A64, vec![
///     Instr::Out { rs1: Reg::A0 },
///     Instr::Halt,
/// ]);
/// let text = disassemble(&p);
/// assert!(text.contains("out"));
/// assert!(text.contains("halt"));
/// ```
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for (i, &word) in program.code.iter().enumerate() {
        let addr = CODE_BASE + 4 * i as u64;
        match decode(word) {
            Ok(instr) => {
                let _ = writeln!(out, "{addr:#8x}:  {word:08x}  {instr}");
            }
            Err(_) => {
                let _ = writeln!(out, "{addr:#8x}:  {word:08x}  .word {word:#010x}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Instr, Profile, Reg};

    #[test]
    fn disassembles_each_line_with_address() {
        let p = Program::from_instrs(
            Profile::A32,
            vec![
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::ZERO,
                    imm: 7,
                },
                Instr::Halt,
            ],
        );
        let text = disassemble(&p);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("  0x1000:"));
        assert!(lines[1].starts_with("  0x1004:"));
        assert!(lines[1].contains("halt"));
    }

    #[test]
    fn invalid_words_render_as_raw() {
        let mut p = Program::from_instrs(Profile::A32, vec![Instr::Halt]);
        p.code.push(0xFFFF_FFFF);
        let text = disassemble(&p);
        assert!(text.contains(".word 0xffffffff"));
    }
}
