//! Loadable program images: code, initialized data, and the guest memory map.

use crate::{encode, Instr, Memory, Profile};
use serde::{Deserialize, Serialize};

/// Base address of the code segment.
pub const CODE_BASE: u64 = 0x1000;

/// Base address of the initialized-data (globals) segment.
pub const DATA_BASE: u64 = 0x0010_0000;

/// Default guest memory size (4 MiB): code below [`DATA_BASE`], globals and
/// heap above it, stack descending from the top.
pub const DEFAULT_MEM_SIZE: u64 = 4 * 1024 * 1024;

/// A complete loadable guest program.
///
/// Produced by the `softerr-cc` compiler (or hand-assembled in tests) and
/// consumed by both the reference [`Emulator`] and the cycle-level simulator.
///
/// [`Emulator`]: crate::Emulator
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    /// ISA profile the code was generated for.
    pub profile: Profile,
    /// Encoded instruction words, loaded at [`CODE_BASE`].
    pub code: Vec<u32>,
    /// Initialized global data, loaded at [`DATA_BASE`].
    pub data: Vec<u8>,
    /// Entry PC.
    pub entry: u64,
    /// Guest memory size in bytes.
    pub mem_size: u64,
    /// Static writeback demand masks: `(code index, demand mask)` pairs for
    /// instructions whose destination-register demand the compiler's
    /// bit-level analysis bounded below full width. A clear mask bit means
    /// a flip of that register bit after this instruction's writeback is
    /// provably unobservable. Instructions without an entry default to a
    /// full (all-demanded) mask; hand-assembled programs leave this empty.
    pub wb_masks: Vec<(u32, u64)>,
}

impl Program {
    /// Assembles a raw instruction sequence into a program with no data
    /// segment, entered at the first instruction.
    pub fn from_instrs(profile: Profile, instrs: Vec<Instr>) -> Program {
        Program {
            profile,
            code: instrs.into_iter().map(encode).collect(),
            data: Vec::new(),
            entry: CODE_BASE,
            mem_size: DEFAULT_MEM_SIZE,
            wb_masks: Vec::new(),
        }
    }

    /// Size of the code segment in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.code.len() as u64 * 4
    }

    /// Initial stack pointer: the top of guest memory, 64-byte aligned with a
    /// small red zone.
    pub fn stack_top(&self) -> u64 {
        (self.mem_size - 64) & !63
    }

    /// Loads code and data into guest memory.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit the memory map (code overlapping
    /// [`DATA_BASE`], or data overlapping the stack region) — an image this
    /// malformed indicates a compiler bug, not a runtime condition.
    pub fn load_into(&self, mem: &mut Memory) {
        assert!(
            CODE_BASE + self.code_bytes() <= DATA_BASE,
            "code segment overflows into data segment"
        );
        assert!(
            DATA_BASE + self.data.len() as u64 <= self.stack_top() - 0x1_0000,
            "data segment overflows into stack region"
        );
        let mut code_bytes = Vec::with_capacity(self.code.len() * 4);
        for word in &self.code {
            code_bytes.extend_from_slice(&word.to_le_bytes());
        }
        mem.write_bytes(CODE_BASE, &code_bytes);
        if !self.data.is_empty() {
            mem.write_bytes(DATA_BASE, &self.data);
        }
    }

    /// Allocates guest memory and loads the image into it.
    pub fn build_memory(&self) -> Memory {
        let mut mem = Memory::new(self.mem_size);
        self.load_into(&mut mem);
        mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn from_instrs_assembles_at_code_base() {
        let p = Program::from_instrs(Profile::A64, vec![Instr::Halt]);
        assert_eq!(p.entry, CODE_BASE);
        assert_eq!(p.code_bytes(), 4);
        let mem = p.build_memory();
        assert_eq!(mem.fetch(CODE_BASE).unwrap(), encode(Instr::Halt));
    }

    #[test]
    fn data_lands_at_data_base() {
        let mut p = Program::from_instrs(Profile::A32, vec![Instr::Halt]);
        p.data = vec![1, 2, 3, 4];
        let mem = p.build_memory();
        assert_eq!(mem.read(DATA_BASE, 4).unwrap(), 0x0403_0201);
    }

    #[test]
    fn stack_top_is_aligned_and_inside_memory() {
        let p = Program::from_instrs(Profile::A64, vec![Instr::Halt]);
        assert_eq!(p.stack_top() % 64, 0);
        assert!(p.stack_top() < p.mem_size);
    }

    #[test]
    #[should_panic(expected = "code segment overflows")]
    fn oversized_code_panics() {
        let n = ((DATA_BASE - CODE_BASE) / 4 + 1) as usize;
        let p = Program {
            profile: Profile::A64,
            code: vec![encode(Instr::Out { rs1: Reg::A0 }); n],
            data: Vec::new(),
            entry: CODE_BASE,
            mem_size: DEFAULT_MEM_SIZE,
            wb_masks: Vec::new(),
        };
        let mut mem = Memory::new(p.mem_size);
        p.load_into(&mut mem);
    }
}
