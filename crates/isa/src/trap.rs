//! Architectural traps raised by guest execution.

use crate::{DecodeError, MemFault};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An architectural trap: the guest program performed an operation that real
/// hardware would fault on.
///
/// Traps terminate execution. In the fault-injection study a trap reached by
/// a *committed* instruction is classified as a **Crash** outcome (process or
/// kernel crash in the paper's terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Trap {
    /// The fetched word did not decode to a valid instruction, or the decoded
    /// instruction is not executable under the active profile (e.g. a 64-bit
    /// load on the A32 profile, or an operand register above the profile's
    /// architectural register count).
    InvalidInstr {
        /// PC of the faulting instruction.
        pc: u64,
        /// The raw machine word.
        word: u32,
    },
    /// A data access or instruction fetch faulted.
    Mem(MemFault),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::InvalidInstr { pc, word } => {
                write!(f, "invalid instruction {word:#010x} at pc {pc:#x}")
            }
            Trap::Mem(fault) => write!(f, "{fault}"),
        }
    }
}

impl std::error::Error for Trap {}

impl From<MemFault> for Trap {
    fn from(fault: MemFault) -> Trap {
        Trap::Mem(fault)
    }
}

impl Trap {
    /// Builds an invalid-instruction trap from a decode failure.
    pub fn from_decode(pc: u64, word: u32, _err: DecodeError) -> Trap {
        Trap::InvalidInstr { pc, word }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFaultKind;

    #[test]
    fn display_is_informative() {
        let t = Trap::InvalidInstr {
            pc: 0x1000,
            word: 0xDEAD_BEEF,
        };
        assert!(t.to_string().contains("0xdeadbeef"));
        let m = Trap::from(MemFault {
            addr: 4,
            size: 8,
            kind: MemFaultKind::NullPage,
        });
        assert!(m.to_string().contains("0x4"));
    }
}
