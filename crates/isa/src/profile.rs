//! ISA profiles: the Armv7-like `A32` and Armv8-like `A64` targets.

use crate::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ISA profile, fixing the datapath width and the visible register count.
///
/// The two profiles stand in for the two architectures of the paper:
///
/// * [`Profile::A32`] — 32-bit datapath, 16 architectural registers
///   (Armv7 / Cortex-A15 stand-in),
/// * [`Profile::A64`] — 64-bit datapath, 32 architectural registers
///   (Armv8 / Cortex-A72 stand-in).
///
/// The profile determines how many registers the compiler may allocate and
/// how wide every register value (and therefore every injectable register
/// bit field) is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Profile {
    /// 32-bit profile with 16 architectural registers (Armv7-like).
    A32,
    /// 64-bit profile with 32 architectural registers (Armv8-like).
    A64,
}

impl Profile {
    /// Datapath width in bits (32 or 64).
    pub fn xlen(self) -> u32 {
        match self {
            Profile::A32 => 32,
            Profile::A64 => 64,
        }
    }

    /// Number of architectural registers visible to software.
    pub fn nregs(self) -> usize {
        match self {
            Profile::A32 => 16,
            Profile::A64 => 32,
        }
    }

    /// Size of a machine word (pointer) in bytes.
    pub fn word_bytes(self) -> u64 {
        (self.xlen() / 8) as u64
    }

    /// Truncates an arithmetic result to the profile's datapath width.
    ///
    /// On `A32` the upper 32 bits are cleared (registers architecturally hold
    /// 32 bits); on `A64` the value is returned unchanged.
    pub fn mask(self, value: u64) -> u64 {
        match self {
            Profile::A32 => value & 0xFFFF_FFFF,
            Profile::A64 => value,
        }
    }

    /// Interprets a register value as a signed number of the profile width.
    pub fn as_signed(self, value: u64) -> i64 {
        match self {
            Profile::A32 => value as u32 as i32 as i64,
            Profile::A64 => value as i64,
        }
    }

    /// Caller-saved temporary registers available to compiled code.
    pub fn temp_regs(self) -> Vec<Reg> {
        match self {
            // x3..x7
            Profile::A32 => (3..8).map(Reg::new).collect(),
            // x3..x7 plus the upper argument range not used for args
            Profile::A64 => (3..8).map(Reg::new).collect(),
        }
    }

    /// Argument / return-value registers (`a0` first).
    pub fn arg_regs(self) -> Vec<Reg> {
        match self {
            Profile::A32 => (8..12).map(Reg::new).collect(),
            Profile::A64 => (8..14).map(Reg::new).collect(),
        }
    }

    /// Callee-saved registers available to the register allocator.
    pub fn saved_regs(self) -> Vec<Reg> {
        match self {
            Profile::A32 => (12..16).map(Reg::new).collect(),
            Profile::A64 => (14..32).map(Reg::new).collect(),
        }
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Profile::A32 => write!(f, "A32"),
            Profile::A64 => write!(f, "A64"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_reg_counts() {
        assert_eq!(Profile::A32.xlen(), 32);
        assert_eq!(Profile::A64.xlen(), 64);
        assert_eq!(Profile::A32.nregs(), 16);
        assert_eq!(Profile::A64.nregs(), 32);
        assert_eq!(Profile::A32.word_bytes(), 4);
        assert_eq!(Profile::A64.word_bytes(), 8);
    }

    #[test]
    fn mask_truncates_only_on_a32() {
        assert_eq!(Profile::A32.mask(0x1_0000_0001), 1);
        assert_eq!(Profile::A64.mask(0x1_0000_0001), 0x1_0000_0001);
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(Profile::A32.as_signed(0xFFFF_FFFF), -1);
        assert_eq!(Profile::A64.as_signed(0xFFFF_FFFF), 0xFFFF_FFFF);
        assert_eq!(Profile::A64.as_signed(u64::MAX), -1);
    }

    #[test]
    fn abi_registers_fit_profile() {
        for p in [Profile::A32, Profile::A64] {
            for r in p
                .temp_regs()
                .into_iter()
                .chain(p.arg_regs())
                .chain(p.saved_regs())
            {
                assert!(r.valid_for(p.nregs()), "{r} invalid for {p}");
            }
        }
    }

    #[test]
    fn abi_registers_are_disjoint() {
        for p in [Profile::A32, Profile::A64] {
            let mut all: Vec<usize> = p
                .temp_regs()
                .into_iter()
                .chain(p.arg_regs())
                .chain(p.saved_regs())
                .map(Reg::index)
                .collect();
            all.sort_unstable();
            let before = all.len();
            all.dedup();
            assert_eq!(before, all.len(), "overlapping ABI classes for {p}");
            // None of the ABI classes may hand out zero/ra/sp.
            assert!(!all.contains(&0) && !all.contains(&1) && !all.contains(&2));
        }
    }

    #[test]
    fn a64_has_more_allocatable_registers() {
        let count = |p: Profile| p.temp_regs().len() + p.arg_regs().len() + p.saved_regs().len();
        assert!(count(Profile::A64) > count(Profile::A32));
    }
}
