//! Architectural (functional) reference emulator.
//!
//! Executes one instruction per step with no timing model. The cycle-level
//! simulator in `softerr-sim` must produce byte-identical program output and
//! architectural state for fault-free runs; the differential tests in the
//! workspace enforce this.

use crate::{decode, eval_alu, eval_branch, Instr, Memory, Profile, Program, Reg, Trap};

/// Result of running a program to completion (or to the instruction limit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Values emitted by `out` instructions, in order.
    pub output: Vec<u64>,
    /// Number of retired instructions.
    pub retired: u64,
    /// `true` if the program executed `halt`; `false` if the instruction
    /// limit was reached first.
    pub completed: bool,
}

/// The architectural reference emulator.
#[derive(Debug, Clone)]
pub struct Emulator {
    profile: Profile,
    pc: u64,
    regs: [u64; 32],
    mem: Memory,
    output: Vec<u64>,
    retired: u64,
    halted: bool,
}

impl Emulator {
    /// Creates an emulator with the program loaded and the ABI entry state
    /// established (SP at the stack top, all other registers zero).
    pub fn new(program: &Program) -> Emulator {
        let mem = program.build_memory();
        let mut regs = [0u64; 32];
        regs[Reg::SP.index()] = program.stack_top();
        Emulator {
            profile: program.profile,
            pc: program.entry,
            regs,
            mem,
            output: Vec::new(),
            retired: 0,
            halted: false,
        }
    }

    /// The active ISA profile.
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes an architectural register (writes to `zero` are ignored and
    /// values are masked to the profile width).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if r != Reg::ZERO {
            self.regs[r.index()] = self.profile.mask(value);
        }
    }

    /// Immutable view of guest memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Program output emitted so far.
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether the program has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn check_regs(&self, instr: Instr) -> bool {
        let n = self.profile.nregs();
        let (s1, s2) = instr.sources();
        let dest_ok = instr.dest().is_none_or(|d| d.valid_for(n));
        let src_ok = s1.is_none_or(|r| r.valid_for(n)) && s2.is_none_or(|r| r.valid_for(n));
        dest_ok && src_ok
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(true)` if the program halted on this step.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] raised by the instruction, leaving the emulator
    /// state at the fault point.
    pub fn step(&mut self) -> Result<bool, Trap> {
        if self.halted {
            return Ok(true);
        }
        let pc = self.pc;
        let word = self.mem.fetch(pc)?;
        let instr = decode(word).map_err(|e| Trap::from_decode(pc, word, e))?;
        if !self.check_regs(instr)
            || (matches!(
                instr,
                Instr::Load {
                    width: crate::MemWidth::D,
                    ..
                } | Instr::Store {
                    width: crate::MemWidth::D,
                    ..
                }
            ) && self.profile == Profile::A32)
        {
            return Err(Trap::InvalidInstr { pc, word });
        }
        let mut next_pc = pc.wrapping_add(4);
        match instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = eval_alu(self.profile, op, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let v = eval_alu(self.profile, op, self.reg(rs1), imm as i64 as u64);
                self.set_reg(rd, v);
            }
            Instr::Load {
                width,
                signed,
                rd,
                base,
                offset,
            } => {
                let addr = self
                    .profile
                    .mask(self.reg(base).wrapping_add(offset as i64 as u64));
                let raw = self.mem.read(addr, width.bytes())?;
                let v = if signed {
                    match width {
                        crate::MemWidth::B => raw as u8 as i8 as i64 as u64,
                        crate::MemWidth::W => raw as u32 as i32 as i64 as u64,
                        crate::MemWidth::D => raw,
                    }
                } else {
                    raw
                };
                self.set_reg(rd, v);
            }
            Instr::Store {
                width,
                src,
                base,
                offset,
            } => {
                let addr = self
                    .profile
                    .mask(self.reg(base).wrapping_add(offset as i64 as u64));
                self.mem.write(addr, width.bytes(), self.reg(src))?;
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                if eval_branch(self.profile, cond, self.reg(rs1), self.reg(rs2)) {
                    next_pc = pc.wrapping_add((offset as i64 as u64).wrapping_mul(4));
                }
            }
            Instr::Lui { rd, imm } => {
                self.set_reg(rd, ((imm as i64) << 13) as u64);
            }
            Instr::Jal { rd, offset } => {
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add((offset as i64 as u64).wrapping_mul(4));
            }
            Instr::Jalr { rd, base, offset } => {
                let target = self
                    .profile
                    .mask(self.reg(base).wrapping_add(offset as i64 as u64));
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
            }
            Instr::Out { rs1 } => {
                self.output.push(self.profile.mask(self.reg(rs1)));
            }
            Instr::Halt => {
                self.halted = true;
            }
        }
        self.pc = self.profile.mask(next_pc);
        self.retired += 1;
        Ok(self.halted)
    }

    /// Runs until `halt` or until `max_instrs` instructions have retired.
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`] raised.
    pub fn run(&mut self, max_instrs: u64) -> Result<RunOutcome, Trap> {
        while !self.halted && self.retired < max_instrs {
            self.step()?;
        }
        Ok(RunOutcome {
            output: self.output.clone(),
            retired: self.retired,
            completed: self.halted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, BranchCond, MemWidth, CODE_BASE, DATA_BASE};

    fn run_ok(profile: Profile, instrs: Vec<Instr>) -> RunOutcome {
        let p = Program::from_instrs(profile, instrs);
        let mut emu = Emulator::new(&p);
        let out = emu.run(1_000_000).expect("program trapped");
        assert!(out.completed, "program did not halt");
        out
    }

    #[test]
    fn arithmetic_and_output() {
        let a0 = Reg::A0;
        let out = run_ok(
            Profile::A64,
            vec![
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: a0,
                    rs1: Reg::ZERO,
                    imm: 6,
                },
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: Reg::new(9),
                    rs1: Reg::ZERO,
                    imm: 7,
                },
                Instr::Alu {
                    op: AluOp::Mul,
                    rd: a0,
                    rs1: a0,
                    rs2: Reg::new(9),
                },
                Instr::Out { rs1: a0 },
                Instr::Halt,
            ],
        );
        assert_eq!(out.output, vec![42]);
        assert_eq!(out.retired, 5);
    }

    #[test]
    fn loop_with_branch() {
        // Sum 1..=10 into a0 using x3 as the counter.
        let a0 = Reg::A0;
        let x3 = Reg::new(3);
        let x4 = Reg::new(4);
        let out = run_ok(
            Profile::A32,
            vec![
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: x3,
                    rs1: Reg::ZERO,
                    imm: 1,
                },
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: x4,
                    rs1: Reg::ZERO,
                    imm: 10,
                },
                // loop:
                Instr::Alu {
                    op: AluOp::Add,
                    rd: a0,
                    rs1: a0,
                    rs2: x3,
                },
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: x3,
                    rs1: x3,
                    imm: 1,
                },
                Instr::Branch {
                    cond: BranchCond::Ge,
                    rs1: x4,
                    rs2: x3,
                    offset: -2,
                },
                Instr::Out { rs1: a0 },
                Instr::Halt,
            ],
        );
        assert_eq!(out.output, vec![55]);
    }

    #[test]
    fn memory_store_load_roundtrip() {
        let a0 = Reg::A0;
        let x3 = Reg::new(3);
        // Address DATA_BASE = 0x10_0000 = 128 << 13.
        let out = run_ok(
            Profile::A64,
            vec![
                Instr::Lui {
                    rd: x3,
                    imm: (DATA_BASE >> 13) as i32,
                },
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: a0,
                    rs1: Reg::ZERO,
                    imm: -1,
                },
                Instr::Store {
                    width: MemWidth::D,
                    src: a0,
                    base: x3,
                    offset: 16,
                },
                Instr::Load {
                    width: MemWidth::W,
                    signed: false,
                    rd: a0,
                    base: x3,
                    offset: 16,
                },
                Instr::Out { rs1: a0 },
                Instr::Load {
                    width: MemWidth::W,
                    signed: true,
                    rd: a0,
                    base: x3,
                    offset: 16,
                },
                Instr::Out { rs1: a0 },
                Instr::Halt,
            ],
        );
        assert_eq!(out.output, vec![0xFFFF_FFFF, u64::MAX]);
    }

    #[test]
    fn call_and_return() {
        // jal to a function that doubles a0, then returns.
        let a0 = Reg::A0;
        let out = run_ok(
            Profile::A64,
            vec![
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: a0,
                    rs1: Reg::ZERO,
                    imm: 21,
                },
                Instr::Jal {
                    rd: Reg::RA,
                    offset: 3,
                }, // -> instr 4
                Instr::Out { rs1: a0 },
                Instr::Halt,
                Instr::Alu {
                    op: AluOp::Add,
                    rd: a0,
                    rs1: a0,
                    rs2: a0,
                },
                Instr::Jalr {
                    rd: Reg::ZERO,
                    base: Reg::RA,
                    offset: 0,
                },
            ],
        );
        assert_eq!(out.output, vec![42]);
    }

    #[test]
    fn null_pointer_dereference_traps() {
        let p = Program::from_instrs(
            Profile::A64,
            vec![Instr::Load {
                width: MemWidth::W,
                signed: true,
                rd: Reg::A0,
                base: Reg::ZERO,
                offset: 0,
            }],
        );
        let mut emu = Emulator::new(&p);
        assert!(matches!(emu.run(10), Err(Trap::Mem(_))));
    }

    #[test]
    fn a32_rejects_dword_access() {
        let p = Program::from_instrs(
            Profile::A32,
            vec![Instr::Store {
                width: MemWidth::D,
                src: Reg::A0,
                base: Reg::SP,
                offset: 0,
            }],
        );
        let mut emu = Emulator::new(&p);
        assert!(matches!(emu.run(10), Err(Trap::InvalidInstr { .. })));
    }

    #[test]
    fn a32_rejects_high_registers() {
        let p = Program::from_instrs(
            Profile::A32,
            vec![Instr::AluImm {
                op: AluOp::Add,
                rd: Reg::new(20),
                rs1: Reg::ZERO,
                imm: 1,
            }],
        );
        let mut emu = Emulator::new(&p);
        assert!(matches!(emu.run(10), Err(Trap::InvalidInstr { .. })));
    }

    #[test]
    fn zero_register_stays_zero() {
        let out = run_ok(
            Profile::A64,
            vec![
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: Reg::ZERO,
                    rs1: Reg::ZERO,
                    imm: 99,
                },
                Instr::Out { rs1: Reg::ZERO },
                Instr::Halt,
            ],
        );
        assert_eq!(out.output, vec![0]);
    }

    #[test]
    fn instruction_limit_reports_incomplete() {
        let p = Program::from_instrs(
            Profile::A64,
            vec![Instr::Jal {
                rd: Reg::ZERO,
                offset: 0,
            }], // infinite loop
        );
        let mut emu = Emulator::new(&p);
        let out = emu.run(100).unwrap();
        assert!(!out.completed);
        assert_eq!(out.retired, 100);
    }

    #[test]
    fn falling_off_code_traps_as_invalid_instruction() {
        // No halt: execution runs into zeroed memory, which is an unknown
        // opcode (0x00).
        let p = Program::from_instrs(
            Profile::A64,
            vec![Instr::AluImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 1,
            }],
        );
        let mut emu = Emulator::new(&p);
        let err = emu.run(10).unwrap_err();
        assert_eq!(
            err,
            Trap::InvalidInstr {
                pc: CODE_BASE + 4,
                word: 0
            }
        );
    }

    #[test]
    fn entry_state_follows_abi() {
        let p = Program::from_instrs(Profile::A32, vec![Instr::Halt]);
        let emu = Emulator::new(&p);
        assert_eq!(emu.reg(Reg::SP), p.stack_top());
        assert_eq!(emu.reg(Reg::A0), 0);
        assert_eq!(emu.pc(), p.entry);
    }
}
