//! # softerr-isa
//!
//! The instruction-set substrate for the softerr soft-error vulnerability
//! study: a compact load/store RISC ISA with a fixed 32-bit encoding, two
//! profiles standing in for the paper's Armv7 (Cortex-A15) and Armv8
//! (Cortex-A72) targets, a guest memory model, and an architectural
//! (functional) reference emulator used as the golden model by the
//! cycle-level simulator and the compiler test suites.
//!
//! The encoding is deliberately *sparse*: most random 32-bit words do not
//! decode to a valid instruction, so single-bit upsets in instruction-cache
//! lines frequently produce undefined-instruction faults, mirroring the
//! Crash-dominated behaviour the paper observes for L1I faults.
//!
//! ```
//! use softerr_isa::{AluOp, Emulator, Instr, Program, Profile, Reg};
//!
//! # fn main() -> Result<(), softerr_isa::Trap> {
//! let a0 = Reg::A0;
//! let code = vec![
//!     Instr::AluImm { op: AluOp::Add, rd: a0, rs1: Reg::ZERO, imm: 21 },
//!     Instr::Alu { op: AluOp::Add, rd: a0, rs1: a0, rs2: a0 },
//!     Instr::Out { rs1: a0 },
//!     Instr::Halt,
//! ];
//! let program = Program::from_instrs(Profile::A64, code);
//! let mut emu = Emulator::new(&program);
//! let outcome = emu.run(10_000)?;
//! assert_eq!(outcome.output, vec![42]);
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

mod disasm;
mod emu;
mod instr;
mod mem;
mod profile;
mod program;
mod reg;
mod trap;

pub use disasm::disassemble;
pub use emu::{Emulator, RunOutcome};
pub use instr::{
    decode, encode, eval_alu, eval_branch, AluOp, BranchCond, DecodeError, Instr, MemWidth, Opcode,
};
pub use mem::{MemFault, MemFaultKind, Memory, NULL_PAGE};
pub use profile::Profile;
pub use program::{Program, CODE_BASE, DATA_BASE, DEFAULT_MEM_SIZE};
pub use reg::Reg;
pub use trap::Trap;
