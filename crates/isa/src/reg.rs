//! Architectural register names and the software ABI used by the compiler.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An architectural register index.
///
/// The ISA defines up to 32 registers; the [`Profile::A32`] profile exposes
/// only the first 16 (mirroring Armv7's smaller architectural file), while
/// [`Profile::A64`] exposes all 32. Register 0 is hardwired to zero.
///
/// [`Profile::A32`]: crate::Profile::A32
/// [`Profile::A64`]: crate::Profile::A64
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Link register (return address), written by `jal`/`jalr`.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// First integer argument / return value register.
    pub const A0: Reg = Reg(8);

    /// Creates a register from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`. Use [`Reg::try_new`] for fallible decoding of
    /// untrusted bits.
    pub fn new(index: u8) -> Reg {
        Reg::try_new(index).expect("register index out of range")
    }

    /// Creates a register from a raw index, returning `None` if out of range.
    pub fn try_new(index: u8) -> Option<Reg> {
        (index < 32).then_some(Reg(index))
    }

    /// The raw index of this register (0..32).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this register is valid under `nregs`-register profile.
    pub fn valid_for(self, nregs: usize) -> bool {
        self.index() < nregs
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::ZERO => write!(f, "zero"),
            Reg::RA => write!(f, "ra"),
            Reg::SP => write!(f, "sp"),
            Reg(n) => write!(f, "x{n}"),
        }
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_registers_have_expected_indices() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::RA.index(), 1);
        assert_eq!(Reg::SP.index(), 2);
        assert_eq!(Reg::A0.index(), 8);
    }

    #[test]
    fn try_new_rejects_out_of_range() {
        assert!(Reg::try_new(31).is_some());
        assert!(Reg::try_new(32).is_none());
        assert!(Reg::try_new(255).is_none());
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::new(5).to_string(), "x5");
        assert_eq!(Reg::SP.to_string(), "sp");
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn valid_for_profile_sizes() {
        assert!(Reg::new(15).valid_for(16));
        assert!(!Reg::new(16).valid_for(16));
        assert!(Reg::new(31).valid_for(32));
    }
}
