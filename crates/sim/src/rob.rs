//! Reorder buffer: a circular buffer whose four per-entry fields are the
//! paper's four ROB injection targets — **PC**, **destination** (arch +
//! new/old physical), **sequence**, and **flags**.

use crate::regs::PhysReg;
use serde::{Deserialize, Serialize};

/// Flag-bit positions within the injectable flags byte.
pub mod flag {
    /// Entry holds a dispatched instruction.
    pub const VALID: u8 = 1 << 0;
    /// Instruction has finished executing.
    pub const DONE: u8 = 1 << 1;
    /// Control-transfer instruction.
    pub const BRANCH: u8 = 1 << 2;
    /// Store instruction.
    pub const STORE: u8 = 1 << 3;
    /// Exception pending at commit.
    pub const EXCEPTION: u8 = 1 << 4;
    /// `out` instruction.
    pub const OUT: u8 = 1 << 5;
    /// `halt` instruction.
    pub const HALT: u8 = 1 << 6;
    /// Entry writes a destination register.
    pub const HAS_DEST: u8 = 1 << 7;
}

/// Which injectable field of the ROB a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RobField {
    /// The PC field.
    Pc,
    /// The destination triple (arch, new phys, old phys).
    Dest,
    /// The 16-bit sequence field.
    Seq,
    /// The status flags byte.
    Flags,
}

/// The reorder buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Rob {
    n: usize,
    pc_bits: u32,
    head: usize,
    tail: usize,
    count: usize,
    /// Injectable PC field.
    pc: Vec<u64>,
    /// Injectable destination triple.
    dest_arch: Vec<u8>,
    /// New physical register.
    dest_phys: Vec<PhysReg>,
    /// Previous physical register for the same arch reg.
    old_phys: Vec<PhysReg>,
    /// Injectable low 16 bits of the sequence number.
    seq16: Vec<u16>,
    /// Injectable flags byte.
    flags: Vec<u8>,
}

impl Rob {
    /// Creates an empty ROB of `n` entries with `pc_bits`-wide PC fields
    /// (32 on the A32 machine, 64 on A64).
    pub fn new(n: usize, pc_bits: u32) -> Rob {
        Rob {
            n,
            pc_bits,
            head: 0,
            tail: 0,
            count: 0,
            pc: vec![0; n],
            dest_arch: vec![0; n],
            dest_phys: vec![0; n],
            old_phys: vec![0; n],
            seq16: vec![0; n],
            flags: vec![0; n],
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the ROB is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether the ROB is full.
    pub fn is_full(&self) -> bool {
        self.count == self.n
    }

    /// Head (next-to-commit) slot index.
    pub fn head(&self) -> usize {
        self.head
    }

    /// Allocates the tail slot, writing all injectable fields; returns
    /// `None` when full. Dispatch guards with [`Rob::is_full`], so `None`
    /// only happens when a fault corrupted the capacity bookkeeping;
    /// returning it (instead of panicking) lets the pipeline classify the
    /// run as an Assert even under `panic = "abort"`.
    pub fn push(
        &mut self,
        pc: u64,
        seq: u64,
        dest: Option<(u8, PhysReg, PhysReg)>,
        flag_bits: u8,
    ) -> Option<usize> {
        if self.is_full() {
            return None;
        }
        let idx = self.tail;
        self.pc[idx] = pc & (u64::MAX >> (64 - self.pc_bits));
        self.seq16[idx] = seq as u16;
        let mut f = flag_bits | flag::VALID;
        match dest {
            Some((a, p, o)) => {
                self.dest_arch[idx] = a;
                self.dest_phys[idx] = p;
                self.old_phys[idx] = o;
                f |= flag::HAS_DEST;
            }
            None => {
                self.dest_arch[idx] = 0;
                self.dest_phys[idx] = 0;
                self.old_phys[idx] = 0;
            }
        }
        self.flags[idx] = f;
        self.tail = (self.tail + 1) % self.n;
        self.count += 1;
        Some(idx)
    }

    /// Releases the head slot.
    pub fn pop_head(&mut self) {
        assert!(!self.is_empty(), "ROB underflow");
        self.flags[self.head] = 0;
        self.head = (self.head + 1) % self.n;
        self.count -= 1;
    }

    /// Rolls the tail back by one entry (branch-mispredict squash).
    pub fn pop_tail(&mut self) -> usize {
        assert!(!self.is_empty(), "ROB underflow");
        self.tail = (self.tail + self.n - 1) % self.n;
        self.flags[self.tail] = 0;
        self.count -= 1;
        self.tail
    }

    /// Sets the DONE flag of an entry.
    pub fn set_done(&mut self, idx: usize) {
        self.flags[idx] |= flag::DONE;
    }

    /// Sets the EXCEPTION flag of an entry.
    pub fn set_exception(&mut self, idx: usize) {
        self.flags[idx] |= flag::EXCEPTION;
    }

    /// Reads an entry's flags byte.
    pub fn flags_of(&self, idx: usize) -> u8 {
        self.flags[idx]
    }

    /// Reads an entry's injectable PC field.
    pub fn pc_of(&self, idx: usize) -> u64 {
        self.pc[idx]
    }

    /// Reads an entry's injectable sequence field.
    pub fn seq_of(&self, idx: usize) -> u16 {
        self.seq16[idx]
    }

    /// Reads an entry's injectable destination triple.
    pub fn dest_of(&self, idx: usize) -> (u8, PhysReg, PhysReg) {
        (self.dest_arch[idx], self.dest_phys[idx], self.old_phys[idx])
    }

    /// Masks a full PC value to this ROB's PC field width (for
    /// payload-vs-field comparisons).
    pub fn mask_pc(&self, pc: u64) -> u64 {
        pc & (u64::MAX >> (64 - self.pc_bits))
    }

    /// Injectable bit count of one field across all entries.
    pub fn field_bits(&self, field: RobField) -> u64 {
        let per = match field {
            RobField::Pc => self.pc_bits as u64,
            RobField::Dest => 5 + 8 + 8,
            RobField::Seq => 16,
            RobField::Flags => 8,
        };
        per * self.n as u64
    }

    /// Flips one bit of one injectable field.
    pub fn flip_bit(&mut self, field: RobField, bit: u64) {
        assert!(bit < self.field_bits(field), "ROB bit out of range");
        match field {
            RobField::Pc => {
                let per = self.pc_bits as u64;
                self.pc[(bit / per) as usize] ^= 1 << (bit % per);
            }
            RobField::Dest => {
                let idx = (bit / 21) as usize;
                let off = bit % 21;
                if off < 5 {
                    self.dest_arch[idx] ^= 1 << off;
                } else if off < 13 {
                    self.dest_phys[idx] ^= 1 << (off - 5);
                } else {
                    self.old_phys[idx] ^= 1 << (off - 13);
                }
            }
            RobField::Seq => {
                let idx = (bit / 16) as usize;
                self.seq16[idx] ^= 1 << (bit % 16);
            }
            RobField::Flags => {
                let idx = (bit / 8) as usize;
                self.flags[idx] ^= 1 << (bit % 8);
            }
        }
    }

    /// Iterates over occupied slot indices from head to tail.
    pub fn occupied(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.count).map(move |k| (self.head + k) % self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_wraparound() {
        let mut rob = Rob::new(4, 32);
        for k in 0..4 {
            rob.push(0x1000 + k * 4, k, None, 0);
        }
        assert!(rob.is_full());
        rob.pop_head();
        rob.pop_head();
        let idx = rob.push(0x2000, 9, Some((3, 40, 41)), flag::STORE).unwrap();
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.dest_of(idx), (3, 40, 41));
        assert!(rob.flags_of(idx) & flag::HAS_DEST != 0);
        assert!(rob.flags_of(idx) & flag::STORE != 0);
    }

    #[test]
    fn push_on_full_rob_returns_none_instead_of_panicking() {
        let mut rob = Rob::new(2, 32);
        rob.push(0, 0, None, 0).unwrap();
        rob.push(4, 1, None, 0).unwrap();
        assert_eq!(rob.push(8, 2, None, 0), None);
    }

    #[test]
    fn tail_rollback() {
        let mut rob = Rob::new(8, 32);
        rob.push(0x1000, 1, None, 0).unwrap();
        let b = rob.push(0x1004, 2, None, flag::BRANCH).unwrap();
        rob.push(0x1008, 3, None, 0).unwrap();
        let popped = rob.pop_tail();
        assert_eq!(rob.len(), 2);
        assert_eq!(popped, (b + 1) % 8);
        assert_eq!(rob.flags_of(popped), 0);
    }

    #[test]
    fn occupied_iterates_in_order() {
        let mut rob = Rob::new(4, 32);
        rob.push(0, 0, None, 0).unwrap();
        rob.push(4, 1, None, 0).unwrap();
        rob.pop_head();
        rob.push(8, 2, None, 0).unwrap();
        let ids: Vec<usize> = rob.occupied().collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn field_bit_counts() {
        let rob = Rob::new(40, 32);
        assert_eq!(rob.field_bits(RobField::Pc), 40 * 32);
        assert_eq!(rob.field_bits(RobField::Dest), 40 * 21);
        assert_eq!(rob.field_bits(RobField::Seq), 40 * 16);
        assert_eq!(rob.field_bits(RobField::Flags), 40 * 8);
    }

    #[test]
    fn flips_hit_expected_fields() {
        let mut rob = Rob::new(4, 32);
        let idx = rob.push(0x1000, 7, Some((2, 30, 31)), 0).unwrap();
        rob.flip_bit(RobField::Pc, idx as u64 * 32 + 4);
        assert_eq!(rob.pc_of(idx), 0x1010);
        rob.flip_bit(RobField::Seq, idx as u64 * 16);
        assert_eq!(rob.seq_of(idx), 6);
        rob.flip_bit(RobField::Dest, idx as u64 * 21 + 5); // phys bit 0
        assert_eq!(rob.dest_of(idx), (2, 31, 31));
        rob.flip_bit(RobField::Flags, idx as u64 * 8); // VALID bit
        assert_eq!(rob.flags_of(idx) & flag::VALID, 0);
    }

    #[test]
    fn pc_field_masks_to_width() {
        let mut rob = Rob::new(2, 32);
        rob.push(0xFFFF_FFFF_0000_1000, 0, None, 0).unwrap();
        assert_eq!(rob.pc_of(0), 0x1000);
        assert_eq!(rob.mask_pc(0xFFFF_FFFF_0000_1000), 0x1000);
    }
}
