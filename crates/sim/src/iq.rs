//! Issue queue with injectable **source** and **destination** fields (the
//! paper's two IQ injection targets).
//!
//! The source field of each entry holds the two source physical-register
//! tags plus their ready bits: a flipped tag stops the entry from matching
//! its producer's wakeup broadcast (deadlock → Timeout), and an entry that
//! does issue has its tags cross-checked against the rename payload
//! (mismatch → Assert) — reproducing the balanced Timeout/Assert behaviour
//! the paper reports for the IQ.

use crate::regs::PhysReg;

/// Injectable per-entry source field: `[src1:8][rdy1:1][src2:8][rdy2:1]`.
pub const SRC_BITS_PER_ENTRY: u64 = 18;

/// Injectable per-entry destination field: `[dest:8][valid:1]`.
pub const DEST_BITS_PER_ENTRY: u64 = 9;

/// Non-injectable payload of an IQ entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IqPayload {
    /// ROB slot of the instruction.
    pub rob_idx: usize,
    /// Sequence number (issue priority: oldest first).
    pub seq: u64,
    /// Whether the instruction reads a first source.
    pub has_src1: bool,
    /// Whether it reads a second source.
    pub has_src2: bool,
    /// Golden copies for cross-checking the injectable fields.
    pub golden_src1: PhysReg,
    /// Golden second source tag.
    pub golden_src2: PhysReg,
    /// Golden destination tag (0 when the uop writes no register).
    pub golden_dest: PhysReg,
}

/// The issue queue.
#[derive(Debug, Clone, PartialEq)]
pub struct IssueQueue {
    n: usize,
    // Injectable source field.
    src1_tag: Vec<PhysReg>,
    src1_ready: Vec<bool>,
    src2_tag: Vec<PhysReg>,
    src2_ready: Vec<bool>,
    // Injectable destination field.
    dest_tag: Vec<PhysReg>,
    valid: Vec<bool>,
    payload: Vec<Option<IqPayload>>,
    count: usize,
}

impl IssueQueue {
    /// Creates an empty issue queue of `n` entries.
    pub fn new(n: usize) -> IssueQueue {
        IssueQueue {
            n,
            src1_tag: vec![0; n],
            src1_ready: vec![false; n],
            src2_tag: vec![0; n],
            src2_ready: vec![false; n],
            dest_tag: vec![0; n],
            valid: vec![false; n],
            payload: vec![None; n],
            count: 0,
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether the queue is full.
    pub fn is_full(&self) -> bool {
        self.count >= self.n
    }

    /// Whether a physically insertable slot exists. This can differ from
    /// `!is_full()` when an injected valid-bit flip creates a zombie entry
    /// (payload present but valid cleared): such slots are unusable until
    /// the program times out, and dispatch must stall rather than panic.
    pub fn has_free_slot(&self) -> bool {
        (0..self.n).any(|s| !self.valid[s] && self.payload[s].is_none())
    }

    /// Inserts an entry; returns its slot, or `None` when no insertable
    /// slot exists. Dispatch guards with [`IssueQueue::has_free_slot`], so
    /// `None` only happens when a fault corrupted the capacity
    /// bookkeeping; returning it (instead of panicking) lets the pipeline
    /// classify the run as an Assert even under `panic = "abort"`.
    pub fn insert(
        &mut self,
        payload: IqPayload,
        src1_ready: bool,
        src2_ready: bool,
    ) -> Option<usize> {
        let slot = (0..self.n).find(|&s| !self.valid[s] && self.payload[s].is_none())?;
        self.src1_tag[slot] = payload.golden_src1;
        self.src2_tag[slot] = payload.golden_src2;
        self.src1_ready[slot] = src1_ready || !payload.has_src1;
        self.src2_ready[slot] = src2_ready || !payload.has_src2;
        self.dest_tag[slot] = payload.golden_dest;
        self.valid[slot] = true;
        self.payload[slot] = Some(payload);
        self.count += 1;
        Some(slot)
    }

    /// Removes an entry (after issue or squash).
    pub fn remove(&mut self, slot: usize) {
        if self.valid[slot] || self.payload[slot].is_some() {
            self.valid[slot] = false;
            self.payload[slot] = None;
            self.count = self.count.saturating_sub(1);
        }
    }

    /// Wakeup broadcast: marks matching source tags ready.
    pub fn broadcast(&mut self, tag: PhysReg) {
        for slot in 0..self.n {
            if self.valid[slot] {
                if self.src1_tag[slot] == tag {
                    self.src1_ready[slot] = true;
                }
                if self.src2_tag[slot] == tag {
                    self.src2_ready[slot] = true;
                }
            }
        }
    }

    /// Entries that are valid and fully ready, oldest (smallest seq) first.
    ///
    /// An entry whose injectable valid bit is set but whose payload is gone
    /// is reported so the pipeline can raise an Assert.
    pub fn ready_entries(&self) -> Result<Vec<usize>, &'static str> {
        let mut ready: Vec<(u64, usize)> = Vec::new();
        for slot in 0..self.n {
            if !self.valid[slot] {
                continue;
            }
            let Some(p) = &self.payload[slot] else {
                return Err("IQ entry valid without a dispatched instruction");
            };
            if self.src1_ready[slot] && self.src2_ready[slot] {
                ready.push((p.seq, slot));
            }
        }
        ready.sort_unstable();
        Ok(ready.into_iter().map(|(_, s)| s).collect())
    }

    /// Reads the injectable fields of an entry:
    /// `(src1, src2, dest)` tags as currently stored.
    pub fn stored_tags(&self, slot: usize) -> (PhysReg, PhysReg, PhysReg) {
        (
            self.src1_tag[slot],
            self.src2_tag[slot],
            self.dest_tag[slot],
        )
    }

    /// Payload of an entry.
    pub fn payload(&self, slot: usize) -> Option<&IqPayload> {
        self.payload[slot].as_ref()
    }

    /// Removes all entries with `seq > boundary` (mispredict squash).
    pub fn squash_younger(&mut self, boundary: u64) {
        for slot in 0..self.n {
            if let Some(p) = &self.payload[slot] {
                if p.seq > boundary {
                    self.valid[slot] = false;
                    self.payload[slot] = None;
                    self.count = self.count.saturating_sub(1);
                }
            }
        }
    }

    /// Injectable bits of the source field.
    pub fn src_bits(&self) -> u64 {
        self.n as u64 * SRC_BITS_PER_ENTRY
    }

    /// Injectable bits of the destination field.
    pub fn dest_bits(&self) -> u64 {
        self.n as u64 * DEST_BITS_PER_ENTRY
    }

    /// Flips a bit of the source field.
    pub fn flip_src_bit(&mut self, bit: u64) {
        assert!(bit < self.src_bits(), "IQ src bit out of range");
        let slot = (bit / SRC_BITS_PER_ENTRY) as usize;
        let off = bit % SRC_BITS_PER_ENTRY;
        match off {
            0..=7 => self.src1_tag[slot] ^= 1 << off,
            8 => self.src1_ready[slot] = !self.src1_ready[slot],
            9..=16 => self.src2_tag[slot] ^= 1 << (off - 9),
            _ => self.src2_ready[slot] = !self.src2_ready[slot],
        }
    }

    /// Flips a bit of the destination field.
    pub fn flip_dest_bit(&mut self, bit: u64) {
        assert!(bit < self.dest_bits(), "IQ dest bit out of range");
        let slot = (bit / DEST_BITS_PER_ENTRY) as usize;
        let off = bit % DEST_BITS_PER_ENTRY;
        if off < 8 {
            self.dest_tag[slot] ^= 1 << off;
        } else {
            let was_valid = self.valid[slot];
            self.valid[slot] = !was_valid;
            // `count` tracks *unusable* slots (valid bit set or payload
            // still present). A zombie (payload kept, valid cleared) stays
            // unusable; a ghost (valid set on an empty slot) becomes so.
            if self.payload[slot].is_none() {
                if was_valid {
                    self.count = self.count.saturating_sub(1);
                } else {
                    self.count += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(seq: u64, s1: PhysReg, s2: PhysReg, d: PhysReg) -> IqPayload {
        IqPayload {
            rob_idx: seq as usize,
            seq,
            has_src1: true,
            has_src2: true,
            golden_src1: s1,
            golden_src2: s2,
            golden_dest: d,
        }
    }

    #[test]
    fn wakeup_then_ready_oldest_first() {
        let mut iq = IssueQueue::new(4);
        iq.insert(payload(2, 10, 11, 20), false, false);
        iq.insert(payload(1, 10, 0, 21), false, true);
        assert!(iq.ready_entries().unwrap().is_empty());
        iq.broadcast(10);
        let ready = iq.ready_entries().unwrap();
        assert_eq!(ready.len(), 1, "entry 2 still waits on tag 11");
        assert_eq!(iq.payload(ready[0]).unwrap().seq, 1);
        iq.broadcast(11);
        let ready = iq.ready_entries().unwrap();
        assert_eq!(
            (
                iq.payload(ready[0]).unwrap().seq,
                iq.payload(ready[1]).unwrap().seq
            ),
            (1, 2),
            "oldest first"
        );
    }

    #[test]
    fn flipped_src_tag_misses_broadcast() {
        let mut iq = IssueQueue::new(2);
        let slot = iq.insert(payload(1, 10, 0, 20), false, true).unwrap();
        iq.flip_src_bit(slot as u64 * SRC_BITS_PER_ENTRY); // tag 10 → 11
        iq.broadcast(10);
        assert!(iq.ready_entries().unwrap().is_empty(), "wakeup missed");
        iq.broadcast(11);
        assert_eq!(
            iq.ready_entries().unwrap().len(),
            1,
            "wrong producer wakes it"
        );
        let (s1, _, _) = iq.stored_tags(slot);
        assert_eq!(s1, 11, "cross-check against payload 10 must fail");
    }

    #[test]
    fn ready_bit_flip_makes_entry_issueable() {
        let mut iq = IssueQueue::new(2);
        let slot = iq.insert(payload(1, 10, 0, 20), false, true).unwrap();
        iq.flip_src_bit(slot as u64 * SRC_BITS_PER_ENTRY + 8);
        assert_eq!(iq.ready_entries().unwrap(), vec![slot]);
    }

    #[test]
    fn ghost_valid_bit_detected() {
        let mut iq = IssueQueue::new(2);
        iq.flip_dest_bit(DEST_BITS_PER_ENTRY - 1); // valid bit of slot 0
        assert!(iq.ready_entries().is_err());
    }

    #[test]
    fn squash_removes_younger_only() {
        let mut iq = IssueQueue::new(4);
        iq.insert(payload(1, 0, 0, 1), true, true).unwrap();
        iq.insert(payload(5, 0, 0, 2), true, true).unwrap();
        iq.insert(payload(9, 0, 0, 3), true, true).unwrap();
        iq.squash_younger(5);
        assert_eq!(iq.len(), 2);
        let seqs: Vec<u64> = iq
            .ready_entries()
            .unwrap()
            .into_iter()
            .map(|s| iq.payload(s).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![1, 5]);
    }

    #[test]
    fn insert_on_full_queue_returns_none_instead_of_panicking() {
        let mut iq = IssueQueue::new(1);
        iq.insert(payload(1, 0, 0, 1), true, true).unwrap();
        assert_eq!(iq.insert(payload(2, 0, 0, 2), true, true), None);
    }

    #[test]
    fn capacity_tracking() {
        let mut iq = IssueQueue::new(2);
        let a = iq.insert(payload(1, 0, 0, 1), true, true).unwrap();
        iq.insert(payload(2, 0, 0, 2), true, true).unwrap();
        assert!(iq.is_full());
        iq.remove(a);
        assert!(!iq.is_full());
        assert_eq!(iq.len(), 1);
    }
}
