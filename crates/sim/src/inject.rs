//! Fault-injection targets: the paper's 15 structure fields across 8
//! hardware components, with uniform bit addressing.

use crate::pipeline::Sim;
use crate::rob::RobField;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One injectable structure field (the unit of the paper's per-field AVF
/// analysis). Eight components, fifteen fields in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Structure {
    /// L1 instruction cache — data array.
    L1IData,
    /// L1 instruction cache — tag array.
    L1ITag,
    /// L1 data cache — data array.
    L1DData,
    /// L1 data cache — tag array.
    L1DTag,
    /// L2 cache — data array.
    L2Data,
    /// L2 cache — tag array.
    L2Tag,
    /// Physical register file (values).
    RegFile,
    /// Load queue entries.
    LoadQueue,
    /// Store queue entries.
    StoreQueue,
    /// Issue queue — source field.
    IqSrc,
    /// Issue queue — destination field.
    IqDest,
    /// Reorder buffer — PC field.
    RobPc,
    /// Reorder buffer — destination field.
    RobDest,
    /// Reorder buffer — sequence field.
    RobSeq,
    /// Reorder buffer — flags field.
    RobFlags,
}

impl Structure {
    /// All fifteen fields, in the paper's presentation order.
    pub const ALL: [Structure; 15] = [
        Structure::L1IData,
        Structure::L1ITag,
        Structure::L1DData,
        Structure::L1DTag,
        Structure::L2Data,
        Structure::L2Tag,
        Structure::RegFile,
        Structure::LoadQueue,
        Structure::StoreQueue,
        Structure::IqSrc,
        Structure::IqDest,
        Structure::RobPc,
        Structure::RobDest,
        Structure::RobSeq,
        Structure::RobFlags,
    ];

    /// Short identifier (used in result tables).
    pub fn name(self) -> &'static str {
        match self {
            Structure::L1IData => "l1i.data",
            Structure::L1ITag => "l1i.tag",
            Structure::L1DData => "l1d.data",
            Structure::L1DTag => "l1d.tag",
            Structure::L2Data => "l2.data",
            Structure::L2Tag => "l2.tag",
            Structure::RegFile => "rf",
            Structure::LoadQueue => "lq",
            Structure::StoreQueue => "sq",
            Structure::IqSrc => "iq.src",
            Structure::IqDest => "iq.dest",
            Structure::RobPc => "rob.pc",
            Structure::RobDest => "rob.dest",
            Structure::RobSeq => "rob.seq",
            Structure::RobFlags => "rob.flags",
        }
    }

    /// Parses a structure from its short identifier.
    pub fn from_name(name: &str) -> Option<Structure> {
        Structure::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// The hardware component this field belongs to (8 components).
    pub fn component(self) -> &'static str {
        match self {
            Structure::L1IData | Structure::L1ITag => "L1I",
            Structure::L1DData | Structure::L1DTag => "L1D",
            Structure::L2Data | Structure::L2Tag => "L2",
            Structure::RegFile => "RF",
            Structure::LoadQueue => "LQ",
            Structure::StoreQueue => "SQ",
            Structure::IqSrc | Structure::IqDest => "IQ",
            Structure::RobPc | Structure::RobDest | Structure::RobSeq | Structure::RobFlags => {
                "ROB"
            }
        }
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Sim {
    /// Number of injectable bits in a structure field on this machine.
    pub fn bit_count(&self, s: Structure) -> u64 {
        match s {
            Structure::L1IData => self.mem.l1i.data_bits(),
            Structure::L1ITag => self.mem.l1i.tag_bits(),
            Structure::L1DData => self.mem.l1d.data_bits(),
            Structure::L1DTag => self.mem.l1d.tag_bits(),
            Structure::L2Data => self.mem.l2.data_bits(),
            Structure::L2Tag => self.mem.l2.tag_bits(),
            Structure::RegFile => self.rf.bit_count(),
            Structure::LoadQueue => self.lq.bit_count(),
            Structure::StoreQueue => self.sq.bit_count(),
            Structure::IqSrc => self.iq.src_bits(),
            Structure::IqDest => self.iq.dest_bits(),
            Structure::RobPc => self.rob.field_bits(RobField::Pc),
            Structure::RobDest => self.rob.field_bits(RobField::Dest),
            Structure::RobSeq => self.rob.field_bits(RobField::Seq),
            Structure::RobFlags => self.rob.field_bits(RobField::Flags),
        }
    }

    /// Flips one bit of a structure field (the single-event upset).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= self.bit_count(s)`.
    pub fn flip_bit(&mut self, s: Structure, bit: u64) {
        match s {
            Structure::L1IData => self.mem.l1i.flip_data_bit(bit),
            Structure::L1ITag => self.mem.l1i.flip_tag_bit(bit),
            Structure::L1DData => self.mem.l1d.flip_data_bit(bit),
            Structure::L1DTag => self.mem.l1d.flip_tag_bit(bit),
            Structure::L2Data => self.mem.l2.flip_data_bit(bit),
            Structure::L2Tag => self.mem.l2.flip_tag_bit(bit),
            Structure::RegFile => self.rf.flip_bit(bit),
            Structure::LoadQueue => self.lq.flip_bit(bit),
            Structure::StoreQueue => self.sq.flip_bit(bit),
            Structure::IqSrc => self.iq.flip_src_bit(bit),
            Structure::IqDest => self.iq.flip_dest_bit(bit),
            Structure::RobPc => self.rob.flip_bit(RobField::Pc, bit),
            Structure::RobDest => self.rob.flip_bit(RobField::Dest, bit),
            Structure::RobSeq => self.rob.flip_bit(RobField::Seq, bit),
            Structure::RobFlags => self.rob.flip_bit(RobField::Flags, bit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_fields_eight_components() {
        assert_eq!(Structure::ALL.len(), 15);
        let comps: std::collections::BTreeSet<&str> =
            Structure::ALL.iter().map(|s| s.component()).collect();
        assert_eq!(comps.len(), 8);
    }

    #[test]
    fn names_roundtrip() {
        for s in Structure::ALL {
            assert_eq!(Structure::from_name(s.name()), Some(s));
        }
        assert_eq!(Structure::from_name("nope"), None);
    }
}
