//! The memory hierarchy: L1I + L1D over a unified write-back L2 over flat
//! guest memory. All data motion goes through the real cache arrays so
//! injected faults propagate (or get masked) with hardware semantics.

use crate::cache::Cache;
use crate::config::MachineConfig;
use crate::residency::{CacheResidency, LiveWindow};
use softerr_isa::{MemFault, MemFaultKind, Memory, NULL_PAGE};

/// Which L1 a request goes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Instruction side.
    Instr,
    /// Data side.
    Data,
}

/// Failure of a memory-system operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemErr {
    /// Architectural fault (misalignment, null page, out of range): real
    /// hardware would deliver this to the faulting instruction, so it turns
    /// into a **Crash** when the instruction commits.
    Arch(MemFault),
    /// A cache operation touched an address outside the system map (e.g. a
    /// dirty writeback through a corrupted tag): the simulator cannot tell
    /// how real hardware would behave — an **Assert**, per the paper.
    Assert(&'static str),
}

impl From<MemFault> for MemErr {
    fn from(f: MemFault) -> MemErr {
        MemErr::Arch(f)
    }
}

/// The full memory system.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// Backing guest memory.
    pub mem: Memory,
    l1_lat: u64,
    l2_lat: u64,
    mem_lat: u64,
    /// Current pipeline cycle, pushed in by [`crate::Sim`] each cycle when
    /// residency tracking is on (line fills/evictions need timestamps).
    clock: u64,
    /// Per-line ACE residency for the three cache arrays (golden runs
    /// only; excluded from [`MemorySystem::state_eq`]).
    residency: Option<Box<[CacheResidency; 3]>>,
}

impl MemorySystem {
    /// Builds the hierarchy for a machine configuration over loaded memory.
    pub fn new(cfg: &MachineConfig, mem: Memory) -> MemorySystem {
        MemorySystem {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            mem,
            l1_lat: cfg.l1_latency,
            l2_lat: cfg.l2_latency,
            mem_lat: cfg.mem_latency,
            clock: 0,
            residency: None,
        }
    }

    /// Turns on per-line ACE residency tracking (indices: l1i, l1d, l2).
    pub(crate) fn enable_residency(&mut self) {
        self.residency = Some(Box::new([
            CacheResidency::new(self.l1i.geometry().lines()),
            CacheResidency::new(self.l1d.geometry().lines()),
            CacheResidency::new(self.l2.geometry().lines()),
        ]));
    }

    /// Additionally records per-line lifetime windows (for the campaign
    /// prune filter's [`crate::LivenessMap`]). Requires residency on.
    pub(crate) fn record_liveness_windows(&mut self) {
        if let Some(r) = self.residency.as_deref_mut() {
            for cache in r.iter_mut() {
                cache.set_record_windows(true);
            }
        }
    }

    /// Finished `(data, tag)` danger windows of the three cache arrays
    /// (indices: l1i, l1d, l2), or `None` if residency was never enabled.
    #[allow(clippy::type_complexity)]
    pub(crate) fn liveness_windows(
        &self,
    ) -> Option<[(Vec<Vec<LiveWindow>>, Vec<Vec<LiveWindow>>); 3]> {
        let r = self.residency.as_deref()?;
        Some([
            r[0].live_windows(),
            r[1].live_windows(),
            r[2].live_windows(),
        ])
    }

    /// Advances the residency clock (called once per pipeline cycle).
    pub(crate) fn set_clock(&mut self, cycle: u64) {
        self.clock = cycle;
    }

    /// Drops residency tracking (forked children are classification-only
    /// and must not drag a per-line tracker copy behind them).
    pub(crate) fn clear_residency(&mut self) {
        self.residency = None;
    }

    /// Line-cycle residency totals `(l1i, l1d, l2)`, closing still-valid
    /// lines at their last use.
    pub(crate) fn residency_totals(&self) -> Option<(u64, u64, u64)> {
        let r = self.residency.as_deref()?;
        Some((r[0].total(), r[1].total(), r[2].total()))
    }

    fn l1_residency(&mut self, side: Side) -> Option<&mut CacheResidency> {
        let idx = match side {
            Side::Instr => 0,
            Side::Data => 1,
        };
        self.residency.as_deref_mut().map(|r| &mut r[idx])
    }

    /// Whether two hierarchies hold identical execution-relevant state
    /// (cache arrays and guest memory; hit/miss statistics excluded).
    /// Guest memory compares by pointer first, and the cache arrays are
    /// chunked copy-on-write storage compared the same way: chunks a fork
    /// never unshared are equal by construction and are not walked, so for
    /// a recently forked child this is a near-free pointer sweep rather
    /// than a megabyte-scale comparison.
    pub fn state_eq(&self, other: &MemorySystem) -> bool {
        self.divergence(other).is_none()
    }

    /// Like [`MemorySystem::state_eq`], but names the first differing
    /// level of the hierarchy (`None` means the hierarchies are equal).
    pub fn divergence(&self, other: &MemorySystem) -> Option<&'static str> {
        if !self.l1i.state_eq(&other.l1i) {
            return Some("mem.l1i");
        }
        if !self.l1d.state_eq(&other.l1d) {
            return Some("mem.l1d");
        }
        if !self.l2.state_eq(&other.l2) {
            return Some("mem.l2");
        }
        (self.mem != other.mem).then_some("mem")
    }

    /// Appends *every* differing level of the hierarchy to `out` (the
    /// exhaustive counterpart of [`MemorySystem::divergence`], which stops
    /// at the first). Used by propagation tracing, which wants the whole
    /// diverging set per sample, not just the cheapest witness.
    pub fn divergent_components(&self, other: &MemorySystem, out: &mut Vec<&'static str>) {
        if !self.l1i.state_eq(&other.l1i) {
            out.push("mem.l1i");
        }
        if !self.l1d.state_eq(&other.l1d) {
            out.push("mem.l1d");
        }
        if !self.l2.state_eq(&other.l2) {
            out.push("mem.l2");
        }
        if self.mem != other.mem {
            out.push("mem");
        }
    }

    /// Architectural validity check for a demand access (the same rules the
    /// reference [`softerr_isa::Memory`] enforces). Used by the pipeline's
    /// AGU so that faulting addresses are flagged *before* touching caches.
    pub fn arch_check(&self, addr: u64, size: u64) -> Result<(), MemFault> {
        self.check(addr, size)
    }

    fn check(&self, addr: u64, size: u64) -> Result<(), MemFault> {
        if addr < NULL_PAGE {
            return Err(MemFault {
                addr,
                size,
                kind: MemFaultKind::NullPage,
            });
        }
        if !addr.is_multiple_of(size) {
            return Err(MemFault {
                addr,
                size,
                kind: MemFaultKind::Misaligned,
            });
        }
        if addr
            .checked_add(size)
            .is_none_or(|end| end > self.mem.size())
        {
            return Err(MemFault {
                addr,
                size,
                kind: MemFaultKind::OutOfRange,
            });
        }
        Ok(())
    }

    /// Evicts `line` from L2 (writing back to memory when dirty).
    fn evict_l2(&mut self, line: usize) -> Result<(), MemErr> {
        if self.residency.is_some() {
            let dirty = self.l2.is_valid(line) && self.l2.is_dirty(line);
            let clock = self.clock;
            if let Some(r) = self.residency.as_deref_mut() {
                r[2].on_evict(line, clock, dirty);
            }
        }
        if self.l2.is_valid(line) && self.l2.is_dirty(line) {
            let addr = self.l2.reconstruct_addr(line);
            let lb = self.l2.geometry().line_bytes;
            if !self.mem.contains_range(addr, lb) {
                return Err(MemErr::Assert("L2 writeback outside system map"));
            }
            let data = self.l2.line_data(line).to_vec();
            self.mem.write_bytes(addr, &data);
        }
        self.l2.invalidate(line);
        Ok(())
    }

    /// Ensures `addr`'s line is present in L2; returns (line, extra latency).
    fn l2_line(&mut self, addr: u64) -> Result<(usize, u64), MemErr> {
        if let Some(line) = self.l2.lookup(addr) {
            let clock = self.clock;
            if let Some(r) = self.residency.as_deref_mut() {
                r[2].on_use(line, clock);
            }
            return Ok((line, self.l2_lat));
        }
        let lb = self.l2.geometry().line_bytes;
        let base = addr & !(lb - 1);
        if !self.mem.contains_range(base, lb) {
            return Err(MemErr::Assert("L2 fill outside system map"));
        }
        let victim = self.l2.victim(addr);
        self.evict_l2(victim)?;
        let contents = self.mem.read_bytes(base, lb as usize).to_vec();
        self.l2.fill(victim, base, &contents);
        let clock = self.clock;
        if let Some(r) = self.residency.as_deref_mut() {
            r[2].on_fill(victim, clock);
        }
        Ok((victim, self.l2_lat + self.mem_lat))
    }

    /// Evicts an L1 line: dirty data goes to L2 if present there, else
    /// straight to memory.
    fn evict_l1(&mut self, side: Side, line: usize) -> Result<(), MemErr> {
        if self.residency.is_some() {
            let l1 = match side {
                Side::Instr => &self.l1i,
                Side::Data => &self.l1d,
            };
            let dirty = l1.is_valid(line) && l1.is_dirty(line);
            let clock = self.clock;
            if let Some(r) = self.l1_residency(side) {
                r.on_evict(line, clock, dirty);
            }
        }
        let l1 = match side {
            Side::Instr => &mut self.l1i,
            Side::Data => &mut self.l1d,
        };
        if l1.is_valid(line) && l1.is_dirty(line) {
            let addr = l1.reconstruct_addr(line);
            let data = l1.line_data(line).to_vec();
            let lb = l1.geometry().line_bytes;
            if let Some(l2_line) = self.l2.lookup(addr) {
                self.l2.line_data_mut(l2_line).copy_from_slice(&data);
                self.l2.set_dirty(l2_line, true);
            } else {
                if !self.mem.contains_range(addr, lb) {
                    return Err(MemErr::Assert("L1 writeback outside system map"));
                }
                self.mem.write_bytes(addr, &data);
            }
        }
        match side {
            Side::Instr => self.l1i.invalidate(line),
            Side::Data => self.l1d.invalidate(line),
        }
        Ok(())
    }

    /// Brings `addr`'s line into the chosen L1, returning (line, latency).
    fn access_line(&mut self, side: Side, addr: u64) -> Result<(usize, u64), MemErr> {
        let l1 = match side {
            Side::Instr => &mut self.l1i,
            Side::Data => &mut self.l1d,
        };
        if let Some(line) = l1.lookup(addr) {
            let clock = self.clock;
            if let Some(r) = self.l1_residency(side) {
                r.on_use(line, clock);
            }
            return Ok((line, self.l1_lat));
        }
        let (l2_line, fill_lat) = self.l2_line(addr)?;
        let contents = self.l2.line_data(l2_line).to_vec();
        let l1 = match side {
            Side::Instr => &self.l1i,
            Side::Data => &self.l1d,
        };
        let victim = l1.victim(addr);
        let lb = l1.geometry().line_bytes;
        self.evict_l1(side, victim)?;
        let base = addr & !(lb - 1);
        match side {
            Side::Instr => self.l1i.fill(victim, base, &contents),
            Side::Data => self.l1d.fill(victim, base, &contents),
        }
        let clock = self.clock;
        if let Some(r) = self.l1_residency(side) {
            r.on_fill(victim, clock);
        }
        Ok((victim, self.l1_lat + fill_lat))
    }

    /// Reads `size` bytes through the data side. Returns (value, latency).
    ///
    /// # Errors
    ///
    /// [`MemErr::Arch`] for architectural faults on the demand address,
    /// [`MemErr::Assert`] when a corrupted line forces an out-of-map cache
    /// operation.
    pub fn read(&mut self, addr: u64, size: u64) -> Result<(u64, u64), MemErr> {
        self.check(addr, size)?;
        let (line, lat) = self.access_line(Side::Data, addr)?;
        let lb = self.l1d.geometry().line_bytes;
        let off = (addr & (lb - 1)) as usize;
        let bytes = self.l1d.line_data(line);
        let mut value = 0u64;
        for i in (0..size as usize).rev() {
            value = (value << 8) | u64::from(bytes[off + i]);
        }
        Ok((value, lat))
    }

    /// Writes `size` bytes through the data side (write-back,
    /// write-allocate). Returns the latency.
    ///
    /// # Errors
    ///
    /// As for [`MemorySystem::read`].
    pub fn write(&mut self, addr: u64, size: u64, value: u64) -> Result<u64, MemErr> {
        self.check(addr, size)?;
        let (line, lat) = self.access_line(Side::Data, addr)?;
        let lb = self.l1d.geometry().line_bytes;
        let off = (addr & (lb - 1)) as usize;
        let bytes = self.l1d.line_data_mut(line);
        for i in 0..size as usize {
            bytes[off + i] = (value >> (8 * i)) as u8;
        }
        self.l1d.set_dirty(line, true);
        Ok(lat)
    }

    /// Fetches an instruction word through the instruction side.
    ///
    /// # Errors
    ///
    /// As for [`MemorySystem::read`].
    pub fn fetch(&mut self, addr: u64) -> Result<(u32, u64), MemErr> {
        self.check(addr, 4)?;
        let (line, lat) = self.access_line(Side::Instr, addr)?;
        let lb = self.l1i.geometry().line_bytes;
        let off = (addr & (lb - 1)) as usize;
        let bytes = self.l1i.line_data(line);
        let word = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4-byte slice"));
        Ok((word, lat))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softerr_isa::DEFAULT_MEM_SIZE;

    fn sys() -> MemorySystem {
        let cfg = MachineConfig::cortex_a15();
        let mut mem = Memory::new(DEFAULT_MEM_SIZE);
        mem.write(0x2000, 8, 0x1122_3344_5566_7788).unwrap();
        MemorySystem::new(&cfg, mem)
    }

    #[test]
    fn read_miss_then_hit_latencies() {
        let mut s = sys();
        let (v1, lat1) = s.read(0x2000, 4).unwrap();
        assert_eq!(v1, 0x5566_7788);
        assert_eq!(lat1, 2 + 12 + 80, "cold miss goes to memory");
        let (v2, lat2) = s.read(0x2004, 4).unwrap();
        assert_eq!(v2, 0x1122_3344);
        assert_eq!(lat2, 2, "same line hits in L1");
    }

    #[test]
    fn write_read_roundtrip_through_caches() {
        let mut s = sys();
        s.write(0x3000, 4, 0xDEAD_BEEF).unwrap();
        let (v, _) = s.read(0x3000, 4).unwrap();
        assert_eq!(v, 0xDEAD_BEEF);
        // Memory behind the cache is still stale (write-back).
        assert_eq!(s.mem.read(0x3000, 4).unwrap(), 0);
    }

    #[test]
    fn dirty_eviction_reaches_memory() {
        let mut s = sys();
        s.write(0x2000, 4, 77).unwrap();
        // Evict by filling the set: L1D has 256 sets × 2 ways; addresses
        // 0x2000 + k*0x4000 share set 128... set bits are addr[13:6].
        // 0x2000>>6 = 0x80 (set 128). Conflicting addrs: 0x2000 + n*0x4000.
        s.read(0x6000, 4).unwrap();
        s.read(0xA000, 4).unwrap(); // evicts 0x2000's line into L2
                                    // L2 still holds it (fill-on-miss put it there); force L2 eviction
                                    // is unnecessary — read back through the hierarchy instead.
        let (v, _) = s.read(0x2000, 4).unwrap();
        assert_eq!(v, 77, "dirty data must survive eviction");
    }

    #[test]
    fn corrupted_data_bit_is_read_back() {
        let mut s = sys();
        let (v, _) = s.read(0x2000, 4).unwrap();
        assert_eq!(v, 0x5566_7788);
        let line = s.l1d.lookup(0x2000).unwrap();
        s.l1d.flip_data_bit((line as u64 * 64) * 8); // bit 0 of the line
        let (v2, _) = s.read(0x2000, 4).unwrap();
        assert_eq!(v2, 0x5566_7789);
    }

    #[test]
    fn corrupted_tag_writeback_out_of_map_asserts() {
        let mut s = sys();
        s.write(0x2000, 4, 1).unwrap();
        let line = s.l1d.lookup(0x2000).unwrap();
        // Flip a high tag bit → reconstructed address far outside the 4 MiB map.
        let per_line = s.l1d.tag_width() as u64 + 2;
        s.l1d
            .flip_tag_bit(line as u64 * per_line + (s.l1d.tag_width() as u64 - 1));
        // Force eviction of that (dirty) line.
        s.read(0x6000, 4).unwrap();
        let err = s.read(0xA000, 4).unwrap_err();
        assert_eq!(err, MemErr::Assert("L1 writeback outside system map"));
    }

    #[test]
    fn clean_line_corruption_dies_on_eviction() {
        let mut s = sys();
        s.read(0x2000, 4).unwrap();
        let line = s.l1d.lookup(0x2000).unwrap();
        s.l1d.flip_data_bit(line as u64 * 64 * 8);
        // Evict (clean) then re-read: correct data comes back from L2.
        s.read(0x6000, 4).unwrap();
        s.read(0xA000, 4).unwrap();
        let (v, _) = s.read(0x2000, 4).unwrap();
        assert_eq!(v, 0x5566_7788, "clean eviction masks the fault");
    }

    #[test]
    fn architectural_faults_reported() {
        let mut s = sys();
        assert!(
            matches!(s.read(0x2001, 4), Err(MemErr::Arch(f)) if f.kind == MemFaultKind::Misaligned)
        );
        assert!(
            matches!(s.read(0x10, 8), Err(MemErr::Arch(f)) if f.kind == MemFaultKind::NullPage)
        );
        assert!(matches!(
            s.write(DEFAULT_MEM_SIZE, 4, 0),
            Err(MemErr::Arch(f)) if f.kind == MemFaultKind::OutOfRange
        ));
        assert!(matches!(s.fetch(0x2002), Err(MemErr::Arch(_))));
    }

    #[test]
    fn instruction_and_data_sides_are_separate() {
        let mut s = sys();
        let (_, lat1) = s.fetch(0x2000).unwrap();
        assert!(lat1 > 2);
        // D-side access to the same line still misses L1D (hits L2).
        let (_, lat2) = s.read(0x2000, 4).unwrap();
        assert_eq!(lat2, 2 + 12);
    }
}
