//! In-flight instruction payload (the non-injectable "golden" side of each
//! pipeline entry).
//!
//! Injectable structures (ROB fields, IQ fields, LQ/SQ fields) mirror parts
//! of this payload; at every use site the simulator cross-checks the
//! injectable copy against the payload and raises an Assert outcome on
//! mismatch — the same methodology GeFIN applies (a corrupted operand or
//! linkage field is an "unexpected microprocessor operation").

use crate::regs::PhysReg;
use softerr_isa::{Instr, Trap};

/// Destination-register rename triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DestInfo {
    /// Architectural destination register.
    pub arch: u8,
    /// Newly allocated physical register.
    pub phys: PhysReg,
    /// Previous mapping of `arch` (freed at commit).
    pub old: PhysReg,
}

/// Execution state of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopState {
    /// Waiting in the issue queue for its operands.
    InIq,
    /// Executing: `left` cycles remain.
    Executing {
        /// Remaining cycles.
        left: u64,
    },
    /// Load with a computed address waiting for memory ordering.
    WaitMemOrder,
    /// Load access in progress in the cache hierarchy.
    MemAccess {
        /// Remaining cycles.
        left: u64,
    },
    /// Finished executing, waiting for a writeback slot.
    WaitWriteback,
    /// Complete (result visible, ROB entry ready to commit).
    Done,
}

/// Coarse instruction kind (cached so the pipeline does not re-match the
/// instruction enum in every stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopKind {
    /// Integer/branch/out/halt handled by an ALU-class unit.
    Alu,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Control transfer (conditional branch, jal, jalr).
    Branch,
    /// `out` instruction (architectural output at commit).
    Out,
    /// `halt` instruction.
    Halt,
    /// Carries a pre-decoded exception (invalid opcode / fetch fault).
    Poisoned,
}

/// One in-flight instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Uop {
    /// Global sequence number (program order).
    pub seq: u64,
    /// Fetch PC.
    pub pc: u64,
    /// Decoded instruction (`None` for poisoned uops).
    pub instr: Option<Instr>,
    /// Kind cache.
    pub kind: UopKind,
    /// Exception pending delivery at commit.
    pub exception: Option<Trap>,
    /// Next PC the front end followed after this instruction.
    pub pred_next: u64,
    /// Resolved next PC (set at execute; `pc + 4` for non-control).
    pub actual_next: u64,
    /// Renamed first source.
    pub src1: Option<PhysReg>,
    /// Renamed second source.
    pub src2: Option<PhysReg>,
    /// Destination rename triple.
    pub dest: Option<DestInfo>,
    /// Speculative-map checkpoint (branches only).
    pub checkpoint: Option<Box<[PhysReg]>>,
    /// Execution state.
    pub state: UopState,
    /// First operand value (captured at issue).
    pub val1: u64,
    /// Second operand value (captured at issue).
    pub val2: u64,
    /// Result value (register result, store data, or `out` payload).
    pub result: u64,
    /// Effective address (loads/stores, set at AGU).
    pub mem_addr: u64,
    /// Access size in bytes (loads/stores).
    pub mem_size: u64,
    /// Load sign-extension flag.
    pub mem_signed: bool,
    /// Load/store queue slot.
    pub lsq_idx: Option<usize>,
    /// ROB slot (set at dispatch).
    pub rob_idx: usize,
    /// Destination tag as read from the issue queue at issue time (subject
    /// to injected faults, unlike `dest`).
    pub issued_dest_tag: PhysReg,
    /// Whether the AGU has produced `mem_addr`.
    pub addr_known: bool,
}

impl Uop {
    /// Creates a payload for a decoded (or poisoned) fetch.
    pub fn new(seq: u64, pc: u64, instr: Option<Instr>, exception: Option<Trap>) -> Uop {
        let kind = match (&instr, &exception) {
            (_, Some(_)) => UopKind::Poisoned,
            (Some(Instr::Load { .. }), _) => UopKind::Load,
            (Some(Instr::Store { .. }), _) => UopKind::Store,
            (
                Some(Instr::Branch { .. }) | Some(Instr::Jal { .. }) | Some(Instr::Jalr { .. }),
                _,
            ) => UopKind::Branch,
            (Some(Instr::Out { .. }), _) => UopKind::Out,
            (Some(Instr::Halt), _) => UopKind::Halt,
            (Some(_), _) => UopKind::Alu,
            (None, None) => unreachable!("uop with neither instruction nor exception"),
        };
        Uop {
            seq,
            pc,
            instr,
            kind,
            exception,
            pred_next: pc.wrapping_add(4),
            actual_next: pc.wrapping_add(4),
            src1: None,
            src2: None,
            dest: None,
            checkpoint: None,
            state: UopState::InIq,
            val1: 0,
            val2: 0,
            result: 0,
            mem_addr: 0,
            mem_size: 0,
            mem_signed: false,
            lsq_idx: None,
            rob_idx: usize::MAX,
            issued_dest_tag: 0,
            addr_known: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softerr_isa::{AluOp, MemWidth, Reg};

    #[test]
    fn kind_classification() {
        let mk = |i: Instr| Uop::new(0, 0x1000, Some(i), None).kind;
        assert_eq!(
            mk(Instr::Alu {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A0,
                rs2: Reg::A0
            }),
            UopKind::Alu
        );
        assert_eq!(
            mk(Instr::Load {
                width: MemWidth::W,
                signed: true,
                rd: Reg::A0,
                base: Reg::SP,
                offset: 0
            }),
            UopKind::Load
        );
        assert_eq!(mk(Instr::Halt), UopKind::Halt);
        assert_eq!(
            mk(Instr::Jal {
                rd: Reg::RA,
                offset: 1
            }),
            UopKind::Branch
        );
        let poisoned = Uop::new(
            0,
            0x1000,
            None,
            Some(Trap::InvalidInstr {
                pc: 0x1000,
                word: 0,
            }),
        );
        assert_eq!(poisoned.kind, UopKind::Poisoned);
    }
}
