//! Branch prediction: a bimodal 2-bit predictor, a small BTB for indirect
//! targets, and a return-address stack.
//!
//! The predictor is *not* a fault-injection target (a corrupted prediction
//! only costs cycles, never correctness), matching the paper's choice of
//! injected structures.

/// Branch predictor state.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    btb_tags: Vec<u64>,
    btb_targets: Vec<u64>,
    ras: Vec<u64>,
    ras_top: usize,
}

const BIMODAL_ENTRIES: usize = 1024;
const BTB_ENTRIES: usize = 256;
const RAS_DEPTH: usize = 16;

impl BranchPredictor {
    /// Creates a predictor with weakly-taken counters and an empty BTB/RAS.
    pub fn new() -> BranchPredictor {
        BranchPredictor {
            counters: vec![2; BIMODAL_ENTRIES],
            btb_tags: vec![u64::MAX; BTB_ENTRIES],
            btb_targets: vec![0; BTB_ENTRIES],
            ras: vec![0; RAS_DEPTH],
            ras_top: 0,
        }
    }

    fn bimodal_index(pc: u64) -> usize {
        ((pc >> 2) as usize) & (BIMODAL_ENTRIES - 1)
    }

    fn btb_index(pc: u64) -> usize {
        ((pc >> 2) as usize) & (BTB_ENTRIES - 1)
    }

    /// Predicts a conditional branch at `pc` as taken or not.
    pub fn predict_taken(&self, pc: u64) -> bool {
        self.counters[Self::bimodal_index(pc)] >= 2
    }

    /// Updates the bimodal counter after resolution.
    pub fn update_taken(&mut self, pc: u64, taken: bool) {
        let c = &mut self.counters[Self::bimodal_index(pc)];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Predicts an indirect target via the BTB (`None` on a BTB miss).
    pub fn predict_indirect(&self, pc: u64) -> Option<u64> {
        let i = Self::btb_index(pc);
        (self.btb_tags[i] == pc).then_some(self.btb_targets[i])
    }

    /// Records an indirect target.
    pub fn update_indirect(&mut self, pc: u64, target: u64) {
        let i = Self::btb_index(pc);
        self.btb_tags[i] = pc;
        self.btb_targets[i] = target;
    }

    /// Pushes a return address (on calls).
    pub fn push_return(&mut self, addr: u64) {
        self.ras[self.ras_top] = addr;
        self.ras_top = (self.ras_top + 1) % RAS_DEPTH;
    }

    /// Pops a predicted return address (on returns).
    pub fn pop_return(&mut self) -> u64 {
        self.ras_top = (self.ras_top + RAS_DEPTH - 1) % RAS_DEPTH;
        self.ras[self.ras_top]
    }
}

impl Default for BranchPredictor {
    fn default() -> BranchPredictor {
        BranchPredictor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate() {
        let mut p = BranchPredictor::new();
        for _ in 0..10 {
            p.update_taken(0x1000, true);
        }
        assert!(p.predict_taken(0x1000));
        for _ in 0..10 {
            p.update_taken(0x1000, false);
        }
        assert!(!p.predict_taken(0x1000));
    }

    #[test]
    fn btb_roundtrip() {
        let mut p = BranchPredictor::new();
        assert_eq!(p.predict_indirect(0x1000), None);
        p.update_indirect(0x1000, 0x2000);
        assert_eq!(p.predict_indirect(0x1000), Some(0x2000));
        // Aliasing entry replaces.
        p.update_indirect(0x1000 + 256 * 4, 0x3000);
        assert_eq!(p.predict_indirect(0x1000), None);
    }

    #[test]
    fn ras_is_lifo() {
        let mut p = BranchPredictor::new();
        p.push_return(0x10);
        p.push_return(0x20);
        assert_eq!(p.pop_return(), 0x20);
        assert_eq!(p.pop_return(), 0x10);
    }
}
