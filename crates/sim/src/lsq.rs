//! Load queue and store queue.
//!
//! Each entry's injectable word packs the fields the paper describes for
//! these structures — register operand tag, ROB linkage, sequence bits, and
//! status flags (32 bits per entry on the A15-like machine, 64 on the
//! A72-like one). Every use of an entry cross-checks the injectable word
//! against the pipeline payload, so a corrupted live entry manifests as an
//! **Assert** — the only fault class the paper observes for the LQ/SQ.

use crate::regs::PhysReg;
use softerr_isa::Profile;

/// Field layout of one injectable LSQ entry word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsqLayout {
    /// Register-operand tag bits.
    pub tag_bits: u32,
    /// ROB index bits.
    pub rob_bits: u32,
    /// Sequence-number bits.
    pub seq_bits: u32,
    /// Status flag bits.
    pub flag_bits: u32,
}

impl LsqLayout {
    /// The layout for a profile (32-bit entries on A32, 64-bit on A64,
    /// following the paper's Table I).
    pub fn for_profile(profile: Profile) -> LsqLayout {
        match profile {
            Profile::A32 => LsqLayout {
                tag_bits: 8,
                rob_bits: 8,
                seq_bits: 12,
                flag_bits: 4,
            },
            Profile::A64 => LsqLayout {
                tag_bits: 12,
                rob_bits: 12,
                seq_bits: 32,
                flag_bits: 8,
            },
        }
    }

    /// Total bits per entry.
    pub fn entry_bits(&self) -> u32 {
        self.tag_bits + self.rob_bits + self.seq_bits + self.flag_bits
    }

    /// Packs payload fields into the injectable word. Flag bit 0 is the
    /// valid bit; the remaining flag bits are architecturally zero.
    pub fn pack(&self, tag: PhysReg, rob_idx: usize, seq: u64, valid: bool) -> u64 {
        let mask = |v: u64, bits: u32| v & ((1u64 << bits) - 1);
        let mut w = mask(tag as u64, self.tag_bits);
        w |= mask(rob_idx as u64, self.rob_bits) << self.tag_bits;
        w |= mask(seq, self.seq_bits) << (self.tag_bits + self.rob_bits);
        w |= (valid as u64) << (self.tag_bits + self.rob_bits + self.seq_bits);
        w
    }
}

/// Non-injectable payload of an LSQ entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LsqPayload {
    /// Sequence number.
    pub seq: u64,
    /// ROB slot.
    pub rob_idx: usize,
    /// Destination tag (loads) or data-source tag (stores).
    pub tag: PhysReg,
    /// Effective address (valid once `addr_known`).
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// Store data (stores only).
    pub data: u64,
    /// Whether the AGU has produced the address.
    pub addr_known: bool,
}

/// Result of checking a load against older stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreCheck {
    /// No conflicting older store: the load may access memory.
    Clear,
    /// An exactly-matching older store provides the data.
    Forward(u64),
    /// An older store blocks the load (unknown address or partial overlap).
    Blocked,
}

/// A load or store queue (circular, allocated in program order).
#[derive(Debug, Clone, PartialEq)]
pub struct LsQueue {
    layout: LsqLayout,
    n: usize,
    head: usize,
    tail: usize,
    count: usize,
    /// Injectable entry words.
    words: Vec<u64>,
    payload: Vec<Option<LsqPayload>>,
}

impl LsQueue {
    /// Creates an empty queue of `n` entries.
    pub fn new(n: usize, layout: LsqLayout) -> LsQueue {
        LsQueue {
            layout,
            n,
            head: 0,
            tail: 0,
            count: 0,
            words: vec![0; n],
            payload: vec![None; n],
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether the queue is full.
    pub fn is_full(&self) -> bool {
        self.count == self.n
    }

    /// Head slot (oldest entry).
    pub fn head(&self) -> usize {
        self.head
    }

    /// Allocates the tail slot for a new entry; returns `None` when full.
    /// Dispatch guards with [`LsQueue::is_full`], so `None` only happens
    /// when a fault corrupted the capacity bookkeeping; returning it
    /// (instead of panicking) lets the pipeline classify the run as an
    /// Assert even under `panic = "abort"`.
    pub fn push(&mut self, payload: LsqPayload) -> Option<usize> {
        if self.is_full() {
            return None;
        }
        let idx = self.tail;
        self.words[idx] = self
            .layout
            .pack(payload.tag, payload.rob_idx, payload.seq, true);
        self.payload[idx] = Some(payload);
        self.tail = (self.tail + 1) % self.n;
        self.count += 1;
        Some(idx)
    }

    /// Releases the head entry.
    pub fn pop_head(&mut self) {
        assert!(!self.is_empty(), "LSQ underflow");
        self.words[self.head] = 0;
        self.payload[self.head] = None;
        self.head = (self.head + 1) % self.n;
        self.count -= 1;
    }

    /// Squashes entries younger than `boundary` (tail rollback).
    pub fn squash_younger(&mut self, boundary: u64) {
        while self.count > 0 {
            let last = (self.tail + self.n - 1) % self.n;
            let Some(p) = &self.payload[last] else { break };
            if p.seq <= boundary {
                break;
            }
            self.words[last] = 0;
            self.payload[last] = None;
            self.tail = last;
            self.count -= 1;
        }
    }

    /// Payload access.
    pub fn payload(&self, idx: usize) -> Option<&LsqPayload> {
        self.payload[idx].as_ref()
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self, idx: usize) -> Option<&mut LsqPayload> {
        self.payload[idx].as_mut()
    }

    /// Cross-checks the injectable word of `idx` against its payload.
    ///
    /// # Errors
    ///
    /// An error message (turned into an Assert outcome) when the stored
    /// word does not match — i.e. an injected fault corrupted a live entry.
    pub fn check(&self, idx: usize, what: &'static str) -> Result<(), &'static str> {
        let Some(p) = &self.payload[idx] else {
            return Err("LSQ entry has no payload");
        };
        let expected = self.layout.pack(p.tag, p.rob_idx, p.seq, true);
        if self.words[idx] != expected {
            return Err(what);
        }
        Ok(())
    }

    /// Iterates occupied slots oldest-first.
    pub fn occupied(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.count).map(move |k| (self.head + k) % self.n)
    }

    /// Checks a load at `seq`/`addr`/`size` against older stores in this
    /// (store) queue.
    pub fn check_older_stores(&self, seq: u64, addr: u64, size: u64) -> StoreCheck {
        let mut result = StoreCheck::Clear;
        for idx in self.occupied() {
            let p = self.payload[idx].expect("occupied slot has payload");
            if p.seq >= seq {
                continue;
            }
            if !p.addr_known {
                return StoreCheck::Blocked;
            }
            let overlap = p.addr < addr + size && addr < p.addr + p.size;
            if !overlap {
                continue;
            }
            if p.addr == addr && p.size == size {
                result = StoreCheck::Forward(p.data); // youngest matching wins
            } else {
                return StoreCheck::Blocked;
            }
        }
        result
    }

    /// Total injectable bits.
    pub fn bit_count(&self) -> u64 {
        self.n as u64 * self.layout.entry_bits() as u64
    }

    /// Flips one injectable bit.
    pub fn flip_bit(&mut self, bit: u64) {
        assert!(bit < self.bit_count(), "LSQ bit out of range");
        let per = self.layout.entry_bits() as u64;
        self.words[(bit / per) as usize] ^= 1 << (bit % per);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, addr: u64, size: u64, data: u64, known: bool) -> LsqPayload {
        LsqPayload {
            seq,
            rob_idx: seq as usize % 8,
            tag: (seq % 64) as PhysReg,
            addr,
            size,
            data,
            addr_known: known,
        }
    }

    fn queue() -> LsQueue {
        LsQueue::new(4, LsqLayout::for_profile(Profile::A32))
    }

    #[test]
    fn layouts_match_table_1_widths() {
        assert_eq!(LsqLayout::for_profile(Profile::A32).entry_bits(), 32);
        assert_eq!(LsqLayout::for_profile(Profile::A64).entry_bits(), 64);
    }

    #[test]
    fn push_on_full_queue_returns_none_instead_of_panicking() {
        let mut q = LsQueue::new(2, LsqLayout::for_profile(Profile::A32));
        q.push(entry(1, 0x2000, 4, 0, true)).unwrap();
        q.push(entry(2, 0x2004, 4, 0, true)).unwrap();
        assert_eq!(q.push(entry(3, 0x2008, 4, 0, true)), None);
    }

    #[test]
    fn push_check_pop() {
        let mut q = queue();
        let i = q.push(entry(5, 0x2000, 4, 7, true)).unwrap();
        assert!(q.check(i, "sq").is_ok());
        q.pop_head();
        assert!(q.is_empty());
    }

    #[test]
    fn any_flip_on_live_entry_fails_check() {
        for bit in 0..32u64 {
            let mut q = queue();
            let i = q.push(entry(5, 0x2000, 4, 7, true)).unwrap();
            q.flip_bit(i as u64 * 32 + bit);
            assert!(q.check(i, "flip").is_err(), "bit {bit} undetected");
        }
    }

    #[test]
    fn flips_on_free_entries_are_masked() {
        let mut q = queue();
        q.push(entry(1, 0x2000, 4, 0, true)).unwrap();
        // Flip in slot 3 (never allocated).
        q.flip_bit(3 * 32 + 5);
        assert!(q.check(0, "live").is_ok());
    }

    #[test]
    fn store_forwarding_cases() {
        let mut q = queue();
        q.push(entry(1, 0x2000, 4, 0xAA, true)).unwrap();
        q.push(entry(3, 0x3000, 4, 0xBB, true)).unwrap();
        // Exact match forwards from the matching store.
        assert_eq!(
            q.check_older_stores(5, 0x2000, 4),
            StoreCheck::Forward(0xAA)
        );
        // Disjoint addresses are clear.
        assert_eq!(q.check_older_stores(5, 0x4000, 4), StoreCheck::Clear);
        // Partial overlap blocks.
        assert_eq!(q.check_older_stores(5, 0x2002, 4), StoreCheck::Blocked);
        // Younger stores are ignored.
        assert_eq!(q.check_older_stores(2, 0x3000, 4), StoreCheck::Clear);
    }

    #[test]
    fn unknown_address_blocks() {
        let mut q = queue();
        q.push(entry(1, 0, 0, 0, false)).unwrap();
        assert_eq!(q.check_older_stores(5, 0x2000, 4), StoreCheck::Blocked);
    }

    #[test]
    fn youngest_matching_store_forwards() {
        let mut q = queue();
        q.push(entry(1, 0x2000, 4, 0xAA, true)).unwrap();
        q.push(entry(2, 0x2000, 4, 0xBB, true)).unwrap();
        assert_eq!(
            q.check_older_stores(5, 0x2000, 4),
            StoreCheck::Forward(0xBB)
        );
    }

    #[test]
    fn squash_rolls_back_tail() {
        let mut q = queue();
        q.push(entry(1, 0x2000, 4, 0, true)).unwrap();
        q.push(entry(5, 0x2004, 4, 0, true)).unwrap();
        q.push(entry(9, 0x2008, 4, 0, true)).unwrap();
        q.squash_younger(5);
        assert_eq!(q.len(), 2);
        let seqs: Vec<u64> = q.occupied().map(|i| q.payload(i).unwrap().seq).collect();
        assert_eq!(seqs, vec![1, 5]);
        // The freed slot is reusable.
        q.push(entry(6, 0x2010, 4, 0, true)).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn wraparound_allocation() {
        let mut q = queue();
        for k in 0..4 {
            q.push(entry(k, 0x2000 + k * 8, 4, 0, true)).unwrap();
        }
        assert!(q.is_full());
        q.pop_head();
        q.pop_head();
        q.push(entry(10, 0x3000, 4, 0, true)).unwrap();
        let seqs: Vec<u64> = q.occupied().map(|i| q.payload(i).unwrap().seq).collect();
        assert_eq!(seqs, vec![2, 3, 10]);
    }
}
