//! The out-of-order pipeline: fetch → rename/dispatch → issue → execute →
//! writeback → commit, with checkpointed branch-mispredict recovery.
//!
//! Architectural semantics are shared with the reference emulator through
//! [`softerr_isa::eval_alu`]/[`eval_branch`], and the differential test
//! suite requires fault-free runs to produce byte-identical output.
//!
//! [`eval_branch`]: softerr_isa::eval_branch

use crate::bpred::BranchPredictor;
use crate::config::MachineConfig;
use crate::counters::{CounterState, OccupancyHistogram, SimCounters};
use crate::iq::{IqPayload, IssueQueue};
use crate::lsq::{LsQueue, LsqLayout, LsqPayload, StoreCheck};
use crate::memsys::{MemErr, MemorySystem};
use crate::regs::{PhysReg, RegisterFile};
use crate::residency::{
    CoreResidency, LivenessMap, ResidencyReport, StructureLiveness, StructureResidency,
};
use crate::rob::{flag, Rob};
use crate::uop::{DestInfo, Uop, UopKind, UopState};
use crate::Structure;
use softerr_isa::{
    decode, eval_alu, eval_branch, AluOp, Instr, MemWidth, Profile, Program, Reg, Trap,
};
use std::collections::{HashMap, VecDeque};

/// Terminal state of a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimOutcome {
    /// The program executed `halt`.
    Halted {
        /// Total cycles.
        cycles: u64,
        /// Retired instructions.
        retired: u64,
        /// Program output stream.
        output: Vec<u64>,
    },
    /// A committed instruction raised an architectural fault (process/kernel
    /// crash in the paper's classification).
    Crash {
        /// Total cycles.
        cycles: u64,
        /// The fault.
        trap: Trap,
    },
    /// The simulator hit a state it cannot meaningfully continue from
    /// (corrupted linkage, out-of-map cache operation, …) — the paper's
    /// Assert class.
    Assert {
        /// Total cycles.
        cycles: u64,
        /// What was violated.
        reason: &'static str,
    },
    /// The cycle limit expired (the injector classifies this as Timeout).
    CycleLimit {
        /// Total cycles.
        cycles: u64,
    },
}

/// Aggregate execution statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub retired: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// L1I (hits, misses).
    pub l1i: (u64, u64),
    /// L1D (hits, misses).
    pub l1d: (u64, u64),
    /// L2 (hits, misses).
    pub l2: (u64, u64),
    /// Sum over cycles of allocated physical registers (utilization).
    pub rf_occupancy_sum: u64,
    /// Register-file read-port operations (source reads at issue).
    pub rf_reads: u64,
    /// Register-file write-port operations (results at writeback).
    pub rf_writes: u64,
    /// Sum over cycles of occupied ROB entries.
    pub rob_occupancy_sum: u64,
    /// Sum over cycles of occupied IQ entries.
    pub iq_occupancy_sum: u64,
    /// Sum over cycles of occupied LQ entries.
    pub lq_occupancy_sum: u64,
    /// Sum over cycles of occupied SQ entries.
    pub sq_occupancy_sum: u64,
}

/// The cycle-level out-of-order simulator.
#[derive(Debug, Clone)]
pub struct Sim {
    cfg: MachineConfig,
    profile: Profile,
    /// Memory hierarchy (public for injection and inspection).
    pub mem: MemorySystem,
    /// Physical register file and rename state.
    pub rf: RegisterFile,
    /// Reorder buffer.
    pub rob: Rob,
    /// Issue queue.
    pub iq: IssueQueue,
    /// Load queue.
    pub lq: LsQueue,
    /// Store queue.
    pub sq: LsQueue,
    bp: BranchPredictor,
    uops: Vec<Option<Uop>>,
    // Front end.
    fetch_pc: u64,
    fetch_stall: u64,
    fetch_wait: bool,
    decode_q: VecDeque<Uop>,
    next_seq: u64,
    // Back end.
    in_flight: Vec<usize>,
    wb_ready: VecDeque<usize>,
    divider_busy: u64,
    // Architectural results.
    output: Vec<u64>,
    cycle: u64,
    retired: u64,
    mispredicts: u64,
    rf_reads: u64,
    rf_writes: u64,
    stats_occupancy: [u64; 5],
    /// ACE residency tracker (golden runs only; excluded from
    /// [`Sim::state_eq`] — it observes execution without feeding back).
    residency: Option<Box<CoreResidency>>,
    /// Microarchitectural event counters (same observer contract as
    /// `residency`: optional, feedback-free, excluded from `state_eq`).
    counters: Option<Box<CounterState>>,
    /// Static writeback demand masks by instruction PC, from the
    /// compiler's bit-level analysis ([`Sim::attach_static_masks`]).
    /// Observational only: consulted by the residency tracker to tag RF
    /// danger windows, never fed back into execution; excluded from
    /// `state_eq` and not inherited by forks.
    wb_masks: Option<HashMap<u64, u64>>,
}

impl Sim {
    /// Creates a simulator with `program` loaded and the entry state
    /// established (SP at the stack top, PC at the entry point).
    ///
    /// # Panics
    ///
    /// Panics if the program's profile does not match the machine's.
    pub fn new(cfg: &MachineConfig, program: &Program) -> Sim {
        assert_eq!(
            cfg.profile, program.profile,
            "program compiled for a different profile than the machine"
        );
        let mem = MemorySystem::new(cfg, program.build_memory());
        let mut rf = RegisterFile::new(cfg.profile, cfg.phys_regs);
        let sp_phys = rf.spec_map[Reg::SP.index()];
        rf.write(sp_phys, program.stack_top());
        let layout = LsqLayout::for_profile(cfg.profile);
        Sim {
            profile: cfg.profile,
            mem,
            rf,
            rob: Rob::new(cfg.rob_entries, cfg.profile.xlen()),
            iq: IssueQueue::new(cfg.iq_entries),
            lq: LsQueue::new(cfg.lq_entries, layout),
            sq: LsQueue::new(cfg.sq_entries, layout),
            bp: BranchPredictor::new(),
            uops: vec![None; cfg.rob_entries],
            fetch_pc: program.entry,
            fetch_stall: 0,
            fetch_wait: false,
            decode_q: VecDeque::with_capacity(2 * cfg.fetch_width),
            next_seq: 1,
            in_flight: Vec::new(),
            wb_ready: VecDeque::new(),
            divider_busy: 0,
            output: Vec::new(),
            cycle: 0,
            retired: 0,
            mispredicts: 0,
            rf_reads: 0,
            rf_writes: 0,
            stats_occupancy: [0; 5],
            residency: None,
            counters: None,
            wb_masks: None,
            cfg: cfg.clone(),
        }
    }

    /// Attaches the program's static writeback demand masks so a liveness
    /// run can bound each RF danger window to the bits the compiler proved
    /// demanded ([`LivenessMap::is_vulnerable`]). Call alongside
    /// [`Sim::enable_liveness`]; a no-op for programs without annotations.
    pub fn attach_static_masks(&mut self, program: &Program) {
        if program.wb_masks.is_empty() {
            self.wb_masks = None;
            return;
        }
        let map: HashMap<u64, u64> = program
            .wb_masks
            .iter()
            .map(|&(idx, mask)| (program.entry + 4 * u64::from(idx), mask))
            .collect();
        self.wb_masks = Some(map);
    }

    /// Turns on ACE residency tracking for a golden run: every structure
    /// records write→last-read bit-liveness intervals, summarized by
    /// [`Sim::residency_report`]. Call before the first cycle. Tracking is
    /// observational only (no effect on execution), but costs time — leave
    /// it off for injection campaigns.
    pub fn enable_residency(&mut self) {
        let mut core = CoreResidency::new(self.rf.nphys());
        // Architecturally-mapped registers (including the zero register
        // and the initialized stack pointer) hold live state from cycle 0.
        for &tag in &self.rf.arch_map {
            core.rf_open(tag, 0);
        }
        self.residency = Some(Box::new(core));
        self.mem.enable_residency();
    }

    /// Like [`Sim::enable_residency`], but additionally records every
    /// closed per-entry interval so the run can be summarized as a
    /// [`Sim::liveness_map`] for campaign pruning. Call before the first
    /// cycle; costs memory proportional to the event count.
    pub fn enable_liveness(&mut self) {
        self.enable_residency();
        if let Some(t) = self.residency.as_deref_mut() {
            t.set_record_windows(true);
        }
        self.mem.record_liveness_windows();
    }

    /// Per-structure live-bit-cycle totals recorded since
    /// [`Sim::enable_residency`], or `None` if tracking was never enabled.
    /// Callable at any point; open intervals are closed at their last read.
    pub fn residency_report(&self) -> Option<ResidencyReport> {
        let core = self.residency.as_deref()?;
        let (rf, rob, rob_dest, iq, lq, sq) = core.totals();
        let (l1i, l1d, l2) = self.mem.residency_totals()?;
        // Entry-granular accounting: live-bit-cycles = entry-cycles × the
        // structure's bits-per-entry.
        let entries = |s: Structure| -> u64 {
            match s {
                Structure::L1IData | Structure::L1ITag => self.mem.l1i.geometry().lines() as u64,
                Structure::L1DData | Structure::L1DTag => self.mem.l1d.geometry().lines() as u64,
                Structure::L2Data | Structure::L2Tag => self.mem.l2.geometry().lines() as u64,
                Structure::RegFile => self.rf.nphys() as u64,
                Structure::LoadQueue => self.cfg.lq_entries as u64,
                Structure::StoreQueue => self.cfg.sq_entries as u64,
                Structure::IqSrc | Structure::IqDest => self.cfg.iq_entries as u64,
                Structure::RobPc | Structure::RobDest | Structure::RobSeq | Structure::RobFlags => {
                    self.cfg.rob_entries as u64
                }
            }
        };
        let acc = |s: Structure| -> u64 {
            match s {
                Structure::L1IData | Structure::L1ITag => l1i,
                Structure::L1DData | Structure::L1DTag => l1d,
                Structure::L2Data | Structure::L2Tag => l2,
                Structure::RegFile => rf,
                Structure::LoadQueue => lq,
                Structure::StoreQueue => sq,
                Structure::IqSrc | Structure::IqDest => iq,
                Structure::RobDest => rob_dest,
                Structure::RobPc | Structure::RobSeq | Structure::RobFlags => rob,
            }
        };
        let structures = Structure::ALL
            .iter()
            .map(|&s| {
                let bits = self.bit_count(s);
                StructureResidency {
                    structure: s,
                    bits,
                    live_bit_cycles: acc(s) * (bits / entries(s)),
                }
            })
            .collect();
        Some(ResidencyReport {
            cycles: self.cycle,
            structures,
        })
    }

    /// Assembles the per-entry danger windows recorded since
    /// [`Sim::enable_liveness`] into a queryable [`LivenessMap`] (the
    /// campaign prune filter), or `None` if liveness recording was never
    /// enabled. Callable at any point; still-open entries are closed
    /// conservatively (see `CoreResidency::live_windows`).
    pub fn liveness_map(&self) -> Option<LivenessMap> {
        let core = self.residency.as_deref()?;
        let cw = core.live_windows();
        let [l1i, l1d, l2] = self.mem.liveness_windows()?;
        let bpe = |bits: u64, entries: usize| {
            if entries == 0 {
                0
            } else {
                bits / entries as u64
            }
        };
        let structures = Structure::ALL
            .iter()
            .map(|&s| {
                let bits = self.bit_count(s);
                let (entries, windows, always_live_offset) = match s {
                    Structure::RegFile => (self.rf.nphys(), cw.rf.clone(), None),
                    Structure::LoadQueue => (self.cfg.lq_entries, cw.lq.clone(), None),
                    Structure::StoreQueue => (self.cfg.sq_entries, cw.sq.clone(), None),
                    Structure::IqSrc => (self.cfg.iq_entries, cw.iq.clone(), None),
                    // A flipped-on valid bit (the entry's last bit) makes a
                    // ghost entry out of a free slot, so it is dangerous at
                    // any cycle, occupancy notwithstanding.
                    Structure::IqDest => (
                        self.cfg.iq_entries,
                        cw.iq.clone(),
                        bpe(bits, self.cfg.iq_entries).checked_sub(1),
                    ),
                    Structure::RobPc
                    | Structure::RobDest
                    | Structure::RobSeq
                    | Structure::RobFlags => (self.cfg.rob_entries, cw.rob.clone(), None),
                    Structure::L1IData => (self.mem.l1i.geometry().lines(), l1i.0.clone(), None),
                    Structure::L1DData => (self.mem.l1d.geometry().lines(), l1d.0.clone(), None),
                    Structure::L2Data => (self.mem.l2.geometry().lines(), l2.0.clone(), None),
                    // Tag arrays: per-line layout is tag|valid|dirty, and a
                    // flipped-on valid bit resurrects a stale line.
                    Structure::L1ITag => (
                        self.mem.l1i.geometry().lines(),
                        l1i.1.clone(),
                        bpe(bits, self.mem.l1i.geometry().lines()).checked_sub(2),
                    ),
                    Structure::L1DTag => (
                        self.mem.l1d.geometry().lines(),
                        l1d.1.clone(),
                        bpe(bits, self.mem.l1d.geometry().lines()).checked_sub(2),
                    ),
                    Structure::L2Tag => (
                        self.mem.l2.geometry().lines(),
                        l2.1.clone(),
                        bpe(bits, self.mem.l2.geometry().lines()).checked_sub(2),
                    ),
                };
                let sl = StructureLiveness::new(s, bits, entries, always_live_offset, windows);
                if s == Structure::RegFile {
                    sl.with_masks(cw.rf_masks.clone())
                } else {
                    sl
                }
            })
            .collect();
        Some(LivenessMap::new(self.cycle, structures))
    }

    /// Turns on the microarchitectural event counters (stall cycles,
    /// squash activity, branch statistics, per-structure occupancy
    /// histograms). Like residency tracking this is observational only —
    /// it never feeds back into execution and is excluded from
    /// [`Sim::state_eq`] — and it is off by default so campaigns pay only
    /// one branch per cycle for it.
    pub fn enable_counters(&mut self) {
        self.counters = Some(Box::new(CounterState::new([
            self.cfg.phys_regs,
            self.cfg.rob_entries,
            self.cfg.iq_entries,
            self.cfg.lq_entries,
            self.cfg.sq_entries,
        ])));
    }

    /// Snapshot of the counters recorded since [`Sim::enable_counters`],
    /// or `None` if counting was never enabled.
    pub fn counters(&self) -> Option<SimCounters> {
        let c = self.counters.as_deref()?;
        const NAMES: [&str; 5] = ["regfile", "rob", "iq", "lq", "sq"];
        let capacities = [
            self.cfg.phys_regs,
            self.cfg.rob_entries,
            self.cfg.iq_entries,
            self.cfg.lq_entries,
            self.cfg.sq_entries,
        ];
        Some(SimCounters {
            cycles: self.cycle,
            committed: self.retired,
            fetch_stall_cycles: c.fetch_stall_cycles,
            issue_stall_cycles: c.issue_stall_cycles,
            commit_stall_cycles: c.commit_stall_cycles,
            squashes: c.squashes,
            squashed_uops: c.squashed_uops,
            branches: c.branches,
            mispredicts: self.mispredicts,
            occupancy: (0..5)
                .map(|i| OccupancyHistogram {
                    name: NAMES[i],
                    capacity: capacities[i],
                    counts: c.occupancy[i].clone(),
                })
                .collect(),
        })
    }

    /// Elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The PC the front end will fetch from next.
    pub fn fetch_pc(&self) -> u64 {
        self.fetch_pc
    }

    /// Committed instruction count.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Program output so far.
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> SimStats {
        SimStats {
            cycles: self.cycle,
            retired: self.retired,
            mispredicts: self.mispredicts,
            l1i: (self.mem.l1i.hits, self.mem.l1i.misses),
            l1d: (self.mem.l1d.hits, self.mem.l1d.misses),
            l2: (self.mem.l2.hits, self.mem.l2.misses),
            rf_occupancy_sum: self.stats_occupancy[0],
            rf_reads: self.rf_reads,
            rf_writes: self.rf_writes,
            rob_occupancy_sum: self.stats_occupancy[1],
            iq_occupancy_sum: self.stats_occupancy[2],
            lq_occupancy_sum: self.stats_occupancy[3],
            sq_occupancy_sum: self.stats_occupancy[4],
        }
    }

    /// Whether two simulators at the same cycle hold identical
    /// execution-relevant state, so that (by determinism) their futures are
    /// identical.
    ///
    /// Statistics counters (retired, mispredicts, port traffic, occupancy
    /// sums, cache hit/miss counts) and the emitted output stream are
    /// excluded: none of them feed back into execution. Callers deciding a
    /// fault's outcome compare [`Sim::output`] separately — equal state with
    /// equal output prefixes means the fault is fully masked, while equal
    /// state with diverged output means the final output must differ.
    ///
    /// Fields are compared cheapest-first so that actively diverged states
    /// (the common case while a fault is still live) return quickly.
    pub fn state_eq(&self, other: &Sim) -> bool {
        self.state_divergence(other).is_none()
    }

    /// Every component name [`Sim::state_divergence`] can return, in its
    /// exact probe order. Forensics records persist these names
    /// (`DivergenceSite.component`), so the list is part of the public
    /// contract: a golden-record test pins it, and any reordering or
    /// renaming of the probes below must show up here as a deliberate,
    /// visible change.
    pub const DIVERGENCE_COMPONENTS: [&'static str; 19] = [
        "cycle",
        "fetch.pc",
        "fetch.seq",
        "fetch.stall",
        "exec.divider",
        "exec.in_flight",
        "exec.wb_ready",
        "rf",
        "rob",
        "iq",
        "lq",
        "sq",
        "decode_q",
        "uops",
        "bpred",
        "mem.l1i",
        "mem.l1d",
        "mem.l2",
        "mem",
    ];

    /// Forks a child simulator for fault injection.
    ///
    /// Semantically identical to `clone()` for execution purposes, but
    /// cheap: the cache arrays and the register-file value bank live in
    /// copy-on-write chunked storage, so the fork shares every chunk with
    /// the parent and only writes made *after* the fork materialize private
    /// copies. A fork immediately dropped allocates O(1) chunk copies, not
    /// O(machine).
    ///
    /// Observational state that never feeds back into execution — the
    /// residency tracker and the event counters — is not inherited: a child
    /// exists to classify one fault, and dragging a multi-megabyte residency
    /// map through every fork would defeat the point. The output stream *is*
    /// kept, because convergence classification compares output prefixes.
    pub fn fork(&self) -> Sim {
        let mut child = self.clone();
        child.residency = None;
        child.counters = None;
        child.wb_masks = None;
        child.mem.clear_residency();
        child
    }

    /// Like [`Sim::state_eq`], but names the first execution-relevant
    /// component found to differ (`None` means the states are equal).
    ///
    /// Components are checked in the same cheapest-first order `state_eq`
    /// uses, so for a freshly injected fault the returned name is the
    /// faulted (or first directly corrupted) structure — the forensic
    /// "where did state first diverge" answer the injector records.
    /// The full name list, in probe order, is [`Sim::DIVERGENCE_COMPONENTS`].
    pub fn state_divergence(&self, other: &Sim) -> Option<&'static str> {
        if self.cycle != other.cycle {
            return Some("cycle");
        }
        if self.fetch_pc != other.fetch_pc {
            return Some("fetch.pc");
        }
        if self.next_seq != other.next_seq {
            return Some("fetch.seq");
        }
        if self.fetch_stall != other.fetch_stall || self.fetch_wait != other.fetch_wait {
            return Some("fetch.stall");
        }
        if self.divider_busy != other.divider_busy {
            return Some("exec.divider");
        }
        if self.in_flight != other.in_flight {
            return Some("exec.in_flight");
        }
        if self.wb_ready != other.wb_ready {
            return Some("exec.wb_ready");
        }
        if !self.rf.state_eq(&other.rf) {
            return Some("rf");
        }
        if self.rob != other.rob {
            return Some("rob");
        }
        if self.iq != other.iq {
            return Some("iq");
        }
        if self.lq != other.lq {
            return Some("lq");
        }
        if self.sq != other.sq {
            return Some("sq");
        }
        if self.decode_q != other.decode_q {
            return Some("decode_q");
        }
        if self.uops != other.uops {
            return Some("uops");
        }
        if self.bp != other.bp {
            return Some("bpred");
        }
        self.mem.divergence(&other.mem)
    }

    /// Every component currently differing from `other`, in
    /// [`Sim::DIVERGENCE_COMPONENTS`] probe order (empty = states equal).
    ///
    /// Where [`Sim::state_divergence`] stops at the first (cheapest)
    /// witness, this walks all 19 probes: propagation tracing samples the
    /// *set* of corrupted components over time, so it needs the exhaustive
    /// answer. Purely observational — it reads both simulators and mutates
    /// neither, so sampling can never perturb classification.
    pub fn divergent_components(&self, other: &Sim) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.cycle != other.cycle {
            out.push("cycle");
        }
        if self.fetch_pc != other.fetch_pc {
            out.push("fetch.pc");
        }
        if self.next_seq != other.next_seq {
            out.push("fetch.seq");
        }
        if self.fetch_stall != other.fetch_stall || self.fetch_wait != other.fetch_wait {
            out.push("fetch.stall");
        }
        if self.divider_busy != other.divider_busy {
            out.push("exec.divider");
        }
        if self.in_flight != other.in_flight {
            out.push("exec.in_flight");
        }
        if self.wb_ready != other.wb_ready {
            out.push("exec.wb_ready");
        }
        if !self.rf.state_eq(&other.rf) {
            out.push("rf");
        }
        if self.rob != other.rob {
            out.push("rob");
        }
        if self.iq != other.iq {
            out.push("iq");
        }
        if self.lq != other.lq {
            out.push("lq");
        }
        if self.sq != other.sq {
            out.push("sq");
        }
        if self.decode_q != other.decode_q {
            out.push("decode_q");
        }
        if self.uops != other.uops {
            out.push("uops");
        }
        if self.bp != other.bp {
            out.push("bpred");
        }
        self.mem.divergent_components(&other.mem, &mut out);
        out
    }

    /// Runs until the program ends or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> SimOutcome {
        while self.cycle < max_cycles {
            if let Err(end) = self.step_cycle() {
                return end;
            }
        }
        SimOutcome::CycleLimit { cycles: self.cycle }
    }

    /// Runs until the cycle counter reaches `target` (for positioning an
    /// injection); returns early with the outcome if the program ends first.
    pub fn run_to_cycle(&mut self, target: u64) -> Option<SimOutcome> {
        while self.cycle < target {
            if let Err(end) = self.step_cycle() {
                return Some(end);
            }
        }
        None
    }

    /// Advances one cycle.
    ///
    /// # Errors
    ///
    /// The terminal [`SimOutcome`] when the program ends this cycle.
    pub fn step_cycle(&mut self) -> Result<(), SimOutcome> {
        if self.residency.is_some() {
            self.mem.set_clock(self.cycle);
        }
        if self.counters.is_none() {
            self.commit()?;
            self.execute()?;
            self.writeback()?;
            self.issue()?;
            self.rename()?;
            self.fetch()?;
        } else {
            self.step_stages_counted()?;
        }
        self.cycle += 1;
        let occupancy = [
            self.rf.allocated_count(),
            self.rob.len(),
            self.iq.len(),
            self.lq.len(),
            self.sq.len(),
        ];
        for (sum, occ) in self.stats_occupancy.iter_mut().zip(occupancy) {
            *sum += occ as u64;
        }
        if let Some(c) = self.counters.as_deref_mut() {
            for (hist, occ) in c.occupancy.iter_mut().zip(occupancy) {
                hist[occ] += 1;
            }
        }
        Ok(())
    }

    /// The stage sequence with before/after probes for the stall counters.
    /// Kept out of [`Sim::step_cycle`]'s counters-off path so campaigns pay
    /// only one branch per cycle when counting is disabled.
    fn step_stages_counted(&mut self) -> Result<(), SimOutcome> {
        let retired_before = self.retired;
        let rob_waiting = !self.rob.is_empty();
        self.commit()?;
        let commit_stalled = rob_waiting && self.retired == retired_before;
        self.execute()?;
        self.writeback()?;
        // Probed after execute so a squash's IQ cleanup is not mistaken
        // for issued work.
        let iq_before = self.iq.len();
        self.issue()?;
        let issue_stalled = iq_before > 0 && self.iq.len() == iq_before;
        self.rename()?;
        // Rename has already drained its share, so any growth is fetch's.
        let decoded_before = self.decode_q.len();
        self.fetch()?;
        let fetch_stalled = self.decode_q.len() == decoded_before;
        let c = self.counters.as_deref_mut().expect("counters enabled");
        c.commit_stall_cycles += commit_stalled as u64;
        c.issue_stall_cycles += issue_stalled as u64;
        c.fetch_stall_cycles += fetch_stalled as u64;
        Ok(())
    }

    fn assert_stop(&self, reason: &'static str) -> SimOutcome {
        SimOutcome::Assert {
            cycles: self.cycle,
            reason,
        }
    }

    // ----------------------------------------------------------- commit --

    fn commit(&mut self) -> Result<(), SimOutcome> {
        for _ in 0..self.cfg.commit_width {
            if self.rob.is_empty() {
                return Ok(());
            }
            let idx = self.rob.head();
            let flags = self.rob.flags_of(idx);
            if flags & flag::VALID == 0 {
                return Err(self.assert_stop("invalid ROB entry at commit head"));
            }
            if flags & flag::DONE == 0 {
                return Ok(()); // head not finished yet (or DONE flag lost → timeout)
            }
            let Some(uop) = self.uops[idx].as_ref() else {
                return Err(self.assert_stop("ROB entry without a dispatched instruction"));
            };
            if uop.state != UopState::Done {
                return Err(self.assert_stop("DONE flag set on an incomplete instruction"));
            }
            // Cross-check every injectable field against the payload.
            if self.rob.seq_of(idx) != uop.seq as u16 {
                return Err(self.assert_stop("ROB sequence field corrupted"));
            }
            if self.rob.pc_of(idx) != self.rob.mask_pc(uop.pc) {
                return Err(self.assert_stop("ROB PC field corrupted"));
            }
            let mut expected = flag::VALID | flag::DONE;
            match uop.kind {
                UopKind::Branch => expected |= flag::BRANCH,
                UopKind::Store => expected |= flag::STORE,
                UopKind::Out => expected |= flag::OUT,
                UopKind::Halt => expected |= flag::HALT,
                UopKind::Alu | UopKind::Load | UopKind::Poisoned => {}
            }
            if uop.exception.is_some() {
                expected |= flag::EXCEPTION;
            }
            if uop.dest.is_some() {
                expected |= flag::HAS_DEST;
            }
            if flags != expected {
                return Err(self.assert_stop("ROB flags field corrupted"));
            }
            if let Some(d) = uop.dest {
                if self.rob.dest_of(idx) != (d.arch, d.phys, d.old) {
                    return Err(self.assert_stop("ROB destination field corrupted"));
                }
            }

            // Architectural effects (payload verified equal to fields).
            let uop = self.uops[idx].take().expect("checked above");
            if let Some(trap) = uop.exception {
                return Err(SimOutcome::Crash {
                    cycles: self.cycle,
                    trap,
                });
            }
            match uop.kind {
                UopKind::Store => {
                    let h = self.sq.head();
                    if self.sq.is_empty() {
                        return Err(self.assert_stop("store commit with empty store queue"));
                    }
                    if let Err(m) = self.sq.check(h, "SQ entry corrupted at commit") {
                        return Err(self.assert_stop(m));
                    }
                    let p = *self.sq.payload(h).expect("checked");
                    if p.seq != uop.seq || !p.addr_known {
                        return Err(self.assert_stop("store queue commit order broken"));
                    }
                    match self.mem.write(p.addr, p.size, p.data) {
                        Ok(_) => {}
                        Err(MemErr::Arch(f)) => {
                            return Err(SimOutcome::Crash {
                                cycles: self.cycle,
                                trap: Trap::Mem(f),
                            })
                        }
                        Err(MemErr::Assert(m)) => return Err(self.assert_stop(m)),
                    }
                    self.sq.pop_head();
                    let cycle = self.cycle;
                    if let Some(t) = self.residency.as_deref_mut() {
                        t.sq_pop(uop.seq, cycle);
                    }
                }
                UopKind::Load => {
                    let h = self.lq.head();
                    if self.lq.is_empty() {
                        return Err(self.assert_stop("load commit with empty load queue"));
                    }
                    if let Err(m) = self.lq.check(h, "LQ entry corrupted at commit") {
                        return Err(self.assert_stop(m));
                    }
                    let p = *self.lq.payload(h).expect("checked");
                    if p.seq != uop.seq {
                        return Err(self.assert_stop("load queue commit order broken"));
                    }
                    self.lq.pop_head();
                    let cycle = self.cycle;
                    if let Some(t) = self.residency.as_deref_mut() {
                        t.lq_pop(uop.seq, cycle);
                    }
                }
                UopKind::Out => self.output.push(self.profile.mask(uop.result)),
                UopKind::Halt => {
                    return Err(SimOutcome::Halted {
                        cycles: self.cycle,
                        retired: self.retired + 1,
                        output: self.output.clone(),
                    });
                }
                UopKind::Branch => {
                    if let Some(c) = self.counters.as_deref_mut() {
                        c.branches += 1;
                    }
                }
                UopKind::Alu | UopKind::Poisoned => {}
            }
            if let Some(d) = uop.dest {
                if self.rf.arch_map[d.arch as usize] != d.old {
                    return Err(self.assert_stop("retirement rename linkage broken"));
                }
                self.rf.arch_map[d.arch as usize] = d.phys;
                if let Err(m) = self.rf.free(d.old) {
                    return Err(self.assert_stop(m));
                }
                if let Some(t) = self.residency.as_deref_mut() {
                    t.rf_free(d.old);
                }
            }
            self.rob.pop_head();
            let cycle = self.cycle;
            if let Some(t) = self.residency.as_deref_mut() {
                t.rob_pop(uop.seq, cycle);
            }
            self.retired += 1;
        }
        Ok(())
    }

    // -------------------------------------------------------- writeback --

    fn writeback(&mut self) -> Result<(), SimOutcome> {
        for _ in 0..self.cfg.writeback_width {
            let Some(idx) = self.wb_ready.pop_front() else {
                return Ok(());
            };
            let Some(uop) = self.uops[idx].as_mut() else {
                continue; // squashed while waiting
            };
            if uop.dest.is_some() && uop.exception.is_none() {
                let tag = uop.issued_dest_tag;
                if !self.rf.tag_valid(tag) {
                    return Err(self.assert_stop("writeback to out-of-range register"));
                }
                let value = uop.result;
                self.rf.write(tag, value);
                self.rf.set_ready(tag, true);
                self.rf_writes += 1;
                self.iq.broadcast(tag);
                let cycle = self.cycle;
                let pc = uop.pc;
                if let Some(t) = self.residency.as_deref_mut() {
                    let mask = self
                        .wb_masks
                        .as_ref()
                        .and_then(|m| m.get(&pc))
                        .copied()
                        .unwrap_or(!0);
                    t.rf_write(tag, cycle, mask);
                }
            }
            uop.state = UopState::Done;
            self.rob.set_done(idx);
            if self.uops[idx]
                .as_ref()
                .is_some_and(|u| u.exception.is_some())
            {
                self.rob.set_exception(idx);
            }
        }
        Ok(())
    }

    // ---------------------------------------------------------- execute --

    fn execute(&mut self) -> Result<(), SimOutcome> {
        if self.divider_busy > 0 {
            self.divider_busy -= 1;
        }
        let mut mispredict: Option<(u64, usize, u64)> = None; // (seq, rob, target)
        let in_flight = std::mem::take(&mut self.in_flight);
        let mut still = Vec::with_capacity(in_flight.len());
        for idx in in_flight {
            let Some(state) = self.uops[idx].as_ref().map(|u| u.state) else {
                continue; // squashed
            };
            match state {
                UopState::Executing { left } | UopState::MemAccess { left } if left > 1 => {
                    let uop = self.uops[idx].as_mut().expect("alive");
                    uop.state = match state {
                        UopState::Executing { .. } => UopState::Executing { left: left - 1 },
                        _ => UopState::MemAccess { left: left - 1 },
                    };
                    still.push(idx);
                }
                UopState::MemAccess { .. } => {
                    // Cache access finished; result is already captured.
                    self.wb_ready.push_back(idx);
                }
                UopState::Executing { .. } => {
                    // Functional completion this cycle.
                    match self.finish_execute(idx)? {
                        FinishAction::Complete => self.wb_ready.push_back(idx),
                        FinishAction::WaitMem => still.push(idx),
                        FinishAction::Mispredict(target) => {
                            let seq = self.uops[idx].as_ref().expect("alive").seq;
                            self.wb_ready.push_back(idx);
                            if mispredict.is_none_or(|(s, _, _)| seq < s) {
                                mispredict = Some((seq, idx, target));
                            }
                        }
                    }
                }
                UopState::WaitMemOrder => {
                    if self.try_load_access(idx)? {
                        still.push(idx); // accessing or still blocked
                    } else {
                        self.wb_ready.push_back(idx);
                    }
                }
                other => unreachable!("in-flight uop in state {other:?}"),
            }
        }
        self.in_flight = still;
        if let Some((seq, rob_idx, target)) = mispredict {
            self.squash(seq, rob_idx, target)?;
        }
        Ok(())
    }

    /// Completes execution of `idx`. Returns what to do next.
    fn finish_execute(&mut self, idx: usize) -> Result<FinishAction, SimOutcome> {
        let profile = self.profile;
        let uop = self.uops[idx].as_mut().expect("alive");
        let pc = uop.pc;
        let instr = uop.instr.expect("non-poisoned");
        match instr {
            Instr::Alu { op, .. } => {
                uop.result = eval_alu(profile, op, uop.val1, uop.val2);
                Ok(FinishAction::Complete)
            }
            Instr::AluImm { op, imm, .. } => {
                uop.result = eval_alu(profile, op, uop.val1, imm as i64 as u64);
                Ok(FinishAction::Complete)
            }
            Instr::Lui { imm, .. } => {
                uop.result = profile.mask(((imm as i64) << 13) as u64);
                Ok(FinishAction::Complete)
            }
            Instr::Load {
                width,
                signed,
                offset,
                ..
            } => {
                let addr = profile.mask(uop.val1.wrapping_add(offset as i64 as u64));
                uop.mem_addr = addr;
                uop.mem_size = width.bytes();
                uop.mem_signed = signed;
                uop.addr_known = true;
                if let Err(f) = self.mem.arch_check(addr, width.bytes()) {
                    uop.exception = Some(Trap::Mem(f));
                    return Ok(FinishAction::Complete);
                }
                let lsq_idx = uop.lsq_idx.expect("load has an LQ slot");
                if let Err(m) = self
                    .lq
                    .check(lsq_idx, "LQ entry corrupted at address generation")
                {
                    return Err(self.assert_stop(m));
                }
                let p = self.lq.payload_mut(lsq_idx).expect("checked");
                p.addr = addr;
                p.size = width.bytes();
                p.addr_known = true;
                let uop = self.uops[idx].as_mut().expect("alive");
                uop.state = UopState::WaitMemOrder;
                // Try to access immediately (may already be orderable).
                if self.try_load_access(idx)? {
                    Ok(FinishAction::WaitMem)
                } else {
                    Ok(FinishAction::Complete)
                }
            }
            Instr::Store { width, offset, .. } => {
                let addr = profile.mask(uop.val1.wrapping_add(offset as i64 as u64));
                let data = uop.val2;
                uop.mem_addr = addr;
                uop.mem_size = width.bytes();
                uop.addr_known = true;
                if let Err(f) = self.mem.arch_check(addr, width.bytes()) {
                    uop.exception = Some(Trap::Mem(f));
                    return Ok(FinishAction::Complete);
                }
                let lsq_idx = uop.lsq_idx.expect("store has an SQ slot");
                if let Err(m) = self
                    .sq
                    .check(lsq_idx, "SQ entry corrupted at address generation")
                {
                    return Err(self.assert_stop(m));
                }
                let p = self.sq.payload_mut(lsq_idx).expect("checked");
                p.addr = addr;
                p.size = width.bytes();
                p.data = data;
                p.addr_known = true;
                Ok(FinishAction::Complete)
            }
            Instr::Branch { cond, offset, .. } => {
                let taken = eval_branch(profile, cond, uop.val1, uop.val2);
                let target = if taken {
                    pc.wrapping_add((offset as i64 as u64).wrapping_mul(4))
                } else {
                    pc.wrapping_add(4)
                };
                let target = profile.mask(target);
                uop.actual_next = target;
                let pred = uop.pred_next;
                self.bp.update_taken(pc, taken);
                if pred != target {
                    Ok(FinishAction::Mispredict(target))
                } else {
                    Ok(FinishAction::Complete)
                }
            }
            Instr::Jal { offset, .. } => {
                let target = profile.mask(pc.wrapping_add((offset as i64 as u64).wrapping_mul(4)));
                uop.result = profile.mask(pc.wrapping_add(4));
                uop.actual_next = target;
                if uop.pred_next != target {
                    Ok(FinishAction::Mispredict(target))
                } else {
                    Ok(FinishAction::Complete)
                }
            }
            Instr::Jalr { offset, .. } => {
                let target = profile.mask(uop.val1.wrapping_add(offset as i64 as u64));
                uop.result = profile.mask(pc.wrapping_add(4));
                uop.actual_next = target;
                let pred = uop.pred_next;
                self.bp.update_indirect(pc, target);
                if pred != target {
                    Ok(FinishAction::Mispredict(target))
                } else {
                    Ok(FinishAction::Complete)
                }
            }
            Instr::Out { .. } => {
                uop.result = uop.val1;
                Ok(FinishAction::Complete)
            }
            Instr::Halt => Ok(FinishAction::Complete),
        }
    }

    /// Progress a load waiting on memory ordering. Returns `true` if it is
    /// still in flight, `false` if it completed (ready for writeback).
    fn try_load_access(&mut self, idx: usize) -> Result<bool, SimOutcome> {
        let uop = self.uops[idx].as_ref().expect("alive");
        let (seq, addr, size, signed) = (uop.seq, uop.mem_addr, uop.mem_size, uop.mem_signed);
        match self.sq.check_older_stores(seq, addr, size) {
            StoreCheck::Blocked => Ok(true),
            StoreCheck::Forward(data) => {
                let uop = self.uops[idx].as_mut().expect("alive");
                uop.result = extend_load(self.profile, data, size, signed);
                uop.state = UopState::WaitWriteback;
                Ok(false)
            }
            StoreCheck::Clear => match self.mem.read(addr, size) {
                Ok((raw, lat)) => {
                    let uop = self.uops[idx].as_mut().expect("alive");
                    uop.result = extend_load(self.profile, raw, size, signed);
                    if lat <= 1 {
                        uop.state = UopState::WaitWriteback;
                        Ok(false)
                    } else {
                        uop.state = UopState::MemAccess { left: lat - 1 };
                        Ok(true)
                    }
                }
                Err(MemErr::Arch(f)) => {
                    let uop = self.uops[idx].as_mut().expect("alive");
                    uop.exception = Some(Trap::Mem(f));
                    uop.state = UopState::WaitWriteback;
                    Ok(false)
                }
                Err(MemErr::Assert(m)) => Err(self.assert_stop(m)),
            },
        }
    }

    // ------------------------------------------------------------ issue --

    fn issue(&mut self) -> Result<(), SimOutcome> {
        let ready = match self.iq.ready_entries() {
            Ok(r) => r,
            Err(m) => return Err(self.assert_stop(m)),
        };
        let mut issued = 0;
        let mut mem_issued = 0;
        for slot in ready {
            if issued == self.cfg.issue_width {
                break;
            }
            let p = *self.iq.payload(slot).expect("ready entries have payloads");
            let Some(uop) = self.uops[p.rob_idx].as_ref() else {
                return Err(self.assert_stop("IQ entry linked to an empty ROB slot"));
            };
            if uop.seq != p.seq {
                return Err(self.assert_stop("IQ linkage broken"));
            }
            // Structural hazards.
            let is_mem = matches!(uop.kind, UopKind::Load | UopKind::Store);
            if is_mem && mem_issued == 2 {
                continue;
            }
            let is_div = matches!(
                uop.instr,
                Some(Instr::Alu {
                    op: AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu,
                    ..
                })
            );
            if is_div && self.divider_busy > 0 {
                continue;
            }
            // Cross-check the injectable fields against the rename payload.
            let (s1, s2, d) = self.iq.stored_tags(slot);
            if (p.has_src1 && s1 != p.golden_src1) || (p.has_src2 && s2 != p.golden_src2) {
                return Err(self.assert_stop("IQ source field corrupted"));
            }
            if d != p.golden_dest {
                return Err(self.assert_stop("IQ destination field corrupted"));
            }
            let v1 = if p.has_src1 {
                self.rf_reads += 1;
                self.rf.read(s1)
            } else {
                0
            };
            let v2 = if p.has_src2 {
                self.rf_reads += 1;
                self.rf.read(s2)
            } else {
                0
            };
            let cycle = self.cycle;
            if let Some(t) = self.residency.as_deref_mut() {
                if p.has_src1 {
                    t.rf_read(s1, cycle);
                }
                if p.has_src2 {
                    t.rf_read(s2, cycle);
                }
                t.iq_remove(p.seq, cycle);
            }
            let latency = self.latency_of(p.rob_idx);
            if is_div {
                self.divider_busy = latency;
            }
            let uop = self.uops[p.rob_idx].as_mut().expect("alive");
            uop.val1 = v1;
            uop.val2 = v2;
            uop.issued_dest_tag = d;
            uop.state = UopState::Executing { left: latency };
            self.in_flight.push(p.rob_idx);
            self.iq.remove(slot);
            issued += 1;
            if is_mem {
                mem_issued += 1;
            }
        }
        Ok(())
    }

    fn latency_of(&self, rob_idx: usize) -> u64 {
        let uop = self.uops[rob_idx].as_ref().expect("alive");
        match uop.instr {
            Some(Instr::Alu { op: AluOp::Mul, .. }) => 4,
            Some(Instr::Alu {
                op: AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu,
                ..
            }) => 12,
            // Loads and stores take one AGU cycle before the cache access.
            _ => 1,
        }
    }

    // ------------------------------------------------- rename / dispatch --

    fn rename(&mut self) -> Result<(), SimOutcome> {
        for _ in 0..self.cfg.fetch_width {
            let Some(front) = self.decode_q.front() else {
                return Ok(());
            };
            if self.rob.is_full() {
                return Ok(());
            }
            let kind = front.kind;
            if kind != UopKind::Poisoned && !self.iq.has_free_slot() {
                return Ok(());
            }
            if kind == UopKind::Load && self.lq.is_full() {
                return Ok(());
            }
            if kind == UopKind::Store && self.sq.is_full() {
                return Ok(());
            }
            let needs_dest = front.instr.and_then(|i| i.dest()).is_some();
            if needs_dest && self.rf.free_count() == 0 {
                return Ok(());
            }

            let mut uop = self.decode_q.pop_front().expect("peeked");
            uop.seq = self.next_seq;
            self.next_seq += 1;

            // Rename sources.
            let (mut has1, mut has2) = (false, false);
            let (mut g1, mut g2) = (0 as PhysReg, 0 as PhysReg);
            if let Some(instr) = uop.instr {
                let (s1, s2) = instr.sources();
                if let Some(r) = s1 {
                    has1 = true;
                    g1 = self.rf.spec_map[r.index()];
                    uop.src1 = Some(g1);
                }
                if let Some(r) = s2 {
                    has2 = true;
                    g2 = self.rf.spec_map[r.index()];
                    uop.src2 = Some(g2);
                }
                if let Some(rd) = instr.dest() {
                    let Some(phys) = self.rf.alloc() else {
                        return Err(self.assert_stop("rename without a free physical register"));
                    };
                    let old = self.rf.spec_map[rd.index()];
                    self.rf.spec_map[rd.index()] = phys;
                    uop.dest = Some(DestInfo {
                        arch: rd.index() as u8,
                        phys,
                        old,
                    });
                }
            }
            if kind == UopKind::Branch {
                uop.checkpoint = Some(self.rf.checkpoint());
            }

            // ROB entry.
            let mut flag_bits = 0u8;
            match kind {
                UopKind::Branch => flag_bits |= flag::BRANCH,
                UopKind::Store => flag_bits |= flag::STORE,
                UopKind::Out => flag_bits |= flag::OUT,
                UopKind::Halt => flag_bits |= flag::HALT,
                _ => {}
            }
            if uop.exception.is_some() {
                flag_bits |= flag::EXCEPTION;
            }
            let dest_triple = uop.dest.map(|d| (d.arch, d.phys, d.old));
            let Some(rob_idx) = self.rob.push(uop.pc, uop.seq, dest_triple, flag_bits) else {
                // Unreachable through the is_full guard above unless a
                // fault corrupted the capacity bookkeeping: an Assert, not
                // a panic — campaigns must survive it under panic="abort".
                return Err(self.assert_stop("ROB overflow at dispatch"));
            };
            uop.rob_idx = rob_idx;
            let cycle = self.cycle;
            if let Some(t) = self.residency.as_deref_mut() {
                t.rob_push(uop.seq, rob_idx, dest_triple.is_some(), cycle);
            }

            if kind == UopKind::Poisoned {
                uop.state = UopState::Done;
                self.rob.set_done(rob_idx);
                self.uops[rob_idx] = Some(uop);
                continue;
            }

            // LSQ entries.
            if kind == UopKind::Load {
                let tag = uop.dest.map_or(0, |d| d.phys);
                let Some(lq_idx) = self.lq.push(LsqPayload {
                    seq: uop.seq,
                    rob_idx,
                    tag,
                    addr: 0,
                    size: 0,
                    data: 0,
                    addr_known: false,
                }) else {
                    return Err(self.assert_stop("load queue overflow at dispatch"));
                };
                uop.lsq_idx = Some(lq_idx);
                if let Some(t) = self.residency.as_deref_mut() {
                    t.lq_push(uop.seq, lq_idx, cycle);
                }
            }
            if kind == UopKind::Store {
                let Some(sq_idx) = self.sq.push(LsqPayload {
                    seq: uop.seq,
                    rob_idx,
                    tag: g2,
                    addr: 0,
                    size: 0,
                    data: 0,
                    addr_known: false,
                }) else {
                    return Err(self.assert_stop("store queue overflow at dispatch"));
                };
                uop.lsq_idx = Some(sq_idx);
                if let Some(t) = self.residency.as_deref_mut() {
                    t.sq_push(uop.seq, sq_idx, cycle);
                }
            }

            // IQ entry.
            let payload = IqPayload {
                rob_idx,
                seq: uop.seq,
                has_src1: has1,
                has_src2: has2,
                golden_src1: g1,
                golden_src2: g2,
                golden_dest: uop.dest.map_or(0, |d| d.phys),
            };
            let r1 = !has1 || self.rf.is_ready(g1);
            let r2 = !has2 || self.rf.is_ready(g2);
            let Some(iq_slot) = self.iq.insert(payload, r1, r2) else {
                return Err(self.assert_stop("IQ overflow at dispatch"));
            };
            if let Some(t) = self.residency.as_deref_mut() {
                t.iq_insert(uop.seq, iq_slot, cycle);
            }
            self.uops[rob_idx] = Some(uop);
        }
        Ok(())
    }

    // ------------------------------------------------------------ fetch --

    fn fetch(&mut self) -> Result<(), SimOutcome> {
        if self.fetch_wait {
            return Ok(());
        }
        if self.fetch_stall > 0 {
            self.fetch_stall -= 1;
            return Ok(());
        }
        for _ in 0..self.cfg.fetch_width {
            if self.decode_q.len() >= 2 * self.cfg.fetch_width {
                return Ok(());
            }
            let pc = self.fetch_pc;
            let (word, lat) = match self.mem.fetch(pc) {
                Ok(w) => w,
                Err(MemErr::Arch(f)) => {
                    self.decode_q
                        .push_back(Uop::new(0, pc, None, Some(Trap::Mem(f))));
                    self.fetch_wait = true;
                    return Ok(());
                }
                Err(MemErr::Assert(m)) => return Err(self.assert_stop(m)),
            };
            if lat > self.cfg.l1_latency {
                // Miss: charge the fill delay before this word is consumed.
                self.fetch_stall = lat - 1;
            }
            let instr = match decode(word) {
                Ok(i) if self.instr_valid_for_profile(i) => i,
                _ => {
                    self.decode_q.push_back(Uop::new(
                        0,
                        pc,
                        None,
                        Some(Trap::InvalidInstr { pc, word }),
                    ));
                    self.fetch_wait = true;
                    return Ok(());
                }
            };
            let mut uop = Uop::new(0, pc, Some(instr), None);
            let next = self.predict_next(pc, instr);
            uop.pred_next = next;
            self.decode_q.push_back(uop);
            if instr == Instr::Halt {
                self.fetch_wait = true;
                return Ok(());
            }
            self.fetch_pc = next;
            if self.fetch_stall > 0 {
                return Ok(()); // I-cache miss consumed the rest of the cycle
            }
            if next != pc.wrapping_add(4) {
                return Ok(()); // predicted-taken control flow ends the fetch group
            }
        }
        Ok(())
    }

    fn instr_valid_for_profile(&self, instr: Instr) -> bool {
        let n = self.profile.nregs();
        let (s1, s2) = instr.sources();
        let regs_ok = instr.dest().is_none_or(|d| d.valid_for(n))
            && s1.is_none_or(|r| r.valid_for(n))
            && s2.is_none_or(|r| r.valid_for(n));
        let width_ok = !(self.profile == Profile::A32
            && matches!(
                instr,
                Instr::Load {
                    width: MemWidth::D,
                    ..
                } | Instr::Store {
                    width: MemWidth::D,
                    ..
                }
            ));
        regs_ok && width_ok
    }

    fn predict_next(&mut self, pc: u64, instr: Instr) -> u64 {
        let next = match instr {
            Instr::Branch { offset, .. } => {
                if self.bp.predict_taken(pc) {
                    pc.wrapping_add((offset as i64 as u64).wrapping_mul(4))
                } else {
                    pc.wrapping_add(4)
                }
            }
            Instr::Jal { rd, offset } => {
                if rd == Reg::RA {
                    self.bp.push_return(pc.wrapping_add(4));
                }
                pc.wrapping_add((offset as i64 as u64).wrapping_mul(4))
            }
            Instr::Jalr { rd, base, .. } => {
                if rd == Reg::ZERO && base == Reg::RA {
                    self.bp.pop_return()
                } else {
                    if rd == Reg::RA {
                        self.bp.push_return(pc.wrapping_add(4));
                    }
                    self.bp.predict_indirect(pc).unwrap_or(pc.wrapping_add(4))
                }
            }
            Instr::Halt => pc,
            _ => pc.wrapping_add(4),
        };
        self.profile.mask(next)
    }

    // ----------------------------------------------------------- squash --

    fn squash(
        &mut self,
        boundary_seq: u64,
        branch_rob_idx: usize,
        redirect: u64,
    ) -> Result<(), SimOutcome> {
        // Roll the ROB tail back over every younger instruction.
        let mut discarded: u64 = 0;
        while !self.rob.is_empty() {
            let tail_idx = {
                // Peek the youngest entry via its payload.
                let last = self.rob.occupied().last().expect("non-empty");
                last
            };
            let Some(u) = self.uops[tail_idx].as_ref() else {
                return Err(self.assert_stop("ROB tail entry without payload during squash"));
            };
            if u.seq <= boundary_seq {
                break;
            }
            self.uops[tail_idx] = None;
            self.rob.pop_tail();
            discarded += 1;
        }
        if let Some(c) = self.counters.as_deref_mut() {
            c.squashes += 1;
            c.squashed_uops += discarded;
        }
        self.iq.squash_younger(boundary_seq);
        self.lq.squash_younger(boundary_seq);
        self.sq.squash_younger(boundary_seq);
        let alive = |uops: &Vec<Option<Uop>>, idx: &usize| -> bool {
            uops[*idx].as_ref().is_some_and(|u| u.seq <= boundary_seq)
        };
        self.in_flight.retain(|idx| alive(&self.uops, idx));
        self.wb_ready.retain(|idx| alive(&self.uops, idx));
        self.decode_q.clear();

        // Rename recovery from the branch's checkpoint.
        let checkpoint = self.uops[branch_rob_idx]
            .as_ref()
            .and_then(|u| u.checkpoint.clone())
            .expect("branches carry a rename checkpoint");
        let dests: Vec<PhysReg> = self
            .rob
            .occupied()
            .filter_map(|i| self.uops[i].as_ref())
            .filter_map(|u| u.dest.map(|d| d.phys))
            .collect();
        self.rf.recover(&checkpoint, &dests);
        let cycle = self.cycle;
        if let Some(t) = self.residency.as_deref_mut() {
            t.squash_queues(boundary_seq, cycle);
            t.rf_sync_freed(&self.rf);
        }

        self.fetch_pc = redirect;
        self.fetch_wait = false;
        self.fetch_stall = 3; // front-end redirect penalty
        self.mispredicts += 1;
        Ok(())
    }
}

enum FinishAction {
    Complete,
    WaitMem,
    Mispredict(u64),
}

/// Applies load extension semantics (shared with the emulator's rules).
fn extend_load(profile: Profile, raw: u64, size: u64, signed: bool) -> u64 {
    let v = if signed {
        match size {
            1 => raw as u8 as i8 as i64 as u64,
            4 => raw as u32 as i32 as i64 as u64,
            _ => raw,
        }
    } else {
        raw
    };
    profile.mask(v)
}
