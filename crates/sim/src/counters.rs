//! Microarchitectural event counters.
//!
//! The paper's AVF numbers only make sense next to the microarchitectural
//! behaviour that produced them (occupancy drives exposure, stalls drive
//! residency), so the simulator can optionally record a set of gem5-style
//! counters: committed instructions, stall cycles per pipeline end,
//! squash activity, branch statistics, and per-structure occupancy
//! histograms.
//!
//! Counting follows the residency-tracker pattern: off by default, enabled
//! with [`crate::Sim::enable_counters`], purely observational (never feeds
//! back into execution, excluded from [`crate::Sim::state_eq`]), and
//! costing one branch per cycle when disabled so that injection campaigns
//! keep their throughput.

/// Internal accumulation state, boxed inside the simulator when counting
/// is enabled.
#[derive(Debug, Clone)]
pub(crate) struct CounterState {
    /// Cycles where fetch delivered no micro-op into the decode queue.
    pub fetch_stall_cycles: u64,
    /// Cycles where the issue queue held work but nothing issued.
    pub issue_stall_cycles: u64,
    /// Cycles where the ROB held work but nothing committed.
    pub commit_stall_cycles: u64,
    /// Pipeline flushes (branch-mispredict recoveries).
    pub squashes: u64,
    /// Renamed, un-committed micro-ops discarded by those recoveries.
    pub squashed_uops: u64,
    /// Committed control-flow micro-ops (conditional branches and jumps).
    pub branches: u64,
    /// `counts[k]` = completed cycles that ended with exactly `k` entries
    /// occupied, per structure (regfile, ROB, IQ, LQ, SQ).
    pub occupancy: [Vec<u64>; 5],
}

impl CounterState {
    /// Zeroed counters for structures of the given capacities
    /// (regfile, ROB, IQ, LQ, SQ).
    pub fn new(capacities: [usize; 5]) -> CounterState {
        CounterState {
            fetch_stall_cycles: 0,
            issue_stall_cycles: 0,
            commit_stall_cycles: 0,
            squashes: 0,
            squashed_uops: 0,
            branches: 0,
            occupancy: capacities.map(|cap| vec![0; cap + 1]),
        }
    }
}

/// Cycle-occupancy histogram for one microarchitectural structure.
///
/// `counts[k]` is the number of completed cycles that ended with exactly
/// `k` of the structure's `capacity` entries occupied, so the counts sum
/// to the cycles executed while counting was enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyHistogram {
    /// Structure name (`"regfile"`, `"rob"`, `"iq"`, `"lq"`, `"sq"`).
    pub name: &'static str,
    /// Number of entries the structure holds.
    pub capacity: usize,
    /// Cycles observed at each occupancy level (`capacity + 1` buckets).
    pub counts: Vec<u64>,
}

impl OccupancyHistogram {
    /// Total cycles observed (the sum over all buckets).
    pub fn cycles(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean occupancy in entries, or 0.0 before any cycle completed.
    pub fn mean(&self) -> f64 {
        let cycles = self.cycles();
        if cycles == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(k, &n)| k as u64 * n)
            .sum();
        weighted as f64 / cycles as f64
    }

    /// Mean occupancy as a fraction of capacity (0.0 for a zero-capacity
    /// structure).
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.mean() / self.capacity as f64
    }

    /// Smallest occupancy `k` such that at least `p` (in `[0, 1]`) of the
    /// observed cycles ended with `k` or fewer entries occupied.
    pub fn percentile(&self, p: f64) -> usize {
        let cycles = self.cycles();
        if cycles == 0 {
            return 0;
        }
        let threshold = (p.clamp(0.0, 1.0) * cycles as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (k, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= threshold {
                return k;
            }
        }
        self.capacity
    }

    /// Highest occupancy ever observed.
    pub fn peak(&self) -> usize {
        self.counts.iter().rposition(|&n| n > 0).unwrap_or_default()
    }
}

/// Snapshot of the microarchitectural counters, taken by
/// [`crate::Sim::counters`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimCounters {
    /// Cycles executed.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Cycles where fetch delivered no micro-op into the decode queue
    /// (I-cache miss, redirect penalty, queue backpressure, or program
    /// drain).
    pub fetch_stall_cycles: u64,
    /// Cycles where the issue queue held micro-ops but none issued
    /// (operands not ready, port limits, or a structural hazard).
    pub issue_stall_cycles: u64,
    /// Cycles where the ROB held micro-ops but none committed (head not
    /// yet done).
    pub commit_stall_cycles: u64,
    /// Pipeline flushes (branch-mispredict recoveries).
    pub squashes: u64,
    /// Renamed, un-committed micro-ops discarded by those recoveries.
    pub squashed_uops: u64,
    /// Committed control-flow micro-ops (conditional branches and jumps).
    pub branches: u64,
    /// Control-flow mispredictions detected at execute.
    pub mispredicts: u64,
    /// Per-structure occupancy histograms (regfile, ROB, IQ, LQ, SQ).
    pub occupancy: Vec<OccupancyHistogram>,
}

impl SimCounters {
    /// Committed instructions per cycle, or 0.0 before the first cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.committed as f64 / self.cycles as f64
    }

    /// Mispredictions per thousand committed branches, or 0.0 with no
    /// branches.
    pub fn mispredicts_per_kilo_branch(&self) -> f64 {
        if self.branches == 0 {
            return 0.0;
        }
        1000.0 * self.mispredicts as f64 / self.branches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(counts: Vec<u64>) -> OccupancyHistogram {
        OccupancyHistogram {
            name: "rob",
            capacity: counts.len() - 1,
            counts,
        }
    }

    #[test]
    fn histogram_mean_and_peak() {
        // 2 cycles at 0, 3 cycles at 1, 5 cycles at 2.
        let h = hist(vec![2, 3, 5, 0]);
        assert_eq!(h.cycles(), 10);
        assert!((h.mean() - 1.3).abs() < 1e-12);
        assert_eq!(h.peak(), 2);
        assert!((h.utilization() - 1.3 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentiles() {
        let h = hist(vec![50, 25, 25]);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(0.75), 1);
        assert_eq!(h.percentile(1.0), 2);
    }

    #[test]
    fn empty_histogram_is_degenerate_not_panicking() {
        let h = hist(vec![0, 0]);
        assert_eq!(h.cycles(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.peak(), 0);
    }

    #[test]
    fn derived_rates() {
        let c = SimCounters {
            cycles: 200,
            committed: 100,
            fetch_stall_cycles: 0,
            issue_stall_cycles: 0,
            commit_stall_cycles: 0,
            squashes: 0,
            squashed_uops: 0,
            branches: 40,
            mispredicts: 4,
            occupancy: Vec::new(),
        };
        assert!((c.ipc() - 0.5).abs() < 1e-12);
        assert!((c.mispredicts_per_kilo_branch() - 100.0).abs() < 1e-12);
    }
}
