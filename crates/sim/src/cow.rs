//! Copy-on-write chunked storage for forked simulator state.
//!
//! The convoy engine forks thousands of short-lived children from one golden
//! simulator. A deep clone of every cache array (~1 MB for the A15 L2 data
//! array alone) per fork dwarfs the work most children actually do before
//! re-converging. [`CowVec`] makes the fork itself O(chunks): state lives in
//! fixed-size chunks behind [`Arc`]s, a clone only bumps refcounts, and the
//! first write to a shared chunk materializes a private copy of just that
//! chunk via [`Arc::make_mut`].
//!
//! Chunk-level `Arc` identity doubles as an implicit dirty-since-fork set:
//! a chunk is unchanged between a parent and a child if and only if the two
//! still point at the same allocation ([`Arc::ptr_eq`]). This composes
//! across forks taken at different times with no per-child bookkeeping —
//! a chunk the golden run writes *after* child A forked but *before* child B
//! forked ptr-differs for A and ptr-matches for B, exactly the right answer
//! for each. Equality checks exploit it as a fast path: shared chunks are
//! equal by construction and are never walked.

use std::ops::Index;
use std::sync::Arc;

/// A fixed-length array stored as power-of-two-sized chunks behind `Arc`s.
///
/// Cloning is O(number of chunks) refcount bumps; writes copy at most one
/// chunk. Indexing uses a shift/mask pair so the hot lookup paths pay no
/// division.
#[derive(Debug, Clone)]
pub struct CowVec<T> {
    chunks: Vec<Arc<Vec<T>>>,
    shift: u32,
    mask: usize,
    len: usize,
}

impl<T: Clone> CowVec<T> {
    /// Builds a `CowVec` of `len` copies of `fill`, split into chunks of
    /// `chunk_len` elements (the last chunk may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is not a power of two.
    pub fn new(len: usize, chunk_len: usize, fill: T) -> CowVec<T> {
        assert!(
            chunk_len.is_power_of_two(),
            "chunk_len must be a power of two"
        );
        let mut chunks = Vec::with_capacity(len.div_ceil(chunk_len));
        let mut remaining = len;
        while remaining > 0 {
            let n = remaining.min(chunk_len);
            chunks.push(Arc::new(vec![fill.clone(); n]));
            remaining -= n;
        }
        CowVec {
            chunks,
            shift: chunk_len.trailing_zeros(),
            mask: chunk_len - 1,
            len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Shared reference to element `i`.
    pub fn get(&self, i: usize) -> &T {
        &self.chunks[i >> self.shift][i & self.mask]
    }

    /// Writes element `i`, materializing a private copy of its chunk if the
    /// chunk is still shared with a fork sibling.
    pub fn set(&mut self, i: usize, value: T) {
        Arc::make_mut(&mut self.chunks[i >> self.shift])[i & self.mask] = value;
    }

    /// Mutable reference to element `i` (copy-on-write at chunk granularity).
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        &mut Arc::make_mut(&mut self.chunks[i >> self.shift])[i & self.mask]
    }

    /// Shared slice of `count` elements starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range crosses a chunk boundary; callers size chunks as
    /// a multiple of their natural record (e.g. a cache line) so contiguous
    /// records never straddle chunks.
    pub fn slice(&self, start: usize, count: usize) -> &[T] {
        let chunk = start >> self.shift;
        let off = start & self.mask;
        assert!(
            off + count <= self.chunks[chunk].len(),
            "slice crosses a chunk boundary"
        );
        &self.chunks[chunk][off..off + count]
    }

    /// Mutable slice of `count` elements starting at `start`
    /// (copy-on-write at chunk granularity).
    ///
    /// # Panics
    ///
    /// Panics if the range crosses a chunk boundary.
    pub fn slice_mut(&mut self, start: usize, count: usize) -> &mut [T] {
        let chunk = start >> self.shift;
        let off = start & self.mask;
        assert!(
            off + count <= self.chunks[chunk].len(),
            "slice crosses a chunk boundary"
        );
        &mut Arc::make_mut(&mut self.chunks[chunk])[off..off + count]
    }

    /// Number of chunks still physically shared with `other` (same
    /// allocation). A fork followed by no writes shares every chunk; each
    /// write since the fork unshares at most one.
    pub fn shared_chunk_count(&self, other: &CowVec<T>) -> usize {
        self.chunks
            .iter()
            .zip(&other.chunks)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Element ranges `[start, end)` of chunks that are neither
    /// pointer-shared with `other` nor content-equal — the only regions a
    /// semantic comparison still has to examine.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths or chunking.
    pub fn differing_ranges(&self, other: &CowVec<T>) -> Vec<(usize, usize)>
    where
        T: PartialEq,
    {
        assert_eq!(self.len, other.len, "length mismatch");
        assert_eq!(self.shift, other.shift, "chunking mismatch");
        let chunk_len = self.mask + 1;
        self.chunks
            .iter()
            .zip(&other.chunks)
            .enumerate()
            .filter(|(_, (a, b))| !Arc::ptr_eq(a, b) && a != b)
            .map(|(i, (a, _))| (i * chunk_len, i * chunk_len + a.len()))
            .collect()
    }
}

impl<T: Clone> Index<usize> for CowVec<T> {
    type Output = T;

    fn index(&self, i: usize) -> &T {
        self.get(i)
    }
}

/// Chunk-wise equality with a pointer fast path: chunks still shared after a
/// fork are equal by construction and are not walked.
impl<T: Clone + PartialEq> PartialEq for CowVec<T> {
    fn eq(&self, other: &CowVec<T>) -> bool {
        self.len == other.len
            && self.shift == other.shift
            && self
                .chunks
                .iter()
                .zip(&other.chunks)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
    }
}

impl<T: Clone + Eq> Eq for CowVec<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let v = CowVec::new(100, 16, 7u32);
        assert_eq!(v.len(), 100);
        assert_eq!(v.chunk_count(), 7); // 6×16 + 1×4
        assert_eq!(v[0], 7);
        assert_eq!(v[99], 7);
    }

    #[test]
    fn clone_shares_every_chunk_until_written() {
        let a = CowVec::new(100, 16, 0u8);
        let mut b = a.clone();
        assert_eq!(a.shared_chunk_count(&b), 7);
        b.set(33, 1);
        assert_eq!(a.shared_chunk_count(&b), 6, "one chunk unshared");
        assert_eq!(a[33], 0, "parent unaffected");
        assert_eq!(b[33], 1);
        // A second write to the same chunk allocates nothing further.
        b.set(34, 2);
        assert_eq!(a.shared_chunk_count(&b), 6);
    }

    #[test]
    fn equality_tracks_content_not_sharing() {
        let a = CowVec::new(40, 8, 0u64);
        let mut b = a.clone();
        assert_eq!(a, b);
        b.set(9, 5);
        assert_ne!(a, b);
        b.set(9, 0); // back to original content, chunk no longer shared
        assert_eq!(a.shared_chunk_count(&b), 4);
        assert_eq!(a, b, "content equality survives unsharing");
    }

    #[test]
    fn differing_ranges_reports_only_real_differences() {
        let a = CowVec::new(40, 8, 0u32);
        let mut b = a.clone();
        assert!(a.differing_ranges(&b).is_empty());
        b.set(9, 5); // chunk 1 differs
        b.set(17, 0); // chunk 2 rewritten with the same value: unshared, equal
        assert_eq!(a.differing_ranges(&b), vec![(8, 16)]);
    }

    #[test]
    fn slices_stay_within_chunks() {
        let mut v = CowVec::new(64, 16, 0u8);
        v.slice_mut(16, 16).copy_from_slice(&[3; 16]);
        assert_eq!(v.slice(16, 16), &[3; 16]);
        assert_eq!(v[15], 0);
        assert_eq!(v[32], 0);
    }

    #[test]
    #[should_panic(expected = "crosses a chunk boundary")]
    fn cross_chunk_slice_panics() {
        let v = CowVec::new(64, 16, 0u8);
        let _ = v.slice(8, 16);
    }

    #[test]
    fn fork_then_drop_allocates_no_chunks() {
        let a = CowVec::new(1 << 20, 4096, 0u8);
        let b = a.clone();
        assert_eq!(a.shared_chunk_count(&b), a.chunk_count());
        drop(b);
        assert_eq!(a[0], 0);
    }
}
