//! Physical register file, rename maps, and the free list.
//!
//! The register *values* are a fault-injection target (the paper's RF
//! structure: 128×32 bit on the A15-like machine, 192×64 bit on the
//! A72-like one). Rename metadata (maps, free list, ready bits) is bookkeeping
//! the paper does not inject, but it *checks* consistency and raises
//! Assert-class failures when corrupted ROB fields feed it garbage.

use crate::cow::CowVec;
use softerr_isa::Profile;

/// Physical register index.
pub type PhysReg = u8;

/// Chunk size (registers) for the copy-on-write value bank.
const VALUE_CHUNK: usize = 32;

/// Physical register file plus rename state.
///
/// Deliberately **not** `PartialEq`: the only sound comparison is
/// [`RegisterFile::state_eq`], which excludes the dead values of free
/// registers. A derived `==` would be stricter and silently misreport
/// divergence at any call site that reached for it.
///
/// The value bank lives in copy-on-write chunked storage so forked children
/// share it with the golden run until one of them writes a register.
#[derive(Debug, Clone)]
pub struct RegisterFile {
    profile: Profile,
    nphys: usize,
    values: CowVec<u64>,
    ready: Vec<bool>,
    /// Speculative (front-end) map, arch → phys.
    pub spec_map: Vec<PhysReg>,
    /// Architectural (retirement) map.
    pub arch_map: Vec<PhysReg>,
    free_list: Vec<PhysReg>,
    is_free: Vec<bool>,
}

impl RegisterFile {
    /// Creates the rename state: phys 0 is the hardwired zero register,
    /// permanently mapped to arch reg 0.
    pub fn new(profile: Profile, nphys: usize) -> RegisterFile {
        assert!(nphys <= 256, "phys tags are stored in 8 bits");
        assert!(nphys > profile.nregs(), "need more phys than arch regs");
        let nregs = profile.nregs();
        // arch reg i initially maps to phys i (phys 0 = zero).
        let spec_map: Vec<PhysReg> = (0..nregs as u8).collect();
        let free_list: Vec<PhysReg> = ((nregs as u8)..(nphys as u8)).rev().collect();
        let mut is_free = vec![false; nphys];
        for &r in &free_list {
            is_free[r as usize] = true;
        }
        RegisterFile {
            profile,
            nphys,
            values: CowVec::new(nphys, VALUE_CHUNK, 0),
            ready: vec![true; nphys],
            arch_map: spec_map.clone(),
            spec_map,
            free_list,
            is_free,
        }
    }

    /// Number of physical registers.
    pub fn nphys(&self) -> usize {
        self.nphys
    }

    /// Whether a tag is architecturally valid for this file.
    pub fn tag_valid(&self, tag: PhysReg) -> bool {
        (tag as usize) < self.nphys
    }

    /// Reads a physical register (callers must have validated the tag).
    pub fn read(&self, tag: PhysReg) -> u64 {
        self.values[tag as usize]
    }

    /// Writes a physical register, masking to the profile width. Writes to
    /// phys 0 (the zero register) are discarded.
    pub fn write(&mut self, tag: PhysReg, value: u64) {
        if tag != 0 {
            self.values.set(tag as usize, self.profile.mask(value));
        }
    }

    /// Whether a physical register's value is available.
    pub fn is_ready(&self, tag: PhysReg) -> bool {
        tag == 0 || self.ready[tag as usize]
    }

    /// Marks a register ready (at writeback).
    pub fn set_ready(&mut self, tag: PhysReg, ready: bool) {
        if tag != 0 {
            self.ready[tag as usize] = ready;
        }
    }

    /// Allocates a free physical register (`None` when exhausted).
    pub fn alloc(&mut self) -> Option<PhysReg> {
        let r = self.free_list.pop()?;
        self.is_free[r as usize] = false;
        self.ready[r as usize] = false;
        Some(r)
    }

    /// Returns a register to the free list.
    ///
    /// Freeing phys 0 or an already-free register indicates corrupted
    /// rename linkage; the caller turns the `Err` into an Assert outcome.
    pub fn free(&mut self, tag: PhysReg) -> Result<(), &'static str> {
        if tag == 0 {
            return Err("attempt to free the zero register");
        }
        if !self.tag_valid(tag) {
            return Err("attempt to free an out-of-range register");
        }
        if self.is_free[tag as usize] {
            return Err("double free of a physical register");
        }
        self.is_free[tag as usize] = true;
        self.free_list.push(tag);
        Ok(())
    }

    /// Snapshot of the speculative map (branch checkpoint).
    pub fn checkpoint(&self) -> Box<[PhysReg]> {
        self.spec_map.clone().into_boxed_slice()
    }

    /// Restores the speculative map from a checkpoint and rebuilds the free
    /// list from first principles: a register is allocated iff it is the
    /// architectural home of some register or the destination of a
    /// surviving in-flight instruction.
    pub fn recover(&mut self, checkpoint: &[PhysReg], in_flight_dests: &[PhysReg]) {
        self.spec_map.copy_from_slice(checkpoint);
        let mut allocated = vec![false; self.nphys];
        allocated[0] = true;
        for &r in &self.arch_map {
            allocated[r as usize] = true;
        }
        for &r in in_flight_dests {
            if (r as usize) < self.nphys {
                allocated[r as usize] = true;
            }
        }
        self.free_list.clear();
        for r in (1..self.nphys).rev() {
            self.is_free[r] = !allocated[r];
            if !allocated[r] {
                self.free_list.push(r as PhysReg);
            }
        }
        self.is_free[0] = false;
    }

    /// Number of free registers.
    pub fn free_count(&self) -> usize {
        self.free_list.len()
    }

    /// Whether `tag` is currently on the free list (used by the residency
    /// tracker to close ACE intervals after a squash recovery).
    pub fn is_free_reg(&self, tag: PhysReg) -> bool {
        self.is_free[tag as usize]
    }

    /// Total injectable bits: every physical register at the profile width.
    pub fn bit_count(&self) -> u64 {
        self.nphys as u64 * self.profile.xlen() as u64
    }

    /// Flips one bit of one physical register value.
    pub fn flip_bit(&mut self, bit: u64) {
        assert!(bit < self.bit_count(), "RF bit index out of range");
        let xlen = self.profile.xlen() as u64;
        let reg = (bit / xlen) as usize;
        *self.values.get_mut(reg) ^= 1 << (bit % xlen);
    }

    /// Utilization statistic: registers currently allocated.
    pub fn allocated_count(&self) -> usize {
        self.nphys - self.free_list.len()
    }

    /// Whether two register files hold execution-equivalent state: identical
    /// rename metadata and identical values in every **allocated** register.
    ///
    /// The values of free registers are excluded because they are dead: the
    /// only value reads in the pipeline happen at issue, through source tags
    /// gated on the ready bits, and in-order commit guarantees no in-flight
    /// consumer still references a freed register. Before a free register's
    /// value can be observed again it must be re-allocated — which clears
    /// its ready bit — and rewritten at writeback. Two machines that agree
    /// on everything here (including the free list, so they allocate in the
    /// same order) therefore behave identically even if freed cells disagree.
    pub fn state_eq(&self, other: &RegisterFile) -> bool {
        self.profile == other.profile
            && self.nphys == other.nphys
            && self.ready == other.ready
            && self.spec_map == other.spec_map
            && self.arch_map == other.arch_map
            && self.free_list == other.free_list
            && self.is_free == other.is_free
            // Value chunks still shared (or byte-identical) after a fork
            // need no walk; only genuinely rewritten chunks are examined,
            // with the free-register relaxation applied per cell.
            && self
                .values
                .differing_ranges(&other.values)
                .iter()
                .all(|&(start, end)| {
                    (start..end).all(|reg| {
                        self.values[reg] == other.values[reg] || self.is_free[reg]
                    })
                })
    }

    /// Number of value-bank chunks still physically shared with `other`
    /// (the complement of what a fork has had to copy).
    pub fn shared_value_chunks(&self, other: &RegisterFile) -> usize {
        self.values.shared_chunk_count(&other.values)
    }

    /// Total number of value-bank chunks.
    pub fn value_chunk_count(&self) -> usize {
        self.values.chunk_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_maps_identity() {
        let rf = RegisterFile::new(Profile::A32, 128);
        assert_eq!(rf.spec_map.len(), 16);
        assert_eq!(rf.spec_map[5], 5);
        assert_eq!(rf.free_count(), 128 - 16);
        assert!(rf.is_ready(3));
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut rf = RegisterFile::new(Profile::A64, 192);
        let r = rf.alloc().unwrap();
        assert!(!rf.is_ready(r));
        assert_eq!(rf.free_count(), 192 - 32 - 1);
        rf.free(r).unwrap();
        assert_eq!(rf.free_count(), 192 - 32);
    }

    #[test]
    fn double_free_is_detected() {
        let mut rf = RegisterFile::new(Profile::A64, 192);
        let r = rf.alloc().unwrap();
        rf.free(r).unwrap();
        assert!(rf.free(r).is_err());
        assert!(rf.free(0).is_err());
    }

    #[test]
    fn zero_register_ignores_writes() {
        let mut rf = RegisterFile::new(Profile::A32, 128);
        rf.write(0, 99);
        assert_eq!(rf.read(0), 0);
    }

    #[test]
    fn writes_mask_to_profile_width() {
        let mut rf = RegisterFile::new(Profile::A32, 128);
        rf.write(5, 0x1_2345_6789);
        assert_eq!(rf.read(5), 0x2345_6789);
    }

    #[test]
    fn recovery_rebuilds_free_list() {
        let mut rf = RegisterFile::new(Profile::A32, 128);
        let cp = rf.checkpoint();
        let a = rf.alloc().unwrap();
        let b = rf.alloc().unwrap();
        let _c = rf.alloc().unwrap();
        // Squash everything after the checkpoint except `a` and `b`.
        rf.recover(&cp, &[a, b]);
        assert_eq!(rf.free_count(), 128 - 16 - 2);
        // c is free again; allocating returns some register that is not a/b.
        let d = rf.alloc().unwrap();
        assert!(d != a && d != b);
    }

    #[test]
    fn flip_bit_hits_the_right_register() {
        let mut rf = RegisterFile::new(Profile::A32, 128);
        assert_eq!(rf.bit_count(), 128 * 32);
        rf.flip_bit(32 * 7 + 4); // reg 7, bit 4
        assert_eq!(rf.read(7), 16);
        // The zero register cell can be corrupted too (it is a real cell).
        rf.flip_bit(1);
        assert_eq!(rf.read(0), 2);
    }
}
