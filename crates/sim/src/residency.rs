//! Bit-residency (ACE interval) recording for the static AVF estimator.
//!
//! During one golden (un-faulted) run the pipeline and memory system feed
//! the trackers here with allocate / read / write / free / evict events for
//! every injectable structure. A bit is **ACE** (architecturally correct
//! execution required) from the cycle it is written until the last cycle
//! it is read before being overwritten, freed, evicted, or abandoned —
//! dead and free entries are un-ACE. Summing those intervals gives
//! live-bit-cycles per structure, and
//! `AVF ≈ live-bit-cycles / (bits × cycles)` (Mukherjee et al., MICRO'03).
//!
//! Granularity is one *entry* (a physical register, a queue entry, a cache
//! line): every bit of a live entry is counted live, so the estimate is an
//! upper bound on true bit-level ACE-ness. Closing events:
//!
//! * **register file** — written at writeback, read at issue, closed at
//!   retirement `free` (or when a squash recovery frees the register);
//! * **ROB / IQ / LSQ entries** — keyed by the uop's global sequence
//!   number; an entry is live from dispatch to the commit/issue event that
//!   reads it, and squashed entries are discarded un-ACE;
//! * **cache lines** — live from fill to last use for clean lines (the
//!   eviction never reads them), and from fill to eviction for dirty lines
//!   (the writeback reads the whole line).
//!
//! Trackers are deliberately *not* part of [`crate::Sim::state_eq`]: they
//! observe execution without feeding back into it.

use crate::regs::{PhysReg, RegisterFile};
use crate::Structure;
use std::collections::HashMap;

/// One open write→last-read interval.
#[derive(Debug, Clone, Copy)]
struct Open {
    start: u64,
    last_read: u64,
}

impl Open {
    fn span(&self) -> u64 {
        self.last_read.saturating_sub(self.start)
    }
}

/// Residency accumulators for the core structures (register file, ROB,
/// IQ, load/store queues). Queue entries are keyed by uop sequence number
/// so that a squash can discard every younger entry without knowing the
/// structures' internal slot layout.
#[derive(Debug, Clone, Default)]
pub(crate) struct CoreResidency {
    rf: Vec<Option<Open>>,
    rf_acc: u64,
    rob: HashMap<u64, (u64, bool)>,
    rob_acc: u64,
    rob_dest_acc: u64,
    iq: HashMap<u64, u64>,
    iq_acc: u64,
    lq: HashMap<u64, u64>,
    lq_acc: u64,
    sq: HashMap<u64, u64>,
    sq_acc: u64,
}

impl CoreResidency {
    pub(crate) fn new(nphys: usize) -> CoreResidency {
        CoreResidency {
            rf: vec![None; nphys],
            ..CoreResidency::default()
        }
    }

    /// Marks a register live from `cycle` (initial architectural state).
    pub(crate) fn rf_open(&mut self, tag: PhysReg, cycle: u64) {
        self.rf[tag as usize] = Some(Open {
            start: cycle,
            last_read: cycle,
        });
    }

    /// A value lands in the register at writeback: close any stale
    /// interval and start a new one.
    pub(crate) fn rf_write(&mut self, tag: PhysReg, cycle: u64) {
        if tag == 0 {
            return; // the zero register discards writes
        }
        if let Some(o) = self.rf[tag as usize].take() {
            self.rf_acc += o.span();
        }
        self.rf[tag as usize] = Some(Open {
            start: cycle,
            last_read: cycle,
        });
    }

    /// A source operand is read at issue.
    pub(crate) fn rf_read(&mut self, tag: PhysReg, cycle: u64) {
        if let Some(o) = &mut self.rf[tag as usize] {
            o.last_read = cycle;
        }
    }

    /// The register returns to the free list at retirement.
    pub(crate) fn rf_free(&mut self, tag: PhysReg) {
        if let Some(o) = self.rf[tag as usize].take() {
            self.rf_acc += o.span();
        }
    }

    /// After a squash recovery rebuilt the free list, close the interval
    /// of every register that became free.
    pub(crate) fn rf_sync_freed(&mut self, rf: &RegisterFile) {
        for tag in 0..self.rf.len() {
            if self.rf[tag].is_some() && rf.is_free_reg(tag as PhysReg) {
                let o = self.rf[tag].take().expect("checked");
                self.rf_acc += o.span();
            }
        }
    }

    pub(crate) fn rob_push(&mut self, seq: u64, has_dest: bool, cycle: u64) {
        self.rob.insert(seq, (cycle, has_dest));
    }

    /// Commit reads every ROB field of the retiring entry.
    pub(crate) fn rob_pop(&mut self, seq: u64, cycle: u64) {
        if let Some((start, has_dest)) = self.rob.remove(&seq) {
            let span = cycle.saturating_sub(start);
            self.rob_acc += span;
            if has_dest {
                self.rob_dest_acc += span;
            }
        }
    }

    pub(crate) fn iq_insert(&mut self, seq: u64, cycle: u64) {
        self.iq.insert(seq, cycle);
    }

    /// Issue reads the IQ entry's tags and removes it.
    pub(crate) fn iq_remove(&mut self, seq: u64, cycle: u64) {
        if let Some(start) = self.iq.remove(&seq) {
            self.iq_acc += cycle.saturating_sub(start);
        }
    }

    pub(crate) fn lq_push(&mut self, seq: u64, cycle: u64) {
        self.lq.insert(seq, cycle);
    }

    pub(crate) fn lq_pop(&mut self, seq: u64, cycle: u64) {
        if let Some(start) = self.lq.remove(&seq) {
            self.lq_acc += cycle.saturating_sub(start);
        }
    }

    pub(crate) fn sq_push(&mut self, seq: u64, cycle: u64) {
        self.sq.insert(seq, cycle);
    }

    pub(crate) fn sq_pop(&mut self, seq: u64, cycle: u64) {
        if let Some(start) = self.sq.remove(&seq) {
            self.sq_acc += cycle.saturating_sub(start);
        }
    }

    /// Discards every queue entry younger than `boundary_seq` — squashed
    /// entries are never architecturally read, so they are un-ACE.
    pub(crate) fn squash_queues(&mut self, boundary_seq: u64) {
        self.rob.retain(|&seq, _| seq <= boundary_seq);
        self.iq.retain(|&seq, _| seq <= boundary_seq);
        self.lq.retain(|&seq, _| seq <= boundary_seq);
        self.sq.retain(|&seq, _| seq <= boundary_seq);
    }

    /// Entry-granular live-cycle totals `(rf, rob, rob_dest, iq, lq, sq)`,
    /// closing still-open register intervals at their last read (entries
    /// still queued at end of run were never fully read and contribute 0).
    pub(crate) fn totals(&self) -> (u64, u64, u64, u64, u64, u64) {
        let rf = self.rf_acc + self.rf.iter().flatten().map(Open::span).sum::<u64>();
        (
            rf,
            self.rob_acc,
            self.rob_dest_acc,
            self.iq_acc,
            self.lq_acc,
            self.sq_acc,
        )
    }
}

/// Per-line residency of one cache array.
#[derive(Debug, Clone, Default)]
pub(crate) struct CacheResidency {
    open: Vec<Option<Open>>,
    acc: u64,
}

impl CacheResidency {
    pub(crate) fn new(lines: usize) -> CacheResidency {
        CacheResidency {
            open: vec![None; lines],
            acc: 0,
        }
    }

    pub(crate) fn on_fill(&mut self, line: usize, cycle: u64) {
        if let Some(o) = self.open[line].take() {
            self.acc += o.span();
        }
        self.open[line] = Some(Open {
            start: cycle,
            last_read: cycle,
        });
    }

    pub(crate) fn on_use(&mut self, line: usize, cycle: u64) {
        if let Some(o) = &mut self.open[line] {
            o.last_read = cycle;
        }
    }

    /// Eviction closes the line: a dirty eviction reads the whole line for
    /// the writeback (live up to `cycle`); a clean one reads nothing
    /// beyond the last demand access.
    pub(crate) fn on_evict(&mut self, line: usize, cycle: u64, dirty: bool) {
        if let Some(mut o) = self.open[line].take() {
            if dirty {
                o.last_read = o.last_read.max(cycle);
            }
            self.acc += o.span();
        }
    }

    /// Line-cycle total, closing still-valid lines at their last use.
    pub(crate) fn total(&self) -> u64 {
        self.acc + self.open.iter().flatten().map(Open::span).sum::<u64>()
    }
}

/// Per-structure residency from one golden run: the raw material of the
/// ACE AVF estimate (`softerr-analysis`'s `ace` module does the division).
#[derive(Debug, Clone, PartialEq)]
pub struct ResidencyReport {
    /// Cycles the run took (the AVF denominator's time term).
    pub cycles: u64,
    /// One entry per injectable structure.
    pub structures: Vec<StructureResidency>,
}

/// Live-bit-cycles of one structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureResidency {
    /// The structure.
    pub structure: Structure,
    /// Total bits in the structure (the injection population).
    pub bits: u64,
    /// Sum over bits of cycles spent ACE (entry-granular upper bound).
    pub live_bit_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rf_interval_is_write_to_last_read() {
        let mut r = CoreResidency::new(8);
        r.rf_write(3, 10);
        r.rf_read(3, 15);
        r.rf_read(3, 40);
        r.rf_free(3);
        assert_eq!(r.totals().0, 30);
    }

    #[test]
    fn unread_register_is_unace() {
        let mut r = CoreResidency::new(8);
        r.rf_write(2, 10);
        r.rf_free(2);
        assert_eq!(r.totals().0, 0);
    }

    #[test]
    fn zero_register_writes_are_ignored() {
        let mut r = CoreResidency::new(8);
        r.rf_open(0, 0);
        r.rf_write(0, 50); // discarded by hardware, must not reset the interval
        r.rf_read(0, 70);
        assert_eq!(r.totals().0, 70);
    }

    #[test]
    fn squashed_queue_entries_are_unace() {
        let mut r = CoreResidency::new(4);
        r.rob_push(5, false, 100);
        r.rob_push(6, true, 101);
        r.squash_queues(5);
        r.rob_pop(5, 120);
        r.rob_pop(6, 130); // already squashed: no effect
        let (_, rob, rob_dest, ..) = r.totals();
        assert_eq!(rob, 20);
        assert_eq!(rob_dest, 0);
    }

    #[test]
    fn dirty_eviction_extends_to_eviction_cycle() {
        let mut c = CacheResidency::new(2);
        c.on_fill(0, 10);
        c.on_use(0, 20);
        c.on_evict(0, 90, true);
        assert_eq!(c.total(), 80, "writeback reads the line at eviction");

        c.on_fill(1, 10);
        c.on_use(1, 20);
        c.on_evict(1, 90, false);
        assert_eq!(c.total(), 80 + 10, "clean line dies at its last use");
    }

    #[test]
    fn open_lines_close_at_last_use() {
        let mut c = CacheResidency::new(1);
        c.on_fill(0, 5);
        c.on_use(0, 25);
        assert_eq!(c.total(), 20);
    }
}
