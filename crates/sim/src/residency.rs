//! Bit-residency (ACE interval) recording for the static AVF estimator
//! and the campaign prune filter.
//!
//! During one golden (un-faulted) run the pipeline and memory system feed
//! the trackers here with allocate / read / write / free / evict events for
//! every injectable structure. A bit is **ACE** (architecturally correct
//! execution required) from the cycle it is written until the last cycle
//! it is read before being overwritten, freed, evicted, or abandoned —
//! dead and free entries are un-ACE. Summing those intervals gives
//! live-bit-cycles per structure, and
//! `AVF ≈ live-bit-cycles / (bits × cycles)` (Mukherjee et al., MICRO'03).
//!
//! Granularity is one *entry* (a physical register, a queue entry, a cache
//! line): every bit of a live entry is counted live, so the estimate is an
//! upper bound on true bit-level ACE-ness. Closing events:
//!
//! * **register file** — written at writeback, read at issue, closed at
//!   retirement `free` (or when a squash recovery frees the register);
//! * **ROB / IQ / LSQ entries** — keyed by the uop's global sequence
//!   number; an entry is live from dispatch to the commit/issue event that
//!   reads it, and squashed entries are discarded un-ACE;
//! * **cache lines** — live from fill to last use for clean lines (the
//!   eviction never reads them), and from fill to eviction for dirty lines
//!   (the writeback reads the whole line).
//!
//! Beyond the aggregate totals, the trackers can record every closed
//! interval per entry ([`CoreResidency::set_record_windows`]); the
//! pipeline assembles those into a [`LivenessMap`], the queryable
//! structure behind campaign pruning. The map's windows are *danger*
//! windows, not ACE windows: they must cover every cycle at which a flip
//! could still be observed by any read — including squashed-but-occupied
//! queue entries (cross-checked at commit/issue until the squash) — so
//! occupancy closes at the squash cycle here even though the squashed
//! span is discarded from the ACE accumulators.
//!
//! Trackers are deliberately *not* part of [`crate::Sim::state_eq`]: they
//! observe execution without feeding back into it.

use crate::regs::{PhysReg, RegisterFile};
use crate::Structure;
use std::collections::HashMap;

/// One open write→last-read interval.
#[derive(Debug, Clone, Copy)]
struct Open {
    start: u64,
    last_read: u64,
}

impl Open {
    fn span(&self) -> u64 {
        self.last_read.saturating_sub(self.start)
    }
}

/// One closed, inclusive `[start, end]` cycle window during which a flip
/// of the entry's bits can still influence execution. A fault is applied
/// *before* its cycle executes, so a flip at exactly `end` is observed by
/// that cycle's read and both bounds are inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveWindow {
    /// First cycle at which a flip is observable.
    pub start: u64,
    /// Last cycle at which a flip is observable (inclusive).
    pub end: u64,
}

fn push_window(windows: &mut Vec<Vec<LiveWindow>>, slot: usize, start: u64, end: u64) {
    if windows.len() <= slot {
        windows.resize_with(slot + 1, Vec::new);
    }
    windows[slot].push(LiveWindow { start, end });
}

fn push_mask(masks: &mut Vec<Vec<u64>>, slot: usize, mask: u64) {
    if masks.len() <= slot {
        masks.resize_with(slot + 1, Vec::new);
    }
    masks[slot].push(mask);
}

/// Finished per-entry danger windows of the core structures.
#[derive(Debug, Clone, Default)]
pub(crate) struct CoreWindows {
    pub(crate) rf: Vec<Vec<LiveWindow>>,
    /// Static writeback demand mask of each RF window, parallel to `rf`: a
    /// clear bit is provably unobservable for the whole window. Windows
    /// opened by anything other than an attributed writeback carry `!0`.
    pub(crate) rf_masks: Vec<Vec<u64>>,
    pub(crate) rob: Vec<Vec<LiveWindow>>,
    pub(crate) iq: Vec<Vec<LiveWindow>>,
    pub(crate) lq: Vec<Vec<LiveWindow>>,
    pub(crate) sq: Vec<Vec<LiveWindow>>,
}

/// Residency accumulators for the core structures (register file, ROB,
/// IQ, load/store queues). Queue entries are keyed by uop sequence number
/// so that a squash can discard every younger entry without knowing the
/// structures' internal slot layout; each entry also carries its slot
/// index so closed occupancy windows land on the right injection target.
#[derive(Debug, Clone, Default)]
pub(crate) struct CoreResidency {
    rf: Vec<Option<Open>>,
    /// Demand mask of each register's currently-open window (`!0` unless
    /// the opening writeback carried a static annotation).
    rf_cur_mask: Vec<u64>,
    rf_acc: u64,
    rob: HashMap<u64, (u64, bool, usize)>,
    rob_acc: u64,
    rob_dest_acc: u64,
    iq: HashMap<u64, (u64, usize)>,
    iq_acc: u64,
    lq: HashMap<u64, (u64, usize)>,
    lq_acc: u64,
    sq: HashMap<u64, (u64, usize)>,
    sq_acc: u64,
    record_windows: bool,
    rf_windows: Vec<Vec<LiveWindow>>,
    rf_mask_windows: Vec<Vec<u64>>,
    rob_windows: Vec<Vec<LiveWindow>>,
    iq_windows: Vec<Vec<LiveWindow>>,
    lq_windows: Vec<Vec<LiveWindow>>,
    sq_windows: Vec<Vec<LiveWindow>>,
}

impl CoreResidency {
    pub(crate) fn new(nphys: usize) -> CoreResidency {
        CoreResidency {
            rf: vec![None; nphys],
            rf_cur_mask: vec![!0; nphys],
            ..CoreResidency::default()
        }
    }

    /// Turns on per-entry window recording (off by default: the windows
    /// are only needed when the run feeds a [`LivenessMap`], and they cost
    /// memory proportional to the event count).
    pub(crate) fn set_record_windows(&mut self, on: bool) {
        self.record_windows = on;
    }

    /// Marks a register live from `cycle` (initial architectural state).
    pub(crate) fn rf_open(&mut self, tag: PhysReg, cycle: u64) {
        self.rf[tag as usize] = Some(Open {
            start: cycle,
            last_read: cycle,
        });
        self.rf_cur_mask[tag as usize] = !0;
    }

    fn rf_close(&mut self, tag: PhysReg) {
        if let Some(o) = self.rf[tag as usize].take() {
            self.rf_acc += o.span();
            if self.record_windows {
                push_window(&mut self.rf_windows, tag as usize, o.start, o.last_read);
                push_mask(
                    &mut self.rf_mask_windows,
                    tag as usize,
                    self.rf_cur_mask[tag as usize],
                );
            }
        }
    }

    /// A value lands in the register at writeback: close any stale
    /// interval and start a new one carrying the writing instruction's
    /// static demand mask (`!0` when unannotated).
    pub(crate) fn rf_write(&mut self, tag: PhysReg, cycle: u64, mask: u64) {
        if tag == 0 {
            return; // the zero register discards writes
        }
        self.rf_close(tag);
        self.rf[tag as usize] = Some(Open {
            start: cycle,
            last_read: cycle,
        });
        self.rf_cur_mask[tag as usize] = mask;
    }

    /// A source operand is read at issue.
    pub(crate) fn rf_read(&mut self, tag: PhysReg, cycle: u64) {
        if let Some(o) = &mut self.rf[tag as usize] {
            o.last_read = cycle;
        }
    }

    /// The register returns to the free list at retirement.
    pub(crate) fn rf_free(&mut self, tag: PhysReg) {
        self.rf_close(tag);
    }

    /// After a squash recovery rebuilt the free list, close the interval
    /// of every register that became free.
    pub(crate) fn rf_sync_freed(&mut self, rf: &RegisterFile) {
        for tag in 0..self.rf.len() {
            if self.rf[tag].is_some() && rf.is_free_reg(tag as PhysReg) {
                self.rf_close(tag as PhysReg);
            }
        }
    }

    pub(crate) fn rob_push(&mut self, seq: u64, slot: usize, has_dest: bool, cycle: u64) {
        self.rob.insert(seq, (cycle, has_dest, slot));
    }

    /// Commit reads every ROB field of the retiring entry.
    pub(crate) fn rob_pop(&mut self, seq: u64, cycle: u64) {
        if let Some((start, has_dest, slot)) = self.rob.remove(&seq) {
            let span = cycle.saturating_sub(start);
            self.rob_acc += span;
            if has_dest {
                self.rob_dest_acc += span;
            }
            if self.record_windows {
                push_window(&mut self.rob_windows, slot, start, cycle);
            }
        }
    }

    pub(crate) fn iq_insert(&mut self, seq: u64, slot: usize, cycle: u64) {
        self.iq.insert(seq, (cycle, slot));
    }

    /// Issue reads the IQ entry's tags and removes it.
    pub(crate) fn iq_remove(&mut self, seq: u64, cycle: u64) {
        if let Some((start, slot)) = self.iq.remove(&seq) {
            self.iq_acc += cycle.saturating_sub(start);
            if self.record_windows {
                push_window(&mut self.iq_windows, slot, start, cycle);
            }
        }
    }

    pub(crate) fn lq_push(&mut self, seq: u64, slot: usize, cycle: u64) {
        self.lq.insert(seq, (cycle, slot));
    }

    pub(crate) fn lq_pop(&mut self, seq: u64, cycle: u64) {
        if let Some((start, slot)) = self.lq.remove(&seq) {
            self.lq_acc += cycle.saturating_sub(start);
            if self.record_windows {
                push_window(&mut self.lq_windows, slot, start, cycle);
            }
        }
    }

    pub(crate) fn sq_push(&mut self, seq: u64, slot: usize, cycle: u64) {
        self.sq.insert(seq, (cycle, slot));
    }

    pub(crate) fn sq_pop(&mut self, seq: u64, cycle: u64) {
        if let Some((start, slot)) = self.sq.remove(&seq) {
            self.sq_acc += cycle.saturating_sub(start);
            if self.record_windows {
                push_window(&mut self.sq_windows, slot, start, cycle);
            }
        }
    }

    /// Discards every queue entry younger than `boundary_seq` — squashed
    /// entries are never architecturally read, so they are un-ACE and
    /// contribute nothing to the accumulators. Their *occupancy* windows
    /// still close at the squash cycle: until the squash executes, the
    /// pipeline cross-checks those entries every cycle, so flips on them
    /// are observable (as Asserts) and must not be pruned.
    pub(crate) fn squash_queues(&mut self, boundary_seq: u64, cycle: u64) {
        let record = self.record_windows;
        let rob_windows = &mut self.rob_windows;
        self.rob.retain(|&seq, &mut (start, _, slot)| {
            let keep = seq <= boundary_seq;
            if !keep && record {
                push_window(rob_windows, slot, start, cycle);
            }
            keep
        });
        let iq_windows = &mut self.iq_windows;
        self.iq.retain(|&seq, &mut (start, slot)| {
            let keep = seq <= boundary_seq;
            if !keep && record {
                push_window(iq_windows, slot, start, cycle);
            }
            keep
        });
        let lq_windows = &mut self.lq_windows;
        self.lq.retain(|&seq, &mut (start, slot)| {
            let keep = seq <= boundary_seq;
            if !keep && record {
                push_window(lq_windows, slot, start, cycle);
            }
            keep
        });
        let sq_windows = &mut self.sq_windows;
        self.sq.retain(|&seq, &mut (start, slot)| {
            let keep = seq <= boundary_seq;
            if !keep && record {
                push_window(sq_windows, slot, start, cycle);
            }
            keep
        });
    }

    /// Entry-granular live-cycle totals `(rf, rob, rob_dest, iq, lq, sq)`,
    /// closing still-open register intervals at their last read (entries
    /// still queued at end of run were never fully read and contribute 0).
    pub(crate) fn totals(&self) -> (u64, u64, u64, u64, u64, u64) {
        let rf = self.rf_acc + self.rf.iter().flatten().map(Open::span).sum::<u64>();
        (
            rf,
            self.rob_acc,
            self.rob_dest_acc,
            self.iq_acc,
            self.lq_acc,
            self.sq_acc,
        )
    }

    /// The recorded danger windows, with still-open entries closed
    /// conservatively: an open register interval dies at its last read (no
    /// later cycle can observe it before the run ends), while queue
    /// entries still resident at end of run stay dangerous forever — a
    /// flip on them at any later cycle would still be cross-checked if the
    /// run went on, so they close at `u64::MAX`.
    pub(crate) fn live_windows(&self) -> CoreWindows {
        let mut w = CoreWindows {
            rf: self.rf_windows.clone(),
            rf_masks: self.rf_mask_windows.clone(),
            rob: self.rob_windows.clone(),
            iq: self.iq_windows.clone(),
            lq: self.lq_windows.clone(),
            sq: self.sq_windows.clone(),
        };
        for (tag, o) in self.rf.iter().enumerate() {
            if let Some(o) = o {
                push_window(&mut w.rf, tag, o.start, o.last_read);
                push_mask(&mut w.rf_masks, tag, self.rf_cur_mask[tag]);
            }
        }
        for &(start, _, slot) in self.rob.values() {
            push_window(&mut w.rob, slot, start, u64::MAX);
        }
        for &(start, slot) in self.iq.values() {
            push_window(&mut w.iq, slot, start, u64::MAX);
        }
        for &(start, slot) in self.lq.values() {
            push_window(&mut w.lq, slot, start, u64::MAX);
        }
        for &(start, slot) in self.sq.values() {
            push_window(&mut w.sq, slot, start, u64::MAX);
        }
        // RF windows must keep their mask vector aligned through the sort,
        // so entries are permuted as (window, mask) pairs.
        w.rf_masks.resize_with(w.rf.len(), Vec::new);
        for (entry, masks) in w.rf.iter_mut().zip(w.rf_masks.iter_mut()) {
            debug_assert_eq!(entry.len(), masks.len(), "rf window/mask desync");
            let mut pairs: Vec<(LiveWindow, u64)> = entry.drain(..).zip(masks.drain(..)).collect();
            pairs.sort_by_key(|(lw, _)| lw.start);
            for (lw, m) in pairs {
                entry.push(lw);
                masks.push(m);
            }
        }
        for windows in [&mut w.rob, &mut w.iq, &mut w.lq, &mut w.sq] {
            for entry in windows.iter_mut() {
                entry.sort_by_key(|lw| lw.start);
            }
        }
        w
    }
}

/// One closed cache-line lifetime: `[start, data_end]` covers the data
/// array's danger window, `[start, valid_end]` the tag array's (a stored
/// tag can falsely alias *any* lookup in its set for as long as the line
/// stays valid, and a spurious dirty bit changes the eviction path, so
/// tag/dirty bits are dangerous for the whole valid lifetime).
#[derive(Debug, Clone, Copy)]
struct LineWindow {
    start: u64,
    data_end: u64,
    valid_end: u64,
}

/// Per-line residency of one cache array.
#[derive(Debug, Clone, Default)]
pub(crate) struct CacheResidency {
    open: Vec<Option<Open>>,
    acc: u64,
    record_windows: bool,
    windows: Vec<Vec<LineWindow>>,
}

impl CacheResidency {
    pub(crate) fn new(lines: usize) -> CacheResidency {
        CacheResidency {
            open: vec![None; lines],
            acc: 0,
            record_windows: false,
            windows: vec![Vec::new(); lines],
        }
    }

    /// Turns on per-line window recording (see
    /// [`CoreResidency::set_record_windows`]).
    pub(crate) fn set_record_windows(&mut self, on: bool) {
        self.record_windows = on;
    }

    fn close(&mut self, line: usize, o: Open, valid_end: u64, dirty: bool) {
        let data_end = if dirty {
            o.last_read.max(valid_end)
        } else {
            o.last_read
        };
        self.acc += data_end.saturating_sub(o.start);
        if self.record_windows {
            self.windows[line].push(LineWindow {
                start: o.start,
                data_end,
                valid_end,
            });
        }
    }

    pub(crate) fn on_fill(&mut self, line: usize, cycle: u64) {
        if let Some(o) = self.open[line].take() {
            // Defensive: fills are normally preceded by an eviction of the
            // victim; a stale open line closes clean at the fill cycle.
            self.close(line, o, cycle, false);
        }
        self.open[line] = Some(Open {
            start: cycle,
            last_read: cycle,
        });
    }

    pub(crate) fn on_use(&mut self, line: usize, cycle: u64) {
        if let Some(o) = &mut self.open[line] {
            o.last_read = cycle;
        }
    }

    /// Eviction closes the line: a dirty eviction reads the whole line for
    /// the writeback (live up to `cycle`); a clean one reads nothing
    /// beyond the last demand access.
    pub(crate) fn on_evict(&mut self, line: usize, cycle: u64, dirty: bool) {
        if let Some(o) = self.open[line].take() {
            self.close(line, o, cycle, dirty);
        }
    }

    /// Line-cycle total, closing still-valid lines at their last use.
    pub(crate) fn total(&self) -> u64 {
        self.acc + self.open.iter().flatten().map(Open::span).sum::<u64>()
    }

    /// The recorded danger windows as `(data, tag)` per-line window lists.
    /// Still-valid lines close their data window at the last use and keep
    /// their tag window open forever (the line would stay a false-hit
    /// candidate for as long as the run continued).
    pub(crate) fn live_windows(&self) -> (Vec<Vec<LiveWindow>>, Vec<Vec<LiveWindow>>) {
        let mut data = vec![Vec::new(); self.open.len()];
        let mut tag = vec![Vec::new(); self.open.len()];
        for (line, lws) in self.windows.iter().enumerate() {
            for lw in lws {
                data[line].push(LiveWindow {
                    start: lw.start,
                    end: lw.data_end,
                });
                tag[line].push(LiveWindow {
                    start: lw.start,
                    end: lw.valid_end,
                });
            }
        }
        for (line, o) in self.open.iter().enumerate() {
            if let Some(o) = o {
                data[line].push(LiveWindow {
                    start: o.start,
                    end: o.last_read,
                });
                tag[line].push(LiveWindow {
                    start: o.start,
                    end: u64::MAX,
                });
            }
        }
        (data, tag)
    }
}

/// Per-structure residency from one golden run: the raw material of the
/// ACE AVF estimate (`softerr-analysis`'s `ace` module does the division).
#[derive(Debug, Clone, PartialEq)]
pub struct ResidencyReport {
    /// Cycles the run took (the AVF denominator's time term).
    pub cycles: u64,
    /// One entry per injectable structure.
    pub structures: Vec<StructureResidency>,
}

/// Live-bit-cycles of one structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureResidency {
    /// The structure.
    pub structure: Structure,
    /// Total bits in the structure (the injection population).
    pub bits: u64,
    /// Sum over bits of cycles spent ACE (entry-granular upper bound).
    pub live_bit_cycles: u64,
}

/// Queryable per-entry liveness of one structure, built from a golden run
/// with window recording on ([`crate::Sim::enable_liveness`]).
///
/// [`StructureLiveness::is_ace`] answers "could a flip of `bit` applied
/// before cycle `cycle` ever be observed?" — `false` is a *proof* that the
/// fault is masked (the flipped bit is overwritten or abandoned before any
/// read), `true` is merely "not provably dead". All approximations are
/// conservative: unknown bits, out-of-range queries, and always-live
/// offsets (ghost-creating valid bits) answer `true`.
#[derive(Debug, Clone)]
pub struct StructureLiveness {
    structure: Structure,
    bits: u64,
    bits_per_entry: u64,
    /// Bit offset within each entry that is dangerous for the whole run
    /// regardless of occupancy: a flip can *create* state out of nothing
    /// (IQ dest-array valid bits make ghost entries, cache tag-array valid
    /// bits resurrect stale lines), so no occupancy window bounds it.
    always_live_offset: Option<u64>,
    /// Per entry, chronologically sorted inclusive danger windows.
    windows: Vec<Vec<LiveWindow>>,
    /// Per entry, static demand mask of each window (parallel to
    /// `windows`). `None` when the structure carries no static
    /// annotations; then [`StructureLiveness::is_vulnerable`] degrades to
    /// [`StructureLiveness::is_ace`].
    masks: Option<Vec<Vec<u64>>>,
}

impl StructureLiveness {
    pub(crate) fn new(
        structure: Structure,
        bits: u64,
        entries: usize,
        always_live_offset: Option<u64>,
        mut windows: Vec<Vec<LiveWindow>>,
    ) -> StructureLiveness {
        windows.resize_with(entries.max(windows.len()), Vec::new);
        let bits_per_entry = if entries == 0 {
            0
        } else {
            bits / entries as u64
        };
        StructureLiveness {
            structure,
            bits,
            bits_per_entry,
            always_live_offset,
            windows,
            masks: None,
        }
    }

    /// Attaches per-window static demand masks (parallel to the window
    /// lists passed to [`StructureLiveness::new`]). Entries beyond the
    /// mask vector, or windows beyond an entry's mask list, stay
    /// conservative (full demand).
    pub(crate) fn with_masks(mut self, mut masks: Vec<Vec<u64>>) -> StructureLiveness {
        masks.resize_with(self.windows.len(), Vec::new);
        self.masks = Some(masks);
        self
    }

    /// The structure this liveness describes.
    pub fn structure(&self) -> Structure {
        self.structure
    }

    /// Total injectable bits (the fault population per cycle).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Whether a flip of `bit` applied before `cycle` executes could still
    /// be observed (`true` = dangerous / not provably masked).
    pub fn is_ace(&self, bit: u64, cycle: u64) -> bool {
        if self.bits_per_entry == 0 || bit >= self.bits {
            return true; // conservative on anything we cannot attribute
        }
        let entry = (bit / self.bits_per_entry) as usize;
        if self.always_live_offset == Some(bit % self.bits_per_entry) {
            return true;
        }
        let Some(ws) = self.windows.get(entry) else {
            return true;
        };
        // Windows are sorted by start and non-nested (an entry's next
        // lifetime begins at or after the previous one closed), so only
        // the last window starting at or before `cycle` can contain it.
        let idx = ws.partition_point(|w| w.start <= cycle);
        idx > 0 && ws[idx - 1].end >= cycle
    }

    /// Like [`StructureLiveness::is_ace`], but additionally consults the
    /// static demand mask of every danger window covering `cycle`: a flip
    /// of `bit` is vulnerable only if some covering window demands that
    /// bit. Without attached masks this is exactly `is_ace`, so the
    /// static answer is always a subset refinement of the dynamic one.
    pub fn is_vulnerable(&self, bit: u64, cycle: u64) -> bool {
        let Some(masks) = &self.masks else {
            return self.is_ace(bit, cycle);
        };
        if self.bits_per_entry == 0 || bit >= self.bits {
            return true; // conservative on anything we cannot attribute
        }
        let entry = (bit / self.bits_per_entry) as usize;
        let off = bit % self.bits_per_entry;
        if self.always_live_offset == Some(off) || off >= 64 {
            return true;
        }
        let (Some(ws), Some(ms)) = (self.windows.get(entry), masks.get(entry)) else {
            return true;
        };
        let idx = ws.partition_point(|w| w.start <= cycle);
        // Adjacent windows may share a boundary cycle (a write closes the
        // previous window and opens the next on the same cycle), so every
        // window still covering `cycle` must agree the bit is dead. Window
        // ends are monotone in start order (lifetimes do not nest), so
        // scanning backwards until one ends before `cycle` sees them all.
        let mut i = idx;
        while i > 0 {
            i -= 1;
            if ws[i].end < cycle {
                break;
            }
            let demand = ms.get(i).copied().unwrap_or(!0);
            if demand & (1u64 << off) != 0 {
                return true;
            }
        }
        false
    }

    /// The recorded danger windows of one entry (for diagnostics/tests).
    pub fn entry_windows(&self, entry: usize) -> &[LiveWindow] {
        self.windows.get(entry).map_or(&[], Vec::as_slice)
    }

    /// Exact number of `(bit, cycle)` sites with `cycle < cycles` for which
    /// [`StructureLiveness::is_vulnerable`] answers `true` — the population
    /// an importance sampler draws from and the numerator of its
    /// Horvitz–Thompson weight. Mirrors `is_vulnerable` case for case,
    /// including every conservative fallback (unattributable bits,
    /// always-live offsets, entries beyond the recorded windows, offsets
    /// beyond the 64-bit demand masks).
    pub fn vulnerable_site_count(&self, cycles: u64) -> u64 {
        if cycles == 0 || self.bits == 0 {
            return 0;
        }
        let total = self.bits as u128 * cycles as u128;
        if self.bits_per_entry == 0 {
            return total.min(u64::MAX as u128) as u64;
        }
        let bpe = self.bits_per_entry;
        let mut live: u128 = 0;
        for e in 0..self.bits.div_ceil(bpe) {
            let entry_bits = bpe.min(self.bits - e * bpe);
            let Some(ws) = self.windows.get(e as usize) else {
                // Bits we cannot attribute to a recorded entry stay
                // conservative, exactly like the query path.
                live += entry_bits as u128 * cycles as u128;
                continue;
            };
            let union_all = union_cycles(ws, cycles, |_| true);
            for off in 0..entry_bits {
                live += if self.always_live_offset == Some(off) {
                    cycles as u128
                } else {
                    match &self.masks {
                        None => union_all as u128,
                        Some(masks) => match masks.get(e as usize) {
                            None => cycles as u128,
                            Some(_) if off >= 64 => cycles as u128,
                            Some(ms) => union_cycles(ws, cycles, |i| {
                                ms.get(i).copied().unwrap_or(!0) & (1u64 << off) != 0
                            }) as u128,
                        },
                    }
                };
            }
        }
        live.min(total) as u64
    }

    /// Fraction of the structure's bit-cycles that fall inside a danger
    /// window over `cycles` (an upper bound on the campaign's live draw
    /// rate; `1 - live_fraction` is the expected prune rate).
    pub fn live_fraction(&self, cycles: u64) -> f64 {
        if self.bits == 0 || cycles == 0 {
            return 0.0;
        }
        let mut live_bit_cycles = 0u128;
        let per_entry = self.bits_per_entry as u128;
        for ws in &self.windows {
            for w in ws {
                let end = w.end.min(cycles.saturating_sub(1));
                if end >= w.start {
                    live_bit_cycles += (end - w.start + 1) as u128 * per_entry;
                }
            }
        }
        if self.always_live_offset.is_some() {
            let entries = (self.bits / self.bits_per_entry.max(1)) as u128;
            live_bit_cycles += entries * cycles as u128;
        }
        let total = self.bits as u128 * cycles as u128;
        (live_bit_cycles.min(total)) as f64 / total as f64
    }
}

/// Total cycles within `[0, cycles)` covered by at least one window whose
/// index satisfies `accept`. Windows are sorted by start and inclusive;
/// overlap (shared boundary cycles) is counted once by tracking the
/// furthest cycle already covered.
fn union_cycles(ws: &[LiveWindow], cycles: u64, accept: impl Fn(usize) -> bool) -> u64 {
    let mut total = 0u64;
    let mut covered: Option<u64> = None;
    for (i, w) in ws.iter().enumerate() {
        if w.start >= cycles {
            break; // sorted by start: nothing later can reach back in range
        }
        if !accept(i) {
            continue;
        }
        let end = w.end.min(cycles - 1);
        if end < w.start {
            continue;
        }
        match covered {
            Some(ce) if w.start <= ce => {
                if end > ce {
                    total += end - ce;
                    covered = Some(end);
                }
            }
            _ => {
                total += end - w.start + 1;
                covered = Some(end);
            }
        }
    }
    total
}

/// Every structure's [`StructureLiveness`] from one golden run, plus the
/// run length. The campaign prune filter queries this before deciding to
/// fork a child simulator.
#[derive(Debug, Clone)]
pub struct LivenessMap {
    cycles: u64,
    structures: Vec<StructureLiveness>,
}

impl LivenessMap {
    pub(crate) fn new(cycles: u64, structures: Vec<StructureLiveness>) -> LivenessMap {
        LivenessMap { cycles, structures }
    }

    /// Cycles the golden run took.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The liveness of one structure, if tracked.
    pub fn structure(&self, structure: Structure) -> Option<&StructureLiveness> {
        self.structures.iter().find(|s| s.structure == structure)
    }

    /// Whether a flip of `(bit, cycle)` in `structure` could be observed.
    /// Conservative: `true` for untracked structures.
    pub fn is_ace(&self, structure: Structure, bit: u64, cycle: u64) -> bool {
        self.structure(structure)
            .is_none_or(|s| s.is_ace(bit, cycle))
    }

    /// Like [`LivenessMap::is_ace`], but consults static per-window demand
    /// masks where attached (currently the register file). Conservative:
    /// `true` for untracked structures; never `true` where `is_ace` is
    /// `false`.
    pub fn is_vulnerable(&self, structure: Structure, bit: u64, cycle: u64) -> bool {
        self.structure(structure)
            .is_none_or(|s| s.is_vulnerable(bit, cycle))
    }

    /// Exact vulnerable-site count of one structure over `cycles`, or
    /// `None` when the structure is untracked (every site is then
    /// conservative-live and the caller should use the full population).
    pub fn vulnerable_site_count(&self, structure: Structure, cycles: u64) -> Option<u64> {
        self.structure(structure)
            .map(|s| s.vulnerable_site_count(cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rf_interval_is_write_to_last_read() {
        let mut r = CoreResidency::new(8);
        r.rf_write(3, 10, !0);
        r.rf_read(3, 15);
        r.rf_read(3, 40);
        r.rf_free(3);
        assert_eq!(r.totals().0, 30);
    }

    #[test]
    fn unread_register_is_unace() {
        let mut r = CoreResidency::new(8);
        r.rf_write(2, 10, !0);
        r.rf_free(2);
        assert_eq!(r.totals().0, 0);
    }

    #[test]
    fn zero_register_writes_are_ignored() {
        let mut r = CoreResidency::new(8);
        r.rf_open(0, 0);
        r.rf_write(0, 50, !0); // discarded by hardware, must not reset the interval
        r.rf_read(0, 70);
        assert_eq!(r.totals().0, 70);
    }

    #[test]
    fn squashed_queue_entries_are_unace() {
        let mut r = CoreResidency::new(4);
        r.rob_push(5, 0, false, 100);
        r.rob_push(6, 1, true, 101);
        r.squash_queues(5, 110);
        r.rob_pop(5, 120);
        r.rob_pop(6, 130); // already squashed: no effect
        let (_, rob, rob_dest, ..) = r.totals();
        assert_eq!(rob, 20);
        assert_eq!(rob_dest, 0);
    }

    #[test]
    fn squashed_entries_stay_dangerous_until_the_squash() {
        let mut r = CoreResidency::new(4);
        r.set_record_windows(true);
        r.rob_push(6, 1, true, 101);
        r.squash_queues(5, 110);
        let w = r.live_windows();
        assert_eq!(
            w.rob[1],
            vec![LiveWindow {
                start: 101,
                end: 110
            }],
            "occupancy must close at the squash cycle, not vanish"
        );
    }

    #[test]
    fn rf_windows_cover_write_to_last_read_only() {
        let mut r = CoreResidency::new(8);
        r.set_record_windows(true);
        r.rf_write(3, 10, !0);
        r.rf_read(3, 40);
        r.rf_free(3);
        r.rf_write(3, 60, !0); // reallocated, never read, still open at end
        let w = r.live_windows();
        assert_eq!(
            w.rf[3],
            vec![
                LiveWindow { start: 10, end: 40 },
                LiveWindow { start: 60, end: 60 }
            ]
        );
    }

    #[test]
    fn rf_masks_stay_aligned_with_windows() {
        let mut r = CoreResidency::new(8);
        r.set_record_windows(true);
        r.rf_write(3, 10, 0x00ff);
        r.rf_read(3, 40);
        r.rf_free(3);
        r.rf_write(3, 60, 0x0f00); // still open at the end of the run
        let w = r.live_windows();
        assert_eq!(
            w.rf[3],
            vec![
                LiveWindow { start: 10, end: 40 },
                LiveWindow { start: 60, end: 60 }
            ]
        );
        assert_eq!(w.rf_masks[3], vec![0x00ff, 0x0f00]);
    }

    #[test]
    fn masked_window_bits_are_unvulnerable_but_ace() {
        let windows = vec![vec![
            LiveWindow { start: 10, end: 20 },
            LiveWindow { start: 20, end: 50 },
        ]];
        let masks = vec![vec![0b0001u64, 0b0010u64]];
        let s = StructureLiveness::new(Structure::RegFile, 64, 1, None, windows).with_masks(masks);
        // Inside the first window only: demand follows that window's mask.
        assert!(s.is_vulnerable(0, 15));
        assert!(!s.is_vulnerable(1, 15), "bit 1 not demanded by window 0");
        assert!(s.is_ace(1, 15), "but it is dynamically live");
        // Boundary cycle shared by both windows: either demand suffices.
        assert!(s.is_vulnerable(0, 20));
        assert!(s.is_vulnerable(1, 20));
        assert!(!s.is_vulnerable(2, 20));
        // Inside the second window only.
        assert!(!s.is_vulnerable(0, 30));
        assert!(s.is_vulnerable(1, 30));
        // Outside every window: dead either way.
        assert!(!s.is_vulnerable(0, 9));
        assert!(!s.is_vulnerable(0, 51));
        // Out-of-range stays conservative.
        assert!(s.is_vulnerable(9999, 15));
    }

    #[test]
    fn maskless_vulnerability_degrades_to_ace() {
        let windows = vec![vec![LiveWindow { start: 5, end: 9 }]];
        let s = StructureLiveness::new(Structure::RegFile, 64, 1, None, windows);
        for (bit, cycle) in [(0, 7), (63, 7), (0, 4), (0, 10)] {
            assert_eq!(s.is_vulnerable(bit, cycle), s.is_ace(bit, cycle));
        }
    }

    #[test]
    fn open_queue_entries_stay_dangerous_forever() {
        let mut r = CoreResidency::new(4);
        r.set_record_windows(true);
        r.lq_push(9, 2, 50);
        let w = r.live_windows();
        assert_eq!(
            w.lq[2],
            vec![LiveWindow {
                start: 50,
                end: u64::MAX
            }]
        );
    }

    #[test]
    fn dirty_eviction_extends_to_eviction_cycle() {
        let mut c = CacheResidency::new(2);
        c.on_fill(0, 10);
        c.on_use(0, 20);
        c.on_evict(0, 90, true);
        assert_eq!(c.total(), 80, "writeback reads the line at eviction");

        c.on_fill(1, 10);
        c.on_use(1, 20);
        c.on_evict(1, 90, false);
        assert_eq!(c.total(), 80 + 10, "clean line dies at its last use");
    }

    #[test]
    fn open_lines_close_at_last_use() {
        let mut c = CacheResidency::new(1);
        c.on_fill(0, 5);
        c.on_use(0, 25);
        assert_eq!(c.total(), 20);
    }

    #[test]
    fn cache_tag_windows_outlive_data_windows() {
        let mut c = CacheResidency::new(2);
        c.set_record_windows(true);
        c.on_fill(0, 10);
        c.on_use(0, 20);
        c.on_evict(0, 90, false); // clean: data dies at 20, tag at 90
        c.on_fill(1, 30); // still valid at end of run
        c.on_use(1, 40);
        let (data, tag) = c.live_windows();
        assert_eq!(data[0], vec![LiveWindow { start: 10, end: 20 }]);
        assert_eq!(tag[0], vec![LiveWindow { start: 10, end: 90 }]);
        assert_eq!(data[1], vec![LiveWindow { start: 30, end: 40 }]);
        assert_eq!(
            tag[1],
            vec![LiveWindow {
                start: 30,
                end: u64::MAX
            }]
        );
    }

    #[test]
    fn liveness_map_is_conservative_and_window_exact() {
        let windows = vec![
            vec![LiveWindow { start: 10, end: 20 }],
            Vec::new(), // entry 1 never occupied
        ];
        let s = StructureLiveness::new(Structure::LoadQueue, 2 * 32, 2, None, windows);
        assert!(s.is_ace(0, 10), "window start is inclusive");
        assert!(s.is_ace(31, 20), "window end is inclusive");
        assert!(!s.is_ace(0, 9), "before the window is dead");
        assert!(!s.is_ace(0, 21), "after the window is dead");
        assert!(!s.is_ace(32, 15), "never-occupied entry is dead");
        assert!(s.is_ace(9999, 15), "out-of-range bits are conservative");
        let map = LivenessMap::new(100, vec![s]);
        assert!(
            map.is_ace(Structure::RegFile, 0, 0),
            "untracked structures are conservative"
        );
        assert!(!map.is_ace(Structure::LoadQueue, 0, 9));
    }

    #[test]
    fn always_live_offset_defeats_occupancy() {
        // 9-bit entries with the valid bit at offset 8, like the IQ dest
        // array: a ghost flip on a free slot must stay dangerous.
        let s = StructureLiveness::new(Structure::IqDest, 4 * 9, 4, Some(8), vec![Vec::new(); 4]);
        assert!(s.is_ace(8, 500), "valid bit of a free entry is live");
        assert!(!s.is_ace(7, 500), "payload bits of a free entry are dead");
    }

    /// Exhaustive reference: re-asks `is_vulnerable` for every site.
    fn brute_force_vulnerable(s: &StructureLiveness, cycles: u64) -> u64 {
        let mut n = 0u64;
        for bit in 0..s.bits() {
            for cycle in 0..cycles {
                if s.is_vulnerable(bit, cycle) {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn vulnerable_site_count_matches_brute_force() {
        let cases: Vec<(&str, StructureLiveness)> = vec![
            (
                "masked rf with boundary-sharing windows",
                StructureLiveness::new(
                    Structure::RegFile,
                    2 * 64,
                    2,
                    None,
                    vec![
                        vec![
                            LiveWindow { start: 10, end: 20 },
                            LiveWindow { start: 20, end: 50 },
                            LiveWindow { start: 60, end: 60 },
                        ],
                        vec![LiveWindow { start: 5, end: 90 }],
                    ],
                )
                .with_masks(vec![vec![0b0001, 0b0110, !0], vec![0x00ff]]),
            ),
            (
                "maskless queue with an open-forever entry",
                StructureLiveness::new(
                    Structure::LoadQueue,
                    3 * 32,
                    3,
                    None,
                    vec![
                        vec![LiveWindow { start: 0, end: 9 }],
                        vec![LiveWindow {
                            start: 40,
                            end: u64::MAX,
                        }],
                        Vec::new(),
                    ],
                ),
            ),
            (
                "always-live valid bit defeats occupancy",
                StructureLiveness::new(
                    Structure::IqDest,
                    4 * 9,
                    4,
                    Some(8),
                    vec![
                        vec![LiveWindow { start: 3, end: 7 }],
                        Vec::new(),
                        vec![LiveWindow { start: 50, end: 80 }],
                        Vec::new(),
                    ],
                ),
            ),
            (
                "ragged bit count spills past the recorded entries",
                StructureLiveness::new(
                    Structure::RobPc,
                    10,
                    3,
                    None,
                    vec![vec![LiveWindow { start: 1, end: 2 }], Vec::new()],
                ),
            ),
            (
                "zero entries stay fully conservative",
                StructureLiveness::new(Structure::RobPc, 8, 0, None, Vec::new()),
            ),
            (
                "masked entry wider than the 64-bit demand mask",
                StructureLiveness::new(
                    Structure::RegFile,
                    2 * 80,
                    2,
                    None,
                    vec![
                        vec![LiveWindow { start: 10, end: 30 }],
                        vec![LiveWindow { start: 0, end: 4 }],
                    ],
                )
                .with_masks(vec![vec![0b1010], vec![0b0001]]),
            ),
        ];
        for (name, s) in &cases {
            for cycles in [0u64, 1, 7, 55, 100] {
                assert_eq!(
                    s.vulnerable_site_count(cycles),
                    brute_force_vulnerable(s, cycles),
                    "{name} at {cycles} cycles"
                );
            }
        }
    }

    #[test]
    fn live_fraction_counts_window_bit_cycles() {
        let windows = vec![vec![LiveWindow { start: 0, end: 9 }], Vec::new()];
        let s = StructureLiveness::new(Structure::LoadQueue, 2 * 32, 2, None, windows);
        // One of two entries live for 10 of 100 cycles → 5% of bit-cycles.
        let f = s.live_fraction(100);
        assert!((f - 0.05).abs() < 1e-12, "got {f}");
    }
}
