//! Set-associative write-back cache with bit-accurate, fault-injectable tag
//! and data arrays.
//!
//! Unlike a purely statistical cache model, lines hold **real data**: every
//! value that reaches the pipeline flows through these arrays, so a flipped
//! bit propagates (or dies on a clean eviction) exactly as it would in
//! hardware. Tags are stored at a fixed 32-bit physical-address width, so
//! flips in high tag bits turn a line into one that aliases an unmapped
//! address — a dirty writeback of such a line raises the same
//! out-of-system-map condition the paper's simulator reports as an Assert.

use crate::config::CacheGeometry;
use crate::cow::CowVec;

/// Modeled physical address width (bits) used for tag sizing.
pub const PHYS_ADDR_BITS: u32 = 32;

/// Chunk size (elements) for the per-line metadata arrays.
const META_CHUNK: usize = 64;

/// Chunk size (bytes) for the data array; rounded up so a line never
/// straddles a chunk boundary.
const DATA_CHUNK: usize = 4096;

/// One set-associative cache level.
///
/// All arrays live in copy-on-write chunked storage ([`CowVec`]): a forked
/// child shares every chunk with its parent until one of them writes it, so
/// `Cache::clone()` costs refcount bumps instead of a megabyte `memcpy`, and
/// state comparisons skip still-shared chunks entirely.
#[derive(Debug, Clone)]
pub struct Cache {
    geom: CacheGeometry,
    tag_width: u32,
    tags: CowVec<u64>,
    valid: CowVec<bool>,
    dirty: CowVec<bool>,
    lru: CowVec<u64>,
    data: CowVec<u8>,
    use_counter: u64,
    /// Statistics: demand hits / misses.
    pub hits: u64,
    /// Statistics: demand misses.
    pub misses: u64,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(geom: CacheGeometry) -> Cache {
        let lines = geom.lines();
        let tag_width = PHYS_ADDR_BITS - geom.set_bits() - geom.offset_bits();
        let data_chunk = DATA_CHUNK.max(geom.line_bytes as usize);
        Cache {
            geom,
            tag_width,
            tags: CowVec::new(lines, META_CHUNK, 0),
            valid: CowVec::new(lines, META_CHUNK, false),
            dirty: CowVec::new(lines, META_CHUNK, false),
            lru: CowVec::new(lines, META_CHUNK, 0),
            data: CowVec::new(lines * geom.line_bytes as usize, data_chunk, 0),
            use_counter: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether two caches hold identical execution-relevant state: tags,
    /// valid/dirty bits, per-set LRU *ordering*, and line data. Hit/miss
    /// statistics never feed back into execution and are excluded.
    ///
    /// The LRU comparison is deliberately relative, not stamp-for-stamp.
    /// `use_counter` is a global monotone clock and the raw `lru` stamps are
    /// samples of it, so a child whose transient miss pattern differed from
    /// the golden run carries permanently offset stamps even after its
    /// lines, data, and recency *order* fully re-converge. The only consumer
    /// of the stamps is [`Cache::victim`], which (a) prefers invalid ways by
    /// index — determined by `valid`, compared exactly — and (b) otherwise
    /// takes the minimum stamp in the set, first index winning ties. Two
    /// caches therefore behave identically iff every set's valid ways have
    /// the same pairwise stamp ordering (ties included); and because every
    /// future touch assigns a fresh set-maximal stamp in both machines, equal
    /// orderings evolve identically forever. Stamps of invalid ways are dead
    /// (rewritten by `fill` before `victim` can ever consult them) and are
    /// ignored.
    pub fn state_eq(&self, other: &Cache) -> bool {
        self.valid == other.valid
            && self.dirty == other.dirty
            && self.tags == other.tags
            && self.data == other.data
            && self.lru_order_eq(other)
    }

    /// Compares per-set relative LRU order, walking only the sets that
    /// overlap lru chunks with genuinely different contents.
    fn lru_order_eq(&self, other: &Cache) -> bool {
        self.lru
            .differing_ranges(&other.lru)
            .iter()
            .all(|&(start, end)| {
                let first_set = start / self.geom.ways;
                let last_set = (end - 1) / self.geom.ways;
                (first_set..=last_set).all(|set| self.set_order_eq(other, set))
            })
    }

    /// Whether one set's valid ways have the same pairwise recency ordering
    /// in both caches. Callers have already established `valid` equality.
    fn set_order_eq(&self, other: &Cache, set: usize) -> bool {
        let base = set * self.geom.ways;
        for i in 0..self.geom.ways {
            if !self.valid[base + i] {
                continue;
            }
            for j in (i + 1)..self.geom.ways {
                if !self.valid[base + j] {
                    continue;
                }
                let ours = self.lru[base + i].cmp(&self.lru[base + j]);
                let theirs = other.lru[base + i].cmp(&other.lru[base + j]);
                if ours != theirs {
                    return false;
                }
            }
        }
        true
    }

    /// Number of storage chunks (across all five arrays) still physically
    /// shared with `other` — the complement of what a fork has had to copy.
    pub fn shared_state_chunks(&self, other: &Cache) -> usize {
        self.tags.shared_chunk_count(&other.tags)
            + self.valid.shared_chunk_count(&other.valid)
            + self.dirty.shared_chunk_count(&other.dirty)
            + self.lru.shared_chunk_count(&other.lru)
            + self.data.shared_chunk_count(&other.data)
    }

    /// Total number of storage chunks across all five arrays.
    pub fn state_chunk_count(&self) -> usize {
        self.tags.chunk_count()
            + self.valid.chunk_count()
            + self.dirty.chunk_count()
            + self.lru.chunk_count()
            + self.data.chunk_count()
    }

    /// Geometry of this cache.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Width of a stored tag in bits.
    pub fn tag_width(&self) -> u32 {
        self.tag_width
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.geom.offset_bits()) & ((self.geom.sets() as u64) - 1)) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        (addr >> (self.geom.offset_bits() + self.geom.set_bits())) & ((1u64 << self.tag_width) - 1)
    }

    /// Looks up `addr`; on a hit returns the line index and refreshes LRU.
    pub fn lookup(&mut self, addr: u64) -> Option<usize> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for way in 0..self.geom.ways {
            let line = set * self.geom.ways + way;
            if self.valid[line] && self.tags[line] == tag {
                self.use_counter += 1;
                self.lru.set(line, self.use_counter);
                self.hits += 1;
                return Some(line);
            }
        }
        self.misses += 1;
        None
    }

    /// Chooses a victim line in `addr`'s set (an invalid way if any,
    /// otherwise least-recently used).
    pub fn victim(&self, addr: u64) -> usize {
        let set = self.set_of(addr);
        let base = set * self.geom.ways;
        for way in 0..self.geom.ways {
            if !self.valid[base + way] {
                return base + way;
            }
        }
        (0..self.geom.ways)
            .map(|w| base + w)
            .min_by_key(|&l| self.lru[l])
            .expect("cache has at least one way")
    }

    /// Whether the line is valid.
    pub fn is_valid(&self, line: usize) -> bool {
        self.valid[line]
    }

    /// Whether the line is dirty.
    pub fn is_dirty(&self, line: usize) -> bool {
        self.dirty[line]
    }

    /// Marks a line dirty (after a write hit).
    pub fn set_dirty(&mut self, line: usize, dirty: bool) {
        self.dirty.set(line, dirty);
    }

    /// The data bytes of a line.
    pub fn line_data(&self, line: usize) -> &[u8] {
        let lb = self.geom.line_bytes as usize;
        self.data.slice(line * lb, lb)
    }

    /// Mutable data bytes of a line.
    pub fn line_data_mut(&mut self, line: usize) -> &mut [u8] {
        let lb = self.geom.line_bytes as usize;
        self.data.slice_mut(line * lb, lb)
    }

    /// Installs a line for `addr` at `line` with the given contents.
    pub fn fill(&mut self, line: usize, addr: u64, contents: &[u8]) {
        self.tags.set(line, self.tag_of(addr));
        self.valid.set(line, true);
        self.dirty.set(line, false);
        self.use_counter += 1;
        self.lru.set(line, self.use_counter);
        self.line_data_mut(line).copy_from_slice(contents);
    }

    /// Invalidates a line.
    pub fn invalidate(&mut self, line: usize) {
        self.valid.set(line, false);
        self.dirty.set(line, false);
    }

    /// Reconstructs the base address a line maps to from its (possibly
    /// corrupted) stored tag. The result may lie outside guest memory.
    pub fn reconstruct_addr(&self, line: usize) -> u64 {
        let set = (line / self.geom.ways) as u64;
        (self.tags[line] << (self.geom.offset_bits() + self.geom.set_bits()))
            | (set << self.geom.offset_bits())
    }

    /// Total injectable bits in the data array.
    pub fn data_bits(&self) -> u64 {
        self.data.len() as u64 * 8
    }

    /// Total injectable bits in the tag array (tag + valid + dirty per line).
    pub fn tag_bits(&self) -> u64 {
        self.tags.len() as u64 * (self.tag_width as u64 + 2)
    }

    /// Flips one bit of the data array.
    pub fn flip_data_bit(&mut self, bit: u64) {
        assert!(bit < self.data_bits(), "data bit index out of range");
        *self.data.get_mut((bit / 8) as usize) ^= 1 << (bit % 8);
    }

    /// Flips one bit of the tag array (tag value, valid, or dirty bit).
    pub fn flip_tag_bit(&mut self, bit: u64) {
        assert!(bit < self.tag_bits(), "tag bit index out of range");
        let per_line = self.tag_width as u64 + 2;
        let line = (bit / per_line) as usize;
        let field = bit % per_line;
        if field < self.tag_width as u64 {
            *self.tags.get_mut(line) ^= 1 << field;
        } else if field == self.tag_width as u64 {
            let v = self.valid[line];
            self.valid.set(line, !v);
        } else {
            let d = self.dirty[line];
            self.dirty.set(line, !d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 64B = 512 B.
        Cache::new(CacheGeometry {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(c.lookup(0x1000).is_none());
        let v = c.victim(0x1000);
        c.fill(v, 0x1000, &[7u8; 64]);
        let line = c.lookup(0x1000).expect("hit after fill");
        assert_eq!(line, v);
        assert_eq!(c.line_data(line)[0], 7);
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn lru_victim_selection() {
        let mut c = small();
        // Two lines mapping to the same set (set bits = bits 6..8).
        let a = 0x1000u64;
        let b = 0x2000u64; // same set 0, different tag
        let d = 0x3000u64;
        let va = c.victim(a);
        c.fill(va, a, &[1; 64]);
        let vb = c.victim(b);
        assert_ne!(va, vb, "invalid way preferred");
        c.fill(vb, b, &[2; 64]);
        // Touch a so b becomes LRU.
        c.lookup(a);
        let vd = c.victim(d);
        assert_eq!(vd, vb, "least-recently-used way evicted");
    }

    #[test]
    fn reconstruct_addr_roundtrip() {
        let mut c = small();
        for addr in [0x1000u64, 0x2f40, 0x10_0080] {
            let v = c.victim(addr);
            c.fill(v, addr, &[0; 64]);
            assert_eq!(c.reconstruct_addr(v), addr & !63);
        }
    }

    #[test]
    fn data_bit_flip_changes_exactly_one_bit() {
        let mut c = small();
        let v = c.victim(0x1000);
        c.fill(v, 0x1000, &[0; 64]);
        let bit = (v * 64 * 8) as u64 + 13;
        c.flip_data_bit(bit);
        assert_eq!(c.line_data(v)[1], 1 << 5);
        c.flip_data_bit(bit);
        assert_eq!(c.line_data(v)[1], 0);
    }

    #[test]
    fn tag_bit_flip_breaks_and_restores_hit() {
        let mut c = small();
        let v = c.victim(0x1000);
        c.fill(v, 0x1000, &[0; 64]);
        let per_line = c.tag_width() as u64 + 2;
        c.flip_tag_bit(v as u64 * per_line); // lowest tag bit
        assert!(c.lookup(0x1000).is_none(), "corrupted tag must miss");
        c.flip_tag_bit(v as u64 * per_line);
        assert!(c.lookup(0x1000).is_some());
    }

    #[test]
    fn valid_bit_flip_drops_line() {
        let mut c = small();
        let v = c.victim(0x1000);
        c.fill(v, 0x1000, &[0; 64]);
        let per_line = c.tag_width() as u64 + 2;
        c.flip_tag_bit(v as u64 * per_line + c.tag_width() as u64);
        assert!(!c.is_valid(v));
        assert!(c.lookup(0x1000).is_none());
    }

    #[test]
    fn tag_flip_can_alias_another_address() {
        let mut c = small();
        let v = c.victim(0x1000);
        c.fill(v, 0x1000, &[9; 64]);
        // Tag = addr >> 8 here (4 sets × 64 B lines); flipping stored-tag
        // bit 0 turns tag 0x10 into 0x11, i.e. the line aliases 0x1100.
        let per_line = c.tag_width() as u64 + 2;
        c.flip_tag_bit(v as u64 * per_line);
        assert_eq!(c.lookup(0x1100), Some(v), "aliased hit with stale data");
        assert_eq!(c.line_data(v)[0], 9);
    }

    #[test]
    fn state_eq_ignores_absolute_lru_stamps() {
        // Same recency *order*, different absolute stamps: a transient extra
        // miss elsewhere advanced one machine's use_counter further. The old
        // stamp-for-stamp comparison could never call these equal again.
        let mut a = small();
        let mut b = small();
        for addr in [0x1000u64, 0x2000, 0x1000] {
            let v = a.victim(addr);
            if a.lookup(addr).is_none() {
                a.fill(v, addr, &[0; 64]);
            }
        }
        // b performs the same accesses plus extra touches that only advance
        // the clock without changing order (re-hitting the same line).
        for addr in [0x1000u64, 0x2000, 0x1000, 0x1000, 0x1000] {
            let v = b.victim(addr);
            if b.lookup(addr).is_none() {
                b.fill(v, addr, &[0; 64]);
            }
        }
        assert!(a.state_eq(&b), "equal order must compare equal");
        assert!(b.state_eq(&a));
    }

    #[test]
    fn state_eq_rejects_different_lru_order() {
        let mut a = small();
        let mut b = small();
        for c in [&mut a, &mut b] {
            for addr in [0x1000u64, 0x2000] {
                let v = c.victim(addr);
                c.fill(v, addr, &[0; 64]);
            }
        }
        // Touch different lines so the recency order genuinely diverges.
        a.lookup(0x1000);
        b.lookup(0x2000);
        assert!(
            !a.state_eq(&b),
            "different victim choice must not compare equal"
        );
    }

    #[test]
    fn state_eq_ignores_stale_stamps_of_invalid_lines() {
        let mut a = small();
        let mut b = small();
        // Both fill the same line identically; a then re-hits it (advancing
        // only its stamp) before both invalidate. The stamps now disagree
        // but the line is dead: fill rewrites the stamp before victim can
        // ever consult it.
        for c in [&mut a, &mut b] {
            let v = c.victim(0x1000);
            c.fill(v, 0x1000, &[0; 64]);
        }
        a.lookup(0x1000);
        let la = a.lookup(0x1000).unwrap();
        a.invalidate(la);
        let lb = b.lookup(0x1000).unwrap();
        b.invalidate(lb);
        assert!(a.state_eq(&b) && b.state_eq(&a), "dead stamps are ignored");
    }

    #[test]
    fn clone_shares_all_chunks_until_written() {
        let mut a = small();
        let v = a.victim(0x1000);
        a.fill(v, 0x1000, &[5; 64]);
        let mut b = a.clone();
        assert_eq!(a.shared_state_chunks(&b), a.state_chunk_count());
        b.flip_data_bit((v * 64 * 8) as u64);
        assert_eq!(
            a.shared_state_chunks(&b),
            a.state_chunk_count() - 1,
            "a single flip unshares exactly one chunk"
        );
        assert!(!a.state_eq(&b));
        b.flip_data_bit((v * 64 * 8) as u64);
        assert!(a.state_eq(&b), "flip undone: equal again despite unsharing");
    }

    #[test]
    fn bit_counts_match_table_1_formulas() {
        let c = Cache::new(CacheGeometry {
            size_bytes: 32 * 1024,
            ways: 2,
            line_bytes: 64,
        });
        assert_eq!(c.data_bits(), 32 * 1024 * 8);
        // 512 lines × (18-bit tag + valid + dirty).
        assert_eq!(c.tag_width(), 32 - 8 - 6);
        assert_eq!(c.tag_bits(), 512 * 20);
    }
}
