//! Set-associative write-back cache with bit-accurate, fault-injectable tag
//! and data arrays.
//!
//! Unlike a purely statistical cache model, lines hold **real data**: every
//! value that reaches the pipeline flows through these arrays, so a flipped
//! bit propagates (or dies on a clean eviction) exactly as it would in
//! hardware. Tags are stored at a fixed 32-bit physical-address width, so
//! flips in high tag bits turn a line into one that aliases an unmapped
//! address — a dirty writeback of such a line raises the same
//! out-of-system-map condition the paper's simulator reports as an Assert.

use crate::config::CacheGeometry;

/// Modeled physical address width (bits) used for tag sizing.
pub const PHYS_ADDR_BITS: u32 = 32;

/// One set-associative cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    geom: CacheGeometry,
    tag_width: u32,
    tags: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    lru: Vec<u64>,
    data: Vec<u8>,
    use_counter: u64,
    /// Statistics: demand hits / misses.
    pub hits: u64,
    /// Statistics: demand misses.
    pub misses: u64,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(geom: CacheGeometry) -> Cache {
        let lines = geom.lines();
        let tag_width = PHYS_ADDR_BITS - geom.set_bits() - geom.offset_bits();
        Cache {
            geom,
            tag_width,
            tags: vec![0; lines],
            valid: vec![false; lines],
            dirty: vec![false; lines],
            lru: vec![0; lines],
            data: vec![0; lines * geom.line_bytes as usize],
            use_counter: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether two caches hold identical execution-relevant state: tags,
    /// valid/dirty bits, LRU ordering, and line data. Hit/miss statistics
    /// are deliberately excluded — they never feed back into execution, so
    /// two states that agree on everything else evolve identically.
    pub fn state_eq(&self, other: &Cache) -> bool {
        self.use_counter == other.use_counter
            && self.valid == other.valid
            && self.dirty == other.dirty
            && self.tags == other.tags
            && self.lru == other.lru
            && self.data == other.data
    }

    /// Geometry of this cache.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Width of a stored tag in bits.
    pub fn tag_width(&self) -> u32 {
        self.tag_width
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.geom.offset_bits()) & ((self.geom.sets() as u64) - 1)) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        (addr >> (self.geom.offset_bits() + self.geom.set_bits())) & ((1u64 << self.tag_width) - 1)
    }

    /// Looks up `addr`; on a hit returns the line index and refreshes LRU.
    pub fn lookup(&mut self, addr: u64) -> Option<usize> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for way in 0..self.geom.ways {
            let line = set * self.geom.ways + way;
            if self.valid[line] && self.tags[line] == tag {
                self.use_counter += 1;
                self.lru[line] = self.use_counter;
                self.hits += 1;
                return Some(line);
            }
        }
        self.misses += 1;
        None
    }

    /// Chooses a victim line in `addr`'s set (an invalid way if any,
    /// otherwise least-recently used).
    pub fn victim(&self, addr: u64) -> usize {
        let set = self.set_of(addr);
        let base = set * self.geom.ways;
        for way in 0..self.geom.ways {
            if !self.valid[base + way] {
                return base + way;
            }
        }
        (0..self.geom.ways)
            .map(|w| base + w)
            .min_by_key(|&l| self.lru[l])
            .expect("cache has at least one way")
    }

    /// Whether the line is valid.
    pub fn is_valid(&self, line: usize) -> bool {
        self.valid[line]
    }

    /// Whether the line is dirty.
    pub fn is_dirty(&self, line: usize) -> bool {
        self.dirty[line]
    }

    /// Marks a line dirty (after a write hit).
    pub fn set_dirty(&mut self, line: usize, dirty: bool) {
        self.dirty[line] = dirty;
    }

    /// The data bytes of a line.
    pub fn line_data(&self, line: usize) -> &[u8] {
        let lb = self.geom.line_bytes as usize;
        &self.data[line * lb..(line + 1) * lb]
    }

    /// Mutable data bytes of a line.
    pub fn line_data_mut(&mut self, line: usize) -> &mut [u8] {
        let lb = self.geom.line_bytes as usize;
        &mut self.data[line * lb..(line + 1) * lb]
    }

    /// Installs a line for `addr` at `line` with the given contents.
    pub fn fill(&mut self, line: usize, addr: u64, contents: &[u8]) {
        self.tags[line] = self.tag_of(addr);
        self.valid[line] = true;
        self.dirty[line] = false;
        self.use_counter += 1;
        self.lru[line] = self.use_counter;
        self.line_data_mut(line).copy_from_slice(contents);
    }

    /// Invalidates a line.
    pub fn invalidate(&mut self, line: usize) {
        self.valid[line] = false;
        self.dirty[line] = false;
    }

    /// Reconstructs the base address a line maps to from its (possibly
    /// corrupted) stored tag. The result may lie outside guest memory.
    pub fn reconstruct_addr(&self, line: usize) -> u64 {
        let set = (line / self.geom.ways) as u64;
        (self.tags[line] << (self.geom.offset_bits() + self.geom.set_bits()))
            | (set << self.geom.offset_bits())
    }

    /// Total injectable bits in the data array.
    pub fn data_bits(&self) -> u64 {
        self.data.len() as u64 * 8
    }

    /// Total injectable bits in the tag array (tag + valid + dirty per line).
    pub fn tag_bits(&self) -> u64 {
        self.tags.len() as u64 * (self.tag_width as u64 + 2)
    }

    /// Flips one bit of the data array.
    pub fn flip_data_bit(&mut self, bit: u64) {
        assert!(bit < self.data_bits(), "data bit index out of range");
        self.data[(bit / 8) as usize] ^= 1 << (bit % 8);
    }

    /// Flips one bit of the tag array (tag value, valid, or dirty bit).
    pub fn flip_tag_bit(&mut self, bit: u64) {
        assert!(bit < self.tag_bits(), "tag bit index out of range");
        let per_line = self.tag_width as u64 + 2;
        let line = (bit / per_line) as usize;
        let field = bit % per_line;
        if field < self.tag_width as u64 {
            self.tags[line] ^= 1 << field;
        } else if field == self.tag_width as u64 {
            self.valid[line] = !self.valid[line];
        } else {
            self.dirty[line] = !self.dirty[line];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 64B = 512 B.
        Cache::new(CacheGeometry {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(c.lookup(0x1000).is_none());
        let v = c.victim(0x1000);
        c.fill(v, 0x1000, &[7u8; 64]);
        let line = c.lookup(0x1000).expect("hit after fill");
        assert_eq!(line, v);
        assert_eq!(c.line_data(line)[0], 7);
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn lru_victim_selection() {
        let mut c = small();
        // Two lines mapping to the same set (set bits = bits 6..8).
        let a = 0x1000u64;
        let b = 0x2000u64; // same set 0, different tag
        let d = 0x3000u64;
        let va = c.victim(a);
        c.fill(va, a, &[1; 64]);
        let vb = c.victim(b);
        assert_ne!(va, vb, "invalid way preferred");
        c.fill(vb, b, &[2; 64]);
        // Touch a so b becomes LRU.
        c.lookup(a);
        let vd = c.victim(d);
        assert_eq!(vd, vb, "least-recently-used way evicted");
    }

    #[test]
    fn reconstruct_addr_roundtrip() {
        let mut c = small();
        for addr in [0x1000u64, 0x2f40, 0x10_0080] {
            let v = c.victim(addr);
            c.fill(v, addr, &[0; 64]);
            assert_eq!(c.reconstruct_addr(v), addr & !63);
        }
    }

    #[test]
    fn data_bit_flip_changes_exactly_one_bit() {
        let mut c = small();
        let v = c.victim(0x1000);
        c.fill(v, 0x1000, &[0; 64]);
        let bit = (v * 64 * 8) as u64 + 13;
        c.flip_data_bit(bit);
        assert_eq!(c.line_data(v)[1], 1 << 5);
        c.flip_data_bit(bit);
        assert_eq!(c.line_data(v)[1], 0);
    }

    #[test]
    fn tag_bit_flip_breaks_and_restores_hit() {
        let mut c = small();
        let v = c.victim(0x1000);
        c.fill(v, 0x1000, &[0; 64]);
        let per_line = c.tag_width() as u64 + 2;
        c.flip_tag_bit(v as u64 * per_line); // lowest tag bit
        assert!(c.lookup(0x1000).is_none(), "corrupted tag must miss");
        c.flip_tag_bit(v as u64 * per_line);
        assert!(c.lookup(0x1000).is_some());
    }

    #[test]
    fn valid_bit_flip_drops_line() {
        let mut c = small();
        let v = c.victim(0x1000);
        c.fill(v, 0x1000, &[0; 64]);
        let per_line = c.tag_width() as u64 + 2;
        c.flip_tag_bit(v as u64 * per_line + c.tag_width() as u64);
        assert!(!c.is_valid(v));
        assert!(c.lookup(0x1000).is_none());
    }

    #[test]
    fn tag_flip_can_alias_another_address() {
        let mut c = small();
        let v = c.victim(0x1000);
        c.fill(v, 0x1000, &[9; 64]);
        // Tag = addr >> 8 here (4 sets × 64 B lines); flipping stored-tag
        // bit 0 turns tag 0x10 into 0x11, i.e. the line aliases 0x1100.
        let per_line = c.tag_width() as u64 + 2;
        c.flip_tag_bit(v as u64 * per_line);
        assert_eq!(c.lookup(0x1100), Some(v), "aliased hit with stale data");
        assert_eq!(c.line_data(v)[0], 9);
    }

    #[test]
    fn bit_counts_match_table_1_formulas() {
        let c = Cache::new(CacheGeometry {
            size_bytes: 32 * 1024,
            ways: 2,
            line_bytes: 64,
        });
        assert_eq!(c.data_bits(), 32 * 1024 * 8);
        // 512 lines × (18-bit tag + valid + dirty).
        assert_eq!(c.tag_width(), 32 - 8 - 6);
        assert_eq!(c.tag_bits(), 512 * 20);
    }
}
