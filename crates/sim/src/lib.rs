//! # softerr-sim
//!
//! A cycle-level out-of-order CPU simulator — the study's gem5 stand-in.
//! It models the full pipeline of a modern OoO core (fetch with branch
//! prediction, rename with checkpointed recovery, issue-queue scheduling,
//! load/store queues with forwarding and conservative disambiguation, a
//! write-back two-level cache hierarchy holding real data, and in-order
//! commit) for two machine configurations matching the paper's Table I:
//! a Cortex-A15-like Armv7-class core and a Cortex-A72-like Armv8-class
//! core.
//!
//! Every structure the paper injects faults into exposes bit-accurate
//! state: [`Structure::ALL`] lists the fifteen injectable fields, and
//! [`Sim::flip_bit`] performs a single-event upset. Architectural
//! semantics are byte-compatible with the [`softerr_isa::Emulator`]
//! reference (enforced by the differential test suite).
//!
//! ```
//! use softerr_cc::{Compiler, OptLevel};
//! use softerr_isa::Profile;
//! use softerr_sim::{MachineConfig, Sim, SimOutcome};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Compiler::new(Profile::A64, OptLevel::O2)
//!     .compile("void main() { out(6 * 7); }")?
//!     .program;
//! let mut sim = Sim::new(&MachineConfig::cortex_a72(), &program);
//! match sim.run(100_000) {
//!     SimOutcome::Halted { output, .. } => assert_eq!(output, vec![42]),
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

mod bpred;
mod cache;
mod config;
mod counters;
mod cow;
mod inject;
mod iq;
mod lsq;
mod memsys;
mod pipeline;
mod regs;
mod residency;
mod rob;
mod uop;

pub use cache::{Cache, PHYS_ADDR_BITS};
pub use config::{CacheGeometry, MachineConfig};
pub use counters::{OccupancyHistogram, SimCounters};
pub use cow::CowVec;
pub use inject::Structure;
pub use memsys::{MemErr, MemorySystem};
pub use pipeline::{Sim, SimOutcome, SimStats};
pub use residency::{
    LiveWindow, LivenessMap, ResidencyReport, StructureLiveness, StructureResidency,
};
