//! Machine configurations (paper Table I).

use serde::{Deserialize, Serialize};
use softerr_isa::Profile;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * self.ways as u64)) as usize
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.sets() * self.ways
    }

    /// log2(line size).
    pub fn offset_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// log2(sets).
    pub fn set_bits(&self) -> u32 {
        (self.sets() as u64).trailing_zeros()
    }
}

/// A full machine configuration.
///
/// The two presets reproduce the paper's Table I:
/// [`MachineConfig::cortex_a15`] and [`MachineConfig::cortex_a72`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable name.
    pub name: String,
    /// ISA profile (A32 for the A15-like machine, A64 for the A72-like).
    pub profile: Profile,
    /// L1 instruction cache geometry.
    pub l1i: CacheGeometry,
    /// L1 data cache geometry.
    pub l1d: CacheGeometry,
    /// Unified L2 geometry.
    pub l2: CacheGeometry,
    /// Physical register file size.
    pub phys_regs: usize,
    /// Issue queue entries.
    pub iq_entries: usize,
    /// Load queue entries.
    pub lq_entries: usize,
    /// Store queue entries.
    pub sq_entries: usize,
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions issued to execution per cycle.
    pub issue_width: usize,
    /// Results written back per cycle.
    pub writeback_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// L1 hit latency (cycles).
    pub l1_latency: u64,
    /// L2 hit latency (cycles).
    pub l2_latency: u64,
    /// Main-memory latency (cycles).
    pub mem_latency: u64,
    /// Raw transient-fault rate per bit (FIT/bit), from the paper's §VI.A.
    pub raw_fit_per_bit: f64,
    /// Clock frequency in GHz (used to convert cycles to wall time for FPE).
    pub freq_ghz: f64,
}

impl MachineConfig {
    /// The Cortex-A15-like configuration (Armv7-class, 32-bit).
    pub fn cortex_a15() -> MachineConfig {
        MachineConfig {
            name: "Cortex-A15-like".to_string(),
            profile: Profile::A32,
            l1i: CacheGeometry {
                size_bytes: 32 * 1024,
                ways: 2,
                line_bytes: 64,
            },
            l1d: CacheGeometry {
                size_bytes: 32 * 1024,
                ways: 2,
                line_bytes: 64,
            },
            l2: CacheGeometry {
                size_bytes: 1024 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            phys_regs: 128,
            iq_entries: 32,
            lq_entries: 16,
            sq_entries: 16,
            rob_entries: 40,
            fetch_width: 3,
            issue_width: 6,
            writeback_width: 8,
            commit_width: 8,
            l1_latency: 2,
            l2_latency: 12,
            mem_latency: 80,
            raw_fit_per_bit: 2.59e-5,
            freq_ghz: 1.0,
        }
    }

    /// The Cortex-A72-like configuration (Armv8-class, 64-bit).
    pub fn cortex_a72() -> MachineConfig {
        MachineConfig {
            name: "Cortex-A72-like".to_string(),
            profile: Profile::A64,
            l1i: CacheGeometry {
                size_bytes: 48 * 1024,
                ways: 3,
                line_bytes: 64,
            },
            l1d: CacheGeometry {
                size_bytes: 32 * 1024,
                ways: 2,
                line_bytes: 64,
            },
            l2: CacheGeometry {
                size_bytes: 2 * 1024 * 1024,
                ways: 16,
                line_bytes: 64,
            },
            phys_regs: 192,
            iq_entries: 64,
            lq_entries: 16,
            sq_entries: 16,
            rob_entries: 128,
            fetch_width: 3,
            issue_width: 6,
            writeback_width: 8,
            commit_width: 8,
            l1_latency: 2,
            l2_latency: 12,
            mem_latency: 80,
            raw_fit_per_bit: 9.39e-6,
            freq_ghz: 1.0,
        }
    }

    /// Both paper configurations.
    pub fn paper_machines() -> Vec<MachineConfig> {
        vec![MachineConfig::cortex_a15(), MachineConfig::cortex_a72()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_math() {
        let g = CacheGeometry {
            size_bytes: 32 * 1024,
            ways: 2,
            line_bytes: 64,
        };
        assert_eq!(g.sets(), 256);
        assert_eq!(g.lines(), 512);
        assert_eq!(g.offset_bits(), 6);
        assert_eq!(g.set_bits(), 8);
    }

    #[test]
    fn a72_sets_non_power_of_two_ways() {
        // 48 KB, 3-way: 256 sets of 3 ways.
        let g = MachineConfig::cortex_a72().l1i;
        assert_eq!(g.sets(), 256);
        assert_eq!(g.lines(), 768);
    }

    #[test]
    fn presets_match_table_1() {
        let a15 = MachineConfig::cortex_a15();
        assert_eq!(a15.profile, Profile::A32);
        assert_eq!(a15.phys_regs, 128);
        assert_eq!(a15.rob_entries, 40);
        assert_eq!(a15.iq_entries, 32);
        let a72 = MachineConfig::cortex_a72();
        assert_eq!(a72.profile, Profile::A64);
        assert_eq!(a72.phys_regs, 192);
        assert_eq!(a72.rob_entries, 128);
        assert_eq!(a72.l2.size_bytes, 2 * 1024 * 1024);
        assert!(a72.raw_fit_per_bit < a15.raw_fit_per_bit);
    }
}
