//! Differential validation of the cycle-level simulator against the
//! architectural reference emulator: for every workload, optimization
//! level, and machine, fault-free simulation must produce the same program
//! output and retire the same number of instructions.

use softerr_cc::{Compiler, OptLevel};
use softerr_isa::Emulator;
use softerr_sim::{MachineConfig, Sim, SimOutcome};
use softerr_workloads::{Scale, Workload};

fn machines() -> Vec<MachineConfig> {
    MachineConfig::paper_machines()
}

fn check_program(cfg: &MachineConfig, src: &str, level: OptLevel, what: &str) {
    let compiled = Compiler::new(cfg.profile, level)
        .compile(src)
        .unwrap_or_else(|e| panic!("{what}: compile failed: {e}"));
    let mut emu = Emulator::new(&compiled.program);
    let golden = emu.run(2_000_000_000).expect("emulator trapped");
    assert!(golden.completed, "{what}: emulator did not finish");

    let mut sim = Sim::new(cfg, &compiled.program);
    match sim.run(2_000_000_000) {
        SimOutcome::Halted {
            retired,
            output,
            cycles,
        } => {
            assert_eq!(output, golden.output, "{what}: output mismatch");
            assert_eq!(retired, golden.retired, "{what}: retired-count mismatch");
            assert!(cycles > 0);
        }
        other => panic!("{what}: simulator ended abnormally: {other:?}"),
    }
}

#[test]
fn simple_programs_match_emulator() {
    let cases = [
        "void main() { out(1 + 2 * 3); }",
        "void main() { int s = 0; for (int i = 0; i < 100; i = i + 1) s = s + i; out(s); }",
        "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
         void main() { out(fib(10)); }",
        // Store-to-load forwarding and memory traffic.
        "int g[64];
         void main() {
             for (int i = 0; i < 64; i = i + 1) g[i] = i * i;
             int s = 0;
             for (int i = 0; i < 64; i = i + 1) s = s + g[i];
             out(s);
         }",
        // Data-dependent branches (mispredict exercise).
        "void main() {
             int s = 0;
             for (int i = 0; i < 200; i = i + 1) {
                 if ((i * 7) % 3 == 0) s = s + i; else s = s - 1;
             }
             out(s);
         }",
        // u32 semantics through the pipeline.
        "void main() {
             u32 h = 0x89ABCDEF;
             for (int i = 0; i < 30; i = i + 1) h = (h << 3) ^ (h >> 5) ^ i;
             out(h);
         }",
        // Division (non-pipelined unit) and remainders.
        "void main() {
             int s = 0;
             for (int i = 1; i < 50; i = i + 1) s = s + 10000 / i + 10000 % i;
             out(s);
         }",
    ];
    for cfg in machines() {
        for (k, src) in cases.iter().enumerate() {
            for level in [OptLevel::O0, OptLevel::O2] {
                check_program(
                    &cfg,
                    src,
                    level,
                    &format!("case {k} on {} {level}", cfg.name),
                );
            }
        }
    }
}

#[test]
fn all_workloads_match_emulator_at_all_levels() {
    for cfg in machines() {
        for w in Workload::ALL {
            for level in OptLevel::ALL {
                check_program(
                    &cfg,
                    &w.source(Scale::Tiny),
                    level,
                    &format!("{w} on {} at {level}", cfg.name),
                );
            }
        }
    }
}

#[test]
fn deterministic_across_runs() {
    let cfg = MachineConfig::cortex_a72();
    let compiled = Compiler::new(cfg.profile, OptLevel::O2)
        .compile(&Workload::Qsort.source(Scale::Tiny))
        .unwrap();
    let run = || {
        let mut sim = Sim::new(&cfg, &compiled.program);
        let out = sim.run(100_000_000);
        (out, sim.stats())
    };
    let (o1, s1) = run();
    let (o2, s2) = run();
    assert_eq!(o1, o2);
    assert_eq!(s1, s2, "cycle-exact determinism is required for injection");
}

#[test]
fn sim_collects_meaningful_stats() {
    let cfg = MachineConfig::cortex_a15();
    let compiled = Compiler::new(cfg.profile, OptLevel::O1)
        .compile(&Workload::Dijkstra.source(Scale::Tiny))
        .unwrap();
    let mut sim = Sim::new(&cfg, &compiled.program);
    let out = sim.run(100_000_000);
    assert!(matches!(out, SimOutcome::Halted { .. }));
    let stats = sim.stats();
    assert!(
        stats.cycles > stats.retired / 6,
        "IPC cannot exceed machine width"
    );
    assert!(stats.l1i.0 > 0, "I-cache must see hits");
    assert!(stats.l1d.1 > 0, "cold D-misses must occur");
    assert!(stats.rob_occupancy_sum > 0);
}

#[test]
fn optimized_code_is_faster_in_cycles() {
    // The headline performance effect (paper Fig. 1): O2 beats O0 in wall
    // cycles on both machines for every workload.
    for cfg in machines() {
        for w in [Workload::Qsort, Workload::Sha, Workload::Dijkstra] {
            let src = w.source(Scale::Tiny);
            let cycles = |level: OptLevel| {
                let compiled = Compiler::new(cfg.profile, level).compile(&src).unwrap();
                let mut sim = Sim::new(&cfg, &compiled.program);
                match sim.run(2_000_000_000) {
                    SimOutcome::Halted { cycles, .. } => cycles,
                    other => panic!("{other:?}"),
                }
            };
            let (c0, c2) = (cycles(OptLevel::O0), cycles(OptLevel::O2));
            assert!(
                c2 < c0,
                "{w} on {}: O2 ({c2}) should beat O0 ({c0})",
                cfg.name
            );
        }
    }
}
