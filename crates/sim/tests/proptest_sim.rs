//! Property-based differential testing of the simulator against the
//! reference emulator on randomly generated MiniC programs.

use proptest::prelude::*;
use softerr_cc::{Compiler, OptLevel};
use softerr_isa::{Emulator, Profile};
use softerr_sim::{MachineConfig, Sim, SimOutcome};

/// Renders a random but well-defined MiniC program: arithmetic over five
/// variables, a data-dependent branch, a bounded loop, and array traffic.
fn render(seed_vals: &[i16; 5], ops: &[(usize, usize, usize)], trip: u8) -> String {
    const OPS: [&str; 8] = ["+", "-", "*", "&", "|", "^", "/", "%"];
    let mut src = String::from("int arr[8];\nvoid main() {\n");
    for (i, v) in seed_vals.iter().enumerate() {
        src.push_str(&format!("    int v{i} = {v};\n"));
    }
    for (dst, a, op) in ops {
        let (dst, a, op) = (dst % 5, a % 5, op % OPS.len());
        src.push_str(&format!("    v{dst} = v{dst} {} v{a};\n", OPS[op]));
        src.push_str(&format!("    arr[v{a} & 7] = v{dst};\n"));
    }
    src.push_str(&format!(
        "    for (int i = 0; i < {trip}; i = i + 1) {{\n\
         \x20       if (v0 < v1) v2 = v2 + arr[i & 7]; else v3 = v3 ^ i;\n\
         \x20       v0 = v0 + 1;\n    }}\n"
    ));
    for i in 0..5 {
        src.push_str(&format!("    out(v{i});\n"));
    }
    src.push_str("}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn pipeline_matches_emulator_on_random_programs(
        vals in any::<[i16; 5]>(),
        ops in prop::collection::vec((0usize..5, 0usize..5, 0usize..8), 1..8),
        trip in 0u8..20,
        level_idx in 0usize..4,
        a72 in any::<bool>(),
    ) {
        let machine = if a72 {
            MachineConfig::cortex_a72()
        } else {
            MachineConfig::cortex_a15()
        };
        let level = OptLevel::ALL[level_idx];
        let src = render(&vals, &ops, trip);
        let compiled = Compiler::new(machine.profile, level)
            .compile(&src)
            .expect("generated program must compile");

        let golden = Emulator::new(&compiled.program)
            .run(10_000_000)
            .expect("emulator trapped");
        prop_assert!(golden.completed);

        let mut sim = Sim::new(&machine, &compiled.program);
        match sim.run(50_000_000) {
            SimOutcome::Halted { retired, output, .. } => {
                prop_assert_eq!(&output, &golden.output, "output mismatch on:\n{}", src);
                prop_assert_eq!(retired, golden.retired, "retire mismatch on:\n{}", src);
            }
            other => {
                return Err(TestCaseError::fail(format!("sim ended {other:?} on:\n{src}")));
            }
        }
    }

    /// Fault-free profile masking invariant: on the A32 machine every
    /// output word fits 32 bits.
    #[test]
    fn a32_outputs_fit_32_bits(
        vals in any::<[i16; 5]>(),
        trip in 0u8..10,
    ) {
        let machine = MachineConfig::cortex_a15();
        let src = render(&vals, &[(0, 1, 2)], trip);
        let compiled = Compiler::new(Profile::A32, OptLevel::O2).compile(&src).unwrap();
        let mut sim = Sim::new(&machine, &compiled.program);
        if let SimOutcome::Halted { output, .. } = sim.run(10_000_000) {
            for v in output {
                prop_assert_eq!(v >> 32, 0);
            }
        }
    }
}
