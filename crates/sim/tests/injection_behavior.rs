//! Fault-injection behaviour tests: injected single-bit flips must always
//! produce a *classifiable* outcome (Masked / SDC / Crash / Timeout /
//! Assert) — never a simulator panic — and targeted flips must produce the
//! fault classes the paper associates with each structure.

use proptest::prelude::*;
use softerr_cc::{Compiler, OptLevel};
use softerr_isa::Profile;
use softerr_sim::{MachineConfig, Sim, SimOutcome, Structure};
use softerr_workloads::{Scale, Workload};

fn golden(cfg: &MachineConfig, src: &str) -> (softerr_isa::Program, u64, Vec<u64>) {
    let compiled = Compiler::new(cfg.profile, OptLevel::O1)
        .compile(src)
        .unwrap();
    let mut sim = Sim::new(cfg, &compiled.program);
    match sim.run(50_000_000) {
        SimOutcome::Halted { cycles, output, .. } => (compiled.program, cycles, output),
        other => panic!("golden run failed: {other:?}"),
    }
}

/// Runs one injection and returns the outcome.
fn inject(
    cfg: &MachineConfig,
    program: &softerr_isa::Program,
    golden_cycles: u64,
    s: Structure,
    bit: u64,
    cycle: u64,
) -> SimOutcome {
    let mut sim = Sim::new(cfg, program);
    if let Some(end) = sim.run_to_cycle(cycle) {
        return end;
    }
    sim.flip_bit(s, bit % sim.bit_count(s).max(1));
    sim.run(2 * golden_cycles)
}

const SMALL_SRC: &str = "
    int tab[16];
    void main() {
        for (int i = 0; i < 16; i = i + 1) tab[i] = i * 3 + 1;
        int s = 0;
        for (int i = 0; i < 16; i = i + 1) s = s + tab[i];
        out(s);
    }";

#[test]
fn bit_counts_match_paper_structure_sizes() {
    let cfg = MachineConfig::cortex_a15();
    let program = Compiler::new(cfg.profile, OptLevel::O0)
        .compile(SMALL_SRC)
        .unwrap()
        .program;
    let sim = Sim::new(&cfg, &program);
    assert_eq!(sim.bit_count(Structure::L1IData), 32 * 1024 * 8);
    assert_eq!(sim.bit_count(Structure::L1DData), 32 * 1024 * 8);
    assert_eq!(sim.bit_count(Structure::L2Data), 1024 * 1024 * 8);
    assert_eq!(sim.bit_count(Structure::RegFile), 128 * 32);
    assert_eq!(sim.bit_count(Structure::LoadQueue), 16 * 32);
    assert_eq!(sim.bit_count(Structure::StoreQueue), 16 * 32);
    assert_eq!(sim.bit_count(Structure::IqSrc), 32 * 18);
    assert_eq!(sim.bit_count(Structure::RobPc), 40 * 32);

    let cfg72 = MachineConfig::cortex_a72();
    let program72 = Compiler::new(cfg72.profile, OptLevel::O0)
        .compile(SMALL_SRC)
        .unwrap()
        .program;
    let sim72 = Sim::new(&cfg72, &program72);
    assert_eq!(sim72.bit_count(Structure::RegFile), 192 * 64);
    assert_eq!(sim72.bit_count(Structure::LoadQueue), 16 * 64);
    assert_eq!(sim72.bit_count(Structure::RobPc), 128 * 64);
    assert_eq!(sim72.bit_count(Structure::L2Data), 2 * 1024 * 1024 * 8);
}

#[test]
fn flip_before_start_in_unused_space_is_masked() {
    let cfg = MachineConfig::cortex_a72();
    let (program, cycles, output) = golden(&cfg, SMALL_SRC);
    // A bit in the far end of L2 data that the tiny program never touches.
    let mut sim = Sim::new(&cfg, &program);
    let bits = sim.bit_count(Structure::L2Data);
    sim.flip_bit(Structure::L2Data, bits - 1);
    match sim.run(2 * cycles) {
        SimOutcome::Halted { output: o, .. } => assert_eq!(o, output, "must be masked"),
        other => panic!("expected masked run, got {other:?}"),
    }
}

#[test]
fn live_register_flip_produces_sdc() {
    let cfg = MachineConfig::cortex_a72();
    let (program, cycles, output) = golden(&cfg, SMALL_SRC);
    // Sweep low registers mid-run; at least one flip must corrupt the
    // output without crashing (SDC), since `s` lives in a register.
    let mut sdc = 0;
    for reg in 0..32u64 {
        for bit in [0u64, 7, 13] {
            let out = inject(
                &cfg,
                &program,
                cycles,
                Structure::RegFile,
                reg * 64 + bit,
                cycles / 2,
            );
            if let SimOutcome::Halted { output: o, .. } = out {
                if o != output {
                    sdc += 1;
                }
            }
        }
    }
    assert!(sdc > 0, "no SDC produced by live register flips");
}

#[test]
fn icache_data_flip_produces_crash() {
    let cfg = MachineConfig::cortex_a15();
    let (program, cycles, _) = golden(&cfg, SMALL_SRC);
    // The code segment starts at 0x1000 → L1I set 64 → line index 128 in a
    // 2-way 256-set cache → data bits from 128·64·8. Flip bits across the
    // lines holding the hot loop: corrupted encodings should crash (invalid
    // opcode) in at least some cases.
    let base = 128u64 * 64 * 8;
    let mut crashes = 0;
    let mut runs = 0;
    for bit in (base..base + 16 * 1024).step_by(97) {
        let out = inject(&cfg, &program, cycles, Structure::L1IData, bit, 5);
        runs += 1;
        if matches!(out, SimOutcome::Crash { .. }) {
            crashes += 1;
        }
    }
    assert!(crashes > 0, "no crash among {runs} L1I data flips");
}

#[test]
fn lsq_flips_assert_or_mask_only() {
    // The paper observes only Assert-class failures for LQ/SQ.
    let cfg = MachineConfig::cortex_a15();
    let (program, cycles, output) = golden(&cfg, SMALL_SRC);
    for s in [Structure::LoadQueue, Structure::StoreQueue] {
        for bit in 0..cfg_bits(&cfg, &program, s) {
            for cycle in [3u64, cycles / 2] {
                let out = inject(&cfg, &program, cycles, s, bit, cycle);
                match out {
                    SimOutcome::Assert { .. } => {}
                    SimOutcome::Halted { output: o, .. } => {
                        assert_eq!(o, output, "{s} flip bit {bit} caused SDC");
                    }
                    SimOutcome::CycleLimit { .. } => {}
                    other => panic!("{s} flip bit {bit} → unexpected {other:?}"),
                }
            }
        }
    }
}

fn cfg_bits(cfg: &MachineConfig, program: &softerr_isa::Program, s: Structure) -> u64 {
    Sim::new(cfg, program).bit_count(s)
}

#[test]
fn iq_src_flips_produce_timeouts_and_asserts() {
    let cfg = MachineConfig::cortex_a15();
    let (program, cycles, _) = golden(&cfg, SMALL_SRC);
    let (mut timeouts, mut asserts) = (0, 0);
    for bit in 0..cfg_bits(&cfg, &program, Structure::IqSrc) {
        for cycle in [4u64, 10, cycles / 2] {
            match inject(&cfg, &program, cycles, Structure::IqSrc, bit, cycle) {
                SimOutcome::CycleLimit { .. } => timeouts += 1,
                SimOutcome::Assert { .. } => asserts += 1,
                _ => {}
            }
        }
    }
    assert!(timeouts > 0, "IQ source flips should deadlock sometimes");
    assert!(asserts > 0, "IQ source flips should assert sometimes");
}

#[test]
fn rob_flips_never_silently_corrupt() {
    // ROB fields are fully cross-checked: outcomes are Assert, Timeout, or
    // Masked — never SDC (paper Fig. 8: ROB is Assert-only among failures).
    let cfg = MachineConfig::cortex_a15();
    let (program, cycles, output) = golden(&cfg, SMALL_SRC);
    for s in [
        Structure::RobPc,
        Structure::RobDest,
        Structure::RobSeq,
        Structure::RobFlags,
    ] {
        let bits = cfg_bits(&cfg, &program, s);
        for bit in (0..bits).step_by(7) {
            match inject(&cfg, &program, cycles, s, bit, cycles / 3) {
                SimOutcome::Halted { output: o, .. } => {
                    assert_eq!(o, output, "{s} bit {bit} silently corrupted output");
                }
                SimOutcome::Assert { .. } | SimOutcome::CycleLimit { .. } => {}
                SimOutcome::Crash { .. } => panic!("{s} bit {bit} crashed unexpectedly"),
            }
        }
    }
}

#[test]
fn rob_done_flag_loss_can_deadlock() {
    // Clearing a DONE flag on a completed-but-uncommitted entry leaves the
    // commit head waiting forever → Timeout. A divider-bound loop keeps the
    // ROB backed up with completed younger entries, widening the window.
    let cfg = MachineConfig::cortex_a72();
    let src = "
        void main() {
            int x = 1000000;
            int s = 0;
            for (int i = 1; i < 40; i = i + 1) {
                x = x / 3 + 7;
                s = s + x + i;
            }
            out(s);
            out(x);
        }";
    let (program, cycles, _) = golden(&cfg, src);
    let mut timeouts = 0;
    for entry in 0..24u64 {
        for k in 1..8u64 {
            // Bit 1 of each flags byte is DONE.
            let out = inject(
                &cfg,
                &program,
                cycles,
                Structure::RobFlags,
                entry * 8 + 1,
                cycles * k / 8,
            );
            if matches!(out, SimOutcome::CycleLimit { .. }) {
                timeouts += 1;
            }
        }
    }
    assert!(timeouts > 0, "no deadlock from DONE-flag loss");
}

#[test]
fn rob_dest_corruption_asserts_at_commit() {
    let cfg = MachineConfig::cortex_a15();
    let (program, cycles, _) = golden(&cfg, SMALL_SRC);
    let mut asserts = 0;
    let bits = cfg_bits(&cfg, &program, Structure::RobDest);
    for bit in (0..bits).step_by(3) {
        for cycle in [cycles / 3, cycles / 2] {
            if matches!(
                inject(&cfg, &program, cycles, Structure::RobDest, bit, cycle),
                SimOutcome::Assert { .. }
            ) {
                asserts += 1;
            }
        }
    }
    assert!(asserts > 0, "destination-field corruption never caught");
}

#[test]
fn tag_aliasing_can_produce_sdc_in_data_caches() {
    // A flipped L1D tag can make a line answer for the wrong address —
    // silent data corruption without any crash.
    let cfg = MachineConfig::cortex_a15();
    let (program, cycles, output) = golden(&cfg, SMALL_SRC);
    let mut nonmasked = 0;
    let bits = cfg_bits(&cfg, &program, Structure::L1DTag);
    for bit in (0..bits).step_by(11) {
        match inject(&cfg, &program, cycles, Structure::L1DTag, bit, cycles / 2) {
            SimOutcome::Halted { output: o, .. } if o != output => nonmasked += 1,
            SimOutcome::Crash { .. } | SimOutcome::Assert { .. } => nonmasked += 1,
            _ => {}
        }
    }
    assert!(nonmasked > 0, "L1D tag flips never visible");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single flip at any cycle in any structure yields a classifiable
    /// outcome without panicking.
    #[test]
    fn random_injections_never_panic(
        s_idx in 0usize..15,
        bit in any::<u64>(),
        cycle_frac in 0.0f64..1.0,
        a72 in any::<bool>(),
    ) {
        let cfg = if a72 { MachineConfig::cortex_a72() } else { MachineConfig::cortex_a15() };
        let (program, cycles, _) = golden(&cfg, SMALL_SRC);
        let s = Structure::ALL[s_idx];
        let cycle = ((cycles as f64) * cycle_frac) as u64;
        let _ = inject(&cfg, &program, cycles, s, bit, cycle);
    }
}

#[test]
fn injection_on_real_workload_is_classifiable() {
    let cfg = MachineConfig::cortex_a72();
    let src = Workload::Qsort.source(Scale::Tiny);
    let compiled = Compiler::new(Profile::A64, OptLevel::O2)
        .compile(&src)
        .unwrap();
    let mut sim = Sim::new(&cfg, &compiled.program);
    let SimOutcome::Halted { cycles, .. } = sim.run(50_000_000) else {
        panic!("golden failed");
    };
    let mut classes = std::collections::BTreeMap::new();
    for k in 0..60u64 {
        let s = Structure::ALL[(k % 15) as usize];
        let out = inject(
            &cfg,
            &compiled.program,
            cycles,
            s,
            k * 131,
            (k * 997) % cycles,
        );
        let label = match out {
            SimOutcome::Halted { .. } => "finished",
            SimOutcome::Crash { .. } => "crash",
            SimOutcome::Assert { .. } => "assert",
            SimOutcome::CycleLimit { .. } => "timeout",
        };
        *classes.entry(label).or_insert(0) += 1;
    }
    assert!(
        classes["finished"] > 0,
        "some injections must be masked: {classes:?}"
    );
}
