//! Reports simulated cycles per wall-clock second (campaign sizing aid).
use softerr_cc::{Compiler, OptLevel};
use softerr_sim::{MachineConfig, Sim, SimOutcome};
use softerr_workloads::{Scale, Workload};
use std::time::Instant;

fn main() {
    for cfg in MachineConfig::paper_machines() {
        let compiled = Compiler::new(cfg.profile, OptLevel::O1)
            .compile(&Workload::Gsm.source(Scale::Small))
            .unwrap();
        // Setup cost (allocation + zeroing) matters for campaigns too.
        let t0 = Instant::now();
        let mut sims: Vec<Sim> = (0..20).map(|_| Sim::new(&cfg, &compiled.program)).collect();
        let setup = t0.elapsed();
        let t1 = Instant::now();
        let mut total_cycles = 0u64;
        let out = sims.pop().unwrap().run(1_000_000_000);
        if let SimOutcome::Halted {
            cycles, retired, ..
        } = out
        {
            total_cycles += cycles;
            println!(
                "{}: {} cycles, {} instrs, IPC {:.2}",
                cfg.name,
                cycles,
                retired,
                retired as f64 / cycles as f64
            );
        }
        let run = t1.elapsed();
        println!(
            "  setup {:.2} ms/sim, run {:.1} Mcycles/s",
            setup.as_secs_f64() * 1000.0 / 20.0,
            total_cycles as f64 / run.as_secs_f64() / 1e6
        );
    }
}
