//! Span-based tracing: where did the wall-clock time go?
//!
//! The [`event!`](crate::event!) facade answers *what happened*; this module
//! answers *how long each stage took*. A [`Span`] is an RAII guard around a
//! named region of work — entering creates it, dropping records it — with
//! typed key/value fields for counters the region wants to attribute
//! (forks, prune counts, cache hits). Recorded spans are drained into a
//! [`Trace`], exportable as Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) or summarized as an aggregate [`Table`].
//!
//! # Cost model
//!
//! Tracing follows the same discipline as the event facade: **one relaxed
//! atomic load when disabled**. [`span`] checks [`tracing_enabled`] before
//! touching the clock or allocating anything; a disabled span is a
//! two-word struct that drops without side effects. Campaign hot loops can
//! therefore stay instrumented permanently.
//!
//! # Recording without perturbing determinism
//!
//! Each thread records into its own fixed-capacity ring buffer
//! ([`ThreadBuf`]), registered once per thread under a mutex that is never
//! taken again on the hot path. Writes are single-owner (only the owning
//! thread appends), so recording takes no locks, allocates only the record
//! itself, and — critically — never blocks or reorders campaign worker
//! threads against each other. Simulation results cannot depend on tracing
//! because the recorder only *observes* wall-clock time; it feeds nothing
//! back into any scheduling or classification decision, and the engines'
//! verdicts are pure functions of the fault (a property the
//! `trace_equivalence` integration test pins).
//!
//! Draining ([`take_trace`]) uses a Dekker-style handshake: it disables
//! tracing with a sequentially-consistent store, then waits for each
//! buffer's `busy` flag before reading it. A writer marks `busy`,
//! *re-checks* the enable flag, and only then writes — so the drainer
//! observes either a completed record or no record, never a torn one.

use crate::event::FieldValue;
use crate::report::Table;
use serde::Value;
use std::cell::{Cell, OnceCell, UnsafeCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Per-thread ring capacity (records kept per thread; older records are
/// overwritten and counted in [`Trace::dropped`]).
const RING_CAP: usize = 1 << 16;

/// Master switch. Relaxed on the hot-path check, SeqCst in the
/// drain handshake.
static TRACING: AtomicBool = AtomicBool::new(false);

/// The process-wide time base: every span timestamp is nanoseconds since
/// this instant, so spans from different threads share one clock.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Whether spans are currently being recorded: one relaxed atomic load,
/// mirroring [`crate::enabled`].
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Turns span recording on or off. Enabling also pins the process epoch so
/// the first span does not pay the `OnceLock` initialization.
pub fn set_tracing(on: bool) {
    if on {
        let _ = EPOCH.get_or_init(Instant::now);
    }
    TRACING.store(on, Ordering::SeqCst);
}

/// One recorded span: a named, timed region on one thread.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Static span name (e.g. `"campaign.classify"`).
    pub name: &'static str,
    /// Nanoseconds from the process trace epoch to span entry.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Recorder thread id (registration order, dense from 0).
    pub tid: u32,
    /// Nesting depth of the span on its thread at entry (0 = top level).
    pub depth: u32,
    /// Typed fields recorded on the span.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// The span's field `key`, if recorded.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// The span's field `key` as a string, if recorded as one.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.field(key) {
            Some(FieldValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The span's field `key` as a u64, if recorded as one.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        match self.field(key) {
            Some(FieldValue::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Exclusive end timestamp (`start_ns + dur_ns`).
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    /// Whether `child` lies strictly inside this span on the same thread.
    pub fn contains(&self, child: &SpanRecord) -> bool {
        self.tid == child.tid && self.start_ns <= child.start_ns && child.end_ns() <= self.end_ns()
    }
}

/// One thread's span ring. Only the owning thread writes; [`take_trace`]
/// reads after the Dekker handshake described in the module docs.
struct ThreadBuf {
    tid: u32,
    /// Set (SeqCst) around every write; the drainer spins on it.
    busy: AtomicBool,
    /// Total records ever written by this thread (monotonic; the live
    /// window is the last `RING_CAP` of them).
    head: AtomicU64,
    slots: UnsafeCell<Vec<Option<SpanRecord>>>,
}

// SAFETY: `slots` is only written by the owning thread, and only between
// `busy = true` (SeqCst) and `busy = false` (Release) with the enable flag
// re-checked under `busy`; the drainer first disables tracing (SeqCst) and
// then waits for `busy == false` (SeqCst load) before touching `slots`, so
// reader and writer never overlap.
unsafe impl Sync for ThreadBuf {}

impl ThreadBuf {
    fn new(tid: u32) -> ThreadBuf {
        ThreadBuf {
            tid,
            busy: AtomicBool::new(false),
            head: AtomicU64::new(0),
            slots: UnsafeCell::new(vec![None; RING_CAP]),
        }
    }
}

/// All thread buffers ever registered (kept alive past thread exit so a
/// drain sees work from short-lived workers).
static REGISTRY: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL_BUF: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn with_local_buf<R>(f: impl FnOnce(&ThreadBuf) -> R) -> R {
    LOCAL_BUF.with(|cell| {
        let buf = cell.get_or_init(|| {
            let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
            let buf = Arc::new(ThreadBuf::new(reg.len() as u32));
            reg.push(Arc::clone(&buf));
            buf
        });
        f(buf)
    })
}

/// Appends one record to the calling thread's ring (owner side of the
/// drain handshake).
fn record_span(rec: SpanRecord) {
    with_local_buf(|buf| {
        buf.busy.store(true, Ordering::SeqCst);
        // Re-check under `busy`: if a drain started after our fast-path
        // check, it has already disabled tracing and this write must not
        // race its read.
        if TRACING.load(Ordering::SeqCst) {
            let head = buf.head.load(Ordering::Relaxed);
            // SAFETY: single-owner write; see `unsafe impl Sync`.
            let slots = unsafe { &mut *buf.slots.get() };
            slots[(head as usize) % RING_CAP] = Some(rec);
            buf.head.store(head + 1, Ordering::Relaxed);
        }
        buf.busy.store(false, Ordering::Release);
    });
}

/// An RAII span guard: created by [`span`], recorded on drop.
///
/// When tracing is disabled the guard is inert — no clock read, no
/// allocation, nothing on drop.
#[must_use = "a span measures the region it is alive for; bind it to a variable"]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    depth: u32,
    fields: Vec<(&'static str, FieldValue)>,
    armed: bool,
}

/// Enters a span named `name` on the current thread. The span ends (and is
/// recorded) when the returned guard drops.
///
/// ```
/// let mut sp = softerr_telemetry::span("campaign.sample");
/// sp.record("faults", 4096_u64);
/// // ... work ...
/// drop(sp);
/// ```
#[inline]
pub fn span(name: &'static str) -> Span {
    if !tracing_enabled() {
        return Span {
            name,
            start_ns: 0,
            depth: 0,
            fields: Vec::new(),
            armed: false,
        };
    }
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    Span {
        name,
        start_ns: now_ns(),
        depth,
        fields: Vec::new(),
        armed: true,
    }
}

impl Span {
    /// Attaches a typed field to the span (a no-op when tracing is off, so
    /// callers never pay for formatting or conversion).
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.armed {
            self.fields.push((key, value.into()));
        }
    }

    /// Whether this guard will record on drop (false when tracing was
    /// disabled at entry).
    pub fn is_armed(&self) -> bool {
        self.armed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let end = now_ns();
        record_span(SpanRecord {
            name: self.name,
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            tid: with_local_buf(|b| b.tid),
            depth: self.depth,
            fields: std::mem::take(&mut self.fields),
        });
    }
}

/// A drained set of span records (see [`take_trace`]).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All recorded spans, sorted by (start, tid, depth).
    pub spans: Vec<SpanRecord>,
    /// Records lost to ring overflow (oldest-first overwrite).
    pub dropped: u64,
}

/// Disables tracing and drains every thread's ring into one [`Trace`].
///
/// Spans still open when this runs are *not* included (they record on
/// drop); callers should drain only after the instrumented region has
/// fully exited. Tracing stays disabled afterwards — re-enable with
/// [`set_tracing`] to start a fresh recording.
pub fn take_trace() -> Trace {
    TRACING.store(false, Ordering::SeqCst);
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut spans = Vec::new();
    let mut dropped = 0u64;
    for buf in reg.iter() {
        // Drain side of the handshake: wait out any in-flight write. The
        // writer re-checks the (now false) enable flag under `busy`, so
        // once `busy` reads false no further write can land.
        while buf.busy.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        let head = buf.head.load(Ordering::SeqCst);
        dropped += head.saturating_sub(RING_CAP as u64);
        // SAFETY: tracing is disabled and `busy` observed false; the
        // owning thread cannot write until tracing is re-enabled.
        let slots = unsafe { &mut *buf.slots.get() };
        for slot in slots.iter_mut() {
            if let Some(rec) = slot.take() {
                spans.push(rec);
            }
        }
        buf.head.store(0, Ordering::SeqCst);
    }
    drop(reg);
    spans.sort_by_key(|s| (s.start_ns, s.tid, s.depth));
    Trace { spans, dropped }
}

impl Trace {
    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Renders the trace in Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form), loadable in Perfetto or
    /// `chrome://tracing`. Each span becomes one complete (`"ph":"X"`)
    /// event with microsecond timestamps; span fields land in `args`.
    pub fn to_chrome_json(&self) -> String {
        let events: Vec<Value> = self
            .spans
            .iter()
            .map(|s| {
                let args: Vec<(String, Value)> = s
                    .fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), field_value(v)))
                    .collect();
                Value::Object(vec![
                    ("name".to_string(), Value::Str(s.name.to_string())),
                    ("cat".to_string(), Value::Str("softerr".to_string())),
                    ("ph".to_string(), Value::Str("X".to_string())),
                    ("ts".to_string(), Value::F64(s.start_ns as f64 / 1_000.0)),
                    ("dur".to_string(), Value::F64(s.dur_ns as f64 / 1_000.0)),
                    ("pid".to_string(), Value::U64(1)),
                    ("tid".to_string(), Value::U64(u64::from(s.tid))),
                    ("args".to_string(), Value::Object(args)),
                ])
            })
            .collect();
        serde_json::to_string(&Value::Object(vec![(
            "traceEvents".to_string(),
            Value::Array(events),
        )]))
        .unwrap_or_default()
    }

    /// Aggregates the trace by span name: count, total/mean/max wall time,
    /// sorted by total descending. The quick textual answer to "where did
    /// the time go" when a full Perfetto round-trip is overkill.
    pub fn aggregate_table(&self) -> Table {
        struct Agg {
            count: u64,
            total_ns: u64,
            max_ns: u64,
        }
        let mut by_name: Vec<(&'static str, Agg)> = Vec::new();
        for s in &self.spans {
            match by_name.iter_mut().find(|(n, _)| *n == s.name) {
                Some((_, agg)) => {
                    agg.count += 1;
                    agg.total_ns += s.dur_ns;
                    agg.max_ns = agg.max_ns.max(s.dur_ns);
                }
                None => by_name.push((
                    s.name,
                    Agg {
                        count: 1,
                        total_ns: s.dur_ns,
                        max_ns: s.dur_ns,
                    },
                )),
            }
        }
        by_name.sort_by_key(|(_, agg)| std::cmp::Reverse(agg.total_ns));
        let mut table = Table::new(vec![
            "span".into(),
            "count".into(),
            "total_ms".into(),
            "mean_us".into(),
            "max_us".into(),
        ]);
        for (name, agg) in &by_name {
            table.row(vec![
                name.to_string(),
                agg.count.to_string(),
                format!("{:.3}", agg.total_ns as f64 / 1e6),
                format!("{:.1}", agg.total_ns as f64 / 1e3 / agg.count as f64),
                format!("{:.1}", agg.max_ns as f64 / 1e3),
            ]);
        }
        table
    }
}

fn field_value(v: &FieldValue) -> Value {
    match v {
        FieldValue::U64(x) => Value::U64(*x),
        FieldValue::I64(x) => Value::I64(*x),
        FieldValue::F64(x) => Value::F64(*x),
        FieldValue::Bool(x) => Value::Bool(*x),
        FieldValue::Str(x) => Value::Str(x.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing is process-global; tests that toggle it serialize here.
    static TRACE_LOCK: Mutex<()> = Mutex::new(());

    fn with_tracing(body: impl FnOnce()) -> Trace {
        let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _ = take_trace(); // clear leftovers from other tests
        set_tracing(true);
        body();
        take_trace()
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _ = take_trace();
        assert!(!tracing_enabled());
        let mut sp = span("never");
        assert!(!sp.is_armed());
        sp.record("unseen", 1_u64);
        drop(sp);
        let trace = take_trace();
        assert!(trace.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn spans_record_name_fields_and_duration() {
        let trace = with_tracing(|| {
            let mut sp = span("outer");
            sp.record("faults", 42_u64);
            sp.record("structure", "rf");
            std::thread::sleep(std::time::Duration::from_millis(2));
            drop(sp);
        });
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.u64_field("faults"), Some(42));
        assert_eq!(outer.str_field("structure"), Some("rf"));
        assert!(outer.dur_ns >= 1_000_000, "slept 2ms, dur {}", outer.dur_ns);
    }

    #[test]
    fn nested_spans_are_well_nested_with_depths() {
        let trace = with_tracing(|| {
            let outer = span("outer");
            {
                let inner = span("inner");
                drop(inner);
            }
            {
                let inner2 = span("inner");
                drop(inner2);
            }
            drop(outer);
        });
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        let inners: Vec<_> = trace.spans.iter().filter(|s| s.name == "inner").collect();
        assert_eq!(inners.len(), 2);
        for inner in inners {
            assert_eq!(inner.depth, outer.depth + 1);
            assert!(outer.contains(inner));
        }
    }

    #[test]
    fn threads_get_distinct_tids_and_all_spans_survive_thread_exit() {
        let trace = with_tracing(|| {
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        let _sp = span("worker");
                    });
                }
            });
        });
        let workers: Vec<_> = trace.spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 4);
        let mut tids: Vec<u32> = workers.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(
            tids.len(),
            4,
            "each worker thread records under its own tid"
        );
    }

    #[test]
    fn take_trace_disables_and_resets() {
        let trace = with_tracing(|| {
            let _sp = span("once");
        });
        assert_eq!(trace.spans.iter().filter(|s| s.name == "once").count(), 1);
        assert!(!tracing_enabled(), "take_trace leaves tracing off");
        // A second drain sees an empty, reset state.
        let again = take_trace();
        assert!(again.is_empty());
    }

    #[test]
    fn chrome_json_is_loadable_shape() {
        let trace = with_tracing(|| {
            let mut sp = span("campaign.run");
            sp.record("structure", "rf");
            sp.record("injections", 7_u64);
            drop(sp);
        });
        let json = trace.to_chrome_json();
        let value: serde::Value =
            serde_json::from_str(&json).expect("chrome export parses as JSON");
        let serde::Value::Object(top) = &value else {
            panic!("top level must be an object");
        };
        let events = top
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents key");
        let serde::Value::Array(events) = events else {
            panic!("traceEvents must be an array");
        };
        assert!(!events.is_empty());
        let serde::Value::Object(ev) = &events[0] else {
            panic!("events must be objects");
        };
        let get = |k: &str| ev.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone());
        assert_eq!(get("ph"), Some(serde::Value::Str("X".into())));
        assert_eq!(get("pid"), Some(serde::Value::U64(1)));
        assert!(matches!(get("ts"), Some(serde::Value::F64(_))));
        assert!(matches!(get("dur"), Some(serde::Value::F64(_))));
        assert!(matches!(get("args"), Some(serde::Value::Object(_))));
    }

    #[test]
    fn aggregate_table_groups_by_name() {
        let trace = with_tracing(|| {
            for _ in 0..3 {
                let _sp = span("stage.a");
            }
            let _sp = span("stage.b");
        });
        let table = trace.aggregate_table();
        let text = table.to_string();
        assert!(text.contains("stage.a"));
        assert!(text.contains("stage.b"));
        let csv = table.to_csv();
        let a_row: Vec<&str> = csv
            .lines()
            .find(|l| l.starts_with("stage.a"))
            .unwrap()
            .split(',')
            .collect();
        assert_eq!(a_row[1], "3");
    }

    #[test]
    fn ring_overflow_counts_dropped_records() {
        let trace = with_tracing(|| {
            for _ in 0..(RING_CAP + 10) {
                let _sp = span("tiny");
            }
        });
        assert_eq!(trace.spans.len(), RING_CAP);
        assert_eq!(trace.dropped, 10);
    }
}
