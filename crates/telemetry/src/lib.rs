//! # softerr-telemetry
//!
//! The study's shared observability substrate, sitting below every other
//! crate in the workspace so that the simulator, the injector, and the
//! benchmark harnesses all speak one event vocabulary:
//!
//! * a lightweight structured **event facade** ([`Event`], [`event!`]) with
//!   severity levels, dotted targets (`"inject.campaign"`), and pluggable
//!   sinks — a human-readable stderr sink by default, a JSONL sink for
//!   machine consumption, and a capture sink for tests. Emission is gated
//!   by a single relaxed atomic load, so disabled levels cost nothing and
//!   campaigns stay fast;
//! * a span-based **tracing layer** ([`span`], [`Span`], [`take_trace`])
//!   recording named, timed, thread-aware stages into per-thread ring
//!   buffers, exportable as Chrome trace-event JSON (Perfetto-loadable) or
//!   an aggregate table — also one relaxed atomic load when disabled;
//! * the plain-text [`Table`] used by every report the harnesses print.
//!
//! No external dependencies beyond the workspace's vendored stubs.
//!
//! ```
//! use softerr_telemetry::{event, Level};
//! // Emitted through the installed sink (stderr by default):
//! event!(Level::Warn, "example", { faults: 3_u64 }, "campaign saw {} odd faults", 3);
//! ```
#![warn(missing_docs)]

mod event;
mod report;
mod trace;

#[doc(hidden)]
pub use event::emit_event;
pub use event::{
    emit, enabled, install_sink, max_level, reset_sink, set_max_level, CaptureSink, Event,
    FieldValue, HumanSink, JsonlSink, Level, Sink,
};
pub use report::Table;
pub use trace::{set_tracing, span, take_trace, tracing_enabled, Span, SpanRecord, Trace};
