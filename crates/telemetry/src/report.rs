//! Plain-text table rendering for the figure-regeneration harness and the
//! forensics aggregations.

use std::fmt;

/// A simple aligned text table.
///
/// ```
/// use softerr_telemetry::Table;
/// let mut t = Table::new(vec!["bench".into(), "O0".into(), "O2".into()]);
/// t.row(vec!["qsort".into(), "1.00".into(), "1.31".into()]);
/// let text = t.to_string();
/// assert!(text.contains("qsort"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Table {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as CSV (for external plotting tools).
    ///
    /// ```
    /// use softerr_telemetry::Table;
    /// let mut t = Table::new(vec!["a".into(), "b".into()]);
    /// t.row(vec!["x,y".into(), "1".into()]);
    /// assert_eq!(t.to_csv(), "a,b\n\"x,y\",1\n");
    /// ```
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let render_row = |row: &[String], out: &mut String| {
            let cells: Vec<String> = row.iter().map(|c| escape(c)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        if ncols == 0 {
            return Ok(());
        }
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                // Right-align numeric-looking cells, left-align labels.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".-+%ex".contains(c))
                    && !cell.is_empty();
                if numeric && i > 0 {
                    write!(f, "{cell:>width$}", width = widths[i])?;
                } else {
                    write!(f, "{cell:<width$}", width = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["a".into(), "1.5".into()]);
        t.row(vec!["long-name".into(), "100.25".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(s.contains("long-name"));
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = Table::new(vec!["h".into()]);
        t.row(vec!["say \"hi\"".into()]);
        assert_eq!(t.to_csv(), "h\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn empty_table_renders_nothing() {
        let t = Table::new(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.to_string(), "");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
        let _ = t.to_string(); // must not panic
    }
}
