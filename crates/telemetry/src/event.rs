//! The structured event facade.
//!
//! Every warning or progress note the workspace used to push through ad-hoc
//! `eprintln!` goes through here instead: an [`Event`] carries a severity
//! [`Level`], a dotted `target` naming the emitting subsystem, a formatted
//! message, and typed key/value fields. Events flow to one installed
//! [`Sink`] — human-readable stderr by default, JSONL for machine
//! consumption, or an in-memory capture for tests.
//!
//! The facade is zero-cost when disabled: [`event!`](crate::event!) checks
//! [`enabled`] (one relaxed atomic load) before formatting anything, so
//! campaigns with telemetry off pay a branch per *suppressed* event and
//! nothing per cycle.

use serde::{Serialize, Value};
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, RwLock};

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable problems (the campaign still tries to continue).
    Error = 1,
    /// Suspicious-but-handled situations (a caught simulator panic, …).
    Warn = 2,
    /// Progress notes and run manifests.
    Info = 3,
    /// Engine internals (convergence checks, convoy graduation, …).
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// Lower-case display name (the JSONL `level` field).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (pre-formatted payloads, structure names, …).
    Str(String),
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}
field_from!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64, i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, f64 => F64 as f64, f32 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl Serialize for FieldValue {
    fn to_value(&self) -> Value {
        match self {
            FieldValue::U64(v) => Value::U64(*v),
            FieldValue::I64(v) => Value::I64(*v),
            FieldValue::F64(v) => Value::F64(*v),
            FieldValue::Bool(v) => Value::Bool(*v),
            FieldValue::Str(v) => Value::Str(v.clone()),
        }
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Dotted origin, e.g. `"inject.campaign"`.
    pub target: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Structured key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let fields = self
            .fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        Value::Object(vec![
            ("level".to_string(), Value::Str(self.level.name().into())),
            ("target".to_string(), Value::Str(self.target.into())),
            ("message".to_string(), Value::Str(self.message.clone())),
            ("fields".to_string(), Value::Object(fields)),
        ])
    }
}

/// An event destination. Implementations must be thread-safe: campaign
/// workers emit concurrently.
pub trait Sink: Send + Sync {
    /// Consumes one event (already level-filtered by the facade).
    fn emit(&self, event: &Event);
}

/// `0` means "off"; otherwise the numeric value of the max enabled level.
/// Default: warnings and errors, matching the old raw-`eprintln!` behavior.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

static SINK: RwLock<Option<Box<dyn Sink>>> = RwLock::new(None);

/// Whether events at `level` are currently emitted. One relaxed atomic
/// load — callers (and the [`event!`](crate::event!) macro) use this to
/// skip formatting entirely when the level is off.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Sets the maximum emitted level; `None` silences everything (`--quiet`).
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// The current maximum emitted level (`None` = everything off).
pub fn max_level() -> Option<Level> {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// Installs the process-wide sink (replacing any previous one). Events
/// emitted with no installed sink go to a [`HumanSink`] on stderr.
pub fn install_sink(sink: Box<dyn Sink>) {
    *SINK.write().expect("telemetry sink lock poisoned") = Some(sink);
}

/// Removes any installed sink, restoring the default stderr behavior.
/// (Tests use this to un-install their capture sinks.)
pub fn reset_sink() {
    *SINK.write().expect("telemetry sink lock poisoned") = None;
}

/// Emits one event through the installed sink. Prefer the
/// [`event!`](crate::event!) macro, which checks [`enabled`] before
/// building the event at all.
pub fn emit(event: Event) {
    if !enabled(event.level) {
        return;
    }
    let guard = SINK.read().expect("telemetry sink lock poisoned");
    match guard.as_deref() {
        Some(sink) => sink.emit(&event),
        None => HumanSink.emit(&event),
    }
}

/// Emits a structured event.
///
/// ```
/// use softerr_telemetry::{event, Level};
/// event!(Level::Warn, "inject.campaign", { slot: 7_usize, width: 1_u8 },
///        "simulator panicked on slot {}", 7);
/// event!(Level::Info, "bench.repro", {}, "study complete");
/// ```
///
/// The field block takes `name: value` pairs where every value converts
/// via [`FieldValue::from`]. Nothing — not even the message — is formatted
/// unless the level is enabled.
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, { $($key:ident : $val:expr),* $(,)? }, $($fmt:tt)+) => {{
        let level = $level;
        if $crate::enabled(level) {
            $crate::emit_event($crate::Event {
                level,
                target: $target,
                message: ::std::format!($($fmt)+),
                fields: ::std::vec![
                    $((::std::stringify!($key), $crate::FieldValue::from($val))),*
                ],
            });
        }
    }};
}

// The macro needs a root-path callable; `event::emit` is re-exported under
// this name so `$crate::emit_event` resolves from any downstream crate.
#[doc(hidden)]
pub use self::emit as emit_event;

/// Human-readable sink: `warning:`-style lines on stderr. Errors and
/// warnings carry a severity prefix; info and below print bare (they are
/// progress notes, not diagnostics).
#[derive(Debug, Default)]
pub struct HumanSink;

impl Sink for HumanSink {
    fn emit(&self, event: &Event) {
        let mut line = match event.level {
            Level::Error => format!("error: {}", event.message),
            Level::Warn => format!("warning: {}", event.message),
            _ => event.message.clone(),
        };
        if !event.fields.is_empty() {
            let rendered: Vec<String> = event
                .fields
                .iter()
                .map(|(k, v)| match v {
                    FieldValue::U64(x) => format!("{k}={x}"),
                    FieldValue::I64(x) => format!("{k}={x}"),
                    FieldValue::F64(x) => format!("{k}={x}"),
                    FieldValue::Bool(x) => format!("{k}={x}"),
                    FieldValue::Str(x) => format!("{k}={x}"),
                })
                .collect();
            line.push_str(&format!(" ({})", rendered.join(", ")));
        }
        eprintln!("{line}");
    }
}

/// JSONL sink: one JSON object per event
/// (`{"level":…,"target":…,"message":…,"fields":{…}}`) on a shared writer.
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// JSONL to stderr (structured logging mode for the CLI bins).
    pub fn stderr() -> JsonlSink {
        JsonlSink::to_writer(Box::new(std::io::stderr()))
    }

    /// JSONL to an arbitrary writer (a file, a pipe, a test buffer).
    pub fn to_writer(writer: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = serde_json::to_string(event).unwrap_or_default();
        let mut w = self.writer.lock().expect("jsonl sink lock poisoned");
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// Test sink that records every event it sees.
#[derive(Debug, Default)]
pub struct CaptureSink {
    events: Mutex<Vec<Event>>,
}

impl CaptureSink {
    /// An empty capture.
    pub fn new() -> CaptureSink {
        CaptureSink::default()
    }

    /// Snapshot of everything captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("capture sink lock poisoned")
            .clone()
    }
}

impl Sink for CaptureSink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .expect("capture sink lock poisoned")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A capture sink shareable between the facade and the test body.
    struct SharedCapture(Arc<CaptureSink>);
    impl Sink for SharedCapture {
        fn emit(&self, event: &Event) {
            self.0.emit(event);
        }
    }

    /// The facade is process-global, so every test that touches it runs
    /// under this lock (Rust runs tests concurrently by default).
    static FACADE: Mutex<()> = Mutex::new(());

    fn with_capture(max: Option<Level>, body: impl FnOnce(&CaptureSink)) {
        let _guard = FACADE.lock().unwrap_or_else(|e| e.into_inner());
        let capture = Arc::new(CaptureSink::new());
        install_sink(Box::new(SharedCapture(capture.clone())));
        let old = max_level();
        set_max_level(max);
        body(&capture);
        set_max_level(old);
        reset_sink();
    }

    #[test]
    fn levels_gate_emission() {
        with_capture(Some(Level::Warn), |cap| {
            event!(Level::Error, "t", {}, "e");
            event!(Level::Warn, "t", {}, "w");
            event!(Level::Info, "t", {}, "i");
            let levels: Vec<Level> = cap.events().iter().map(|e| e.level).collect();
            assert_eq!(levels, vec![Level::Error, Level::Warn]);
        });
    }

    #[test]
    fn quiet_mode_silences_everything() {
        with_capture(None, |cap| {
            event!(Level::Error, "t", {}, "e");
            assert!(cap.events().is_empty());
            assert!(!enabled(Level::Error));
        });
    }

    #[test]
    fn fields_are_typed_and_named() {
        with_capture(Some(Level::Trace), |cap| {
            event!(
                Level::Debug,
                "inject.campaign",
                { slot: 9_usize, avf: 0.25_f64, structure: "rf" },
                "classified"
            );
            let ev = &cap.events()[0];
            assert_eq!(ev.target, "inject.campaign");
            assert_eq!(ev.fields[0], ("slot", FieldValue::U64(9)));
            assert_eq!(ev.fields[1], ("avf", FieldValue::F64(0.25)));
            assert_eq!(ev.fields[2], ("structure", FieldValue::Str("rf".into())));
        });
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let ev = Event {
            level: Level::Warn,
            target: "inject.campaign",
            message: "simulator \"panicked\"".into(),
            fields: vec![("slot", FieldValue::U64(3))],
        };
        let line = serde_json::to_string(&ev).unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"level\":\"warn\""));
        assert!(line.contains("\"target\":\"inject.campaign\""));
        assert!(line.contains("\"slot\":3"));
        assert!(!line.contains('\n'), "JSONL events must be single lines");
    }

    #[test]
    fn disabled_levels_cost_no_formatting() {
        // The macro must not evaluate its format arguments when disabled.
        with_capture(Some(Level::Error), |cap| {
            let mut evaluated = false;
            let mut probe = || {
                evaluated = true;
                0
            };
            event!(Level::Trace, "t", {}, "{}", probe());
            assert!(!evaluated);
            assert!(cap.events().is_empty());
        });
    }
}
