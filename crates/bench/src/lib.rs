//! # softerr-bench
//!
//! Benchmark and reproduction harness for the softerr study. This crate
//! ships no library API — its value is in its binaries and benches:
//!
//! * **`repro`** — regenerates every table and figure of the paper
//!   (`repro all --scale quick|default|paper`), plus the ablation and
//!   multi-bit-upset extensions. Results are cached as JSON.
//! * **`campaign`** — runs a single fault-injection campaign with explicit
//!   parameters (machine, workload, level, structure, sample size).
//! * **Criterion benches** — `sim_throughput` (simulated cycles/s),
//!   `compile_speed` (pass-pipeline cost per level), and
//!   `injection_throughput` (end-to-end injections/s).
#![warn(missing_docs)]
