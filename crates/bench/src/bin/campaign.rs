//! `campaign` — run a single fault-injection campaign with explicit
//! parameters (the command-line face of `softerr_inject::Injector`).
//!
//! ```text
//! cargo run --release -p softerr-bench --bin campaign -- \
//!     --machine a72 --workload sha --level O2 --structure rf -n 500
//! ```

use softerr::{
    ace_estimate, CampaignConfig, Compiler, Injector, MachineConfig, OptLevel, Scale, Structure,
    Table, Workload,
};

struct Args {
    machine: MachineConfig,
    workload: Workload,
    level: OptLevel,
    structures: Vec<Structure>,
    scale: Scale,
    injections: u64,
    seed: u64,
    threads: usize,
    checkpoint: bool,
    estimate_ace: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        machine: MachineConfig::cortex_a72(),
        workload: Workload::Qsort,
        level: OptLevel::O2,
        structures: Structure::ALL.to_vec(),
        scale: Scale::Tiny,
        injections: 200,
        seed: 1,
        threads: 1,
        checkpoint: true,
        estimate_ace: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        i += 1;
        let value = argv
            .get(i)
            .ok_or_else(|| format!("missing value for {flag}"))?
            .clone();
        i += 1;
        match flag.as_str() {
            "--machine" => {
                args.machine = match value.as_str() {
                    "a15" => MachineConfig::cortex_a15(),
                    "a72" => MachineConfig::cortex_a72(),
                    other => return Err(format!("unknown machine `{other}` (a15|a72)")),
                }
            }
            "--workload" => {
                args.workload = Workload::from_name(&value)
                    .ok_or_else(|| format!("unknown workload `{value}`"))?
            }
            "--level" => args.level = value.parse()?,
            "--structure" => {
                args.structures = vec![Structure::from_name(&value)
                    .ok_or_else(|| format!("unknown structure `{value}`"))?]
            }
            "--scale" => {
                args.scale = match value.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale `{other}`")),
                }
            }
            "-n" | "--injections" => {
                args.injections = value.parse().map_err(|_| "bad injection count")?
            }
            "--seed" => args.seed = value.parse().map_err(|_| "bad seed")?,
            "--threads" => args.threads = value.parse().map_err(|_| "bad thread count")?,
            "--estimate" => match value.as_str() {
                "ace" => args.estimate_ace = true,
                other => return Err(format!("unknown estimator `{other}` (ace)")),
            },
            "--checkpoint" => {
                args.checkpoint = match value.as_str() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => return Err(format!("bad --checkpoint value `{other}` (on|off)")),
                }
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: campaign [--machine a15|a72] [--workload NAME] [--level O0..O3]\n\
                 \x20              [--structure NAME] [--scale tiny|small|full]\n\
                 \x20              [-n COUNT] [--seed N] [--threads N] [--checkpoint on|off]\n\
                 \x20              [--estimate ace]"
            );
            std::process::exit(1);
        }
    };

    let compiled = Compiler::new(args.machine.profile, args.level)
        .compile(&args.workload.source(args.scale))
        .expect("workload must compile");
    let injector = Injector::new(&args.machine, &compiled.program).expect("golden run");
    let golden = injector.golden();
    println!(
        "{} / {} / {} ({} scale): {} cycles, {} instructions fault-free\n",
        args.machine.name, args.workload, args.level, args.scale, golden.cycles, golden.retired
    );

    // One extra golden run with residency tracking; no injections needed.
    let ace = args.estimate_ace.then(|| {
        ace_estimate(&args.machine, &compiled.program, 4_000_000_000)
            .expect("ACE golden run must halt cleanly")
    });

    let mut header = vec![
        "structure".to_string(),
        "bits".into(),
        "AVF".into(),
        "±99%".into(),
    ];
    if ace.is_some() {
        header.push("static AVF".into());
    }
    header.extend([
        "SDC".into(),
        "Crash".into(),
        "Timeout".into(),
        "Assert".into(),
    ]);
    let mut table = Table::new(header);
    for &s in &args.structures {
        let result = injector.campaign(
            s,
            &CampaignConfig {
                injections: args.injections,
                seed: args.seed,
                threads: args.threads,
                checkpoint: args.checkpoint,
            },
        );
        let mut row = vec![
            s.name().to_string(),
            result.bit_population.to_string(),
            format!("{:.4}", result.avf()),
            format!("{:.4}", result.margin_99()),
        ];
        if let Some(est) = &ace {
            row.push(format!("{:.4}", est.avf(s)));
        }
        row.extend([
            result.counts.sdc.to_string(),
            result.counts.crash.to_string(),
            result.counts.timeout.to_string(),
            result.counts.assert_.to_string(),
        ]);
        table.row(row);
    }
    println!("{table}");
    println!(
        "({} injections per structure; uniform bit x cycle sampling; margin at 99% via Leveugle)",
        args.injections
    );
    if ace.is_some() {
        println!(
            "(static AVF: entry-granular ACE bit-liveness from one golden run — an upper-bound\n\
             \x20estimate that ignores fault-to-crash conversion; see EXPERIMENTS.md)"
        );
    }
}
