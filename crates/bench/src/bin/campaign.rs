//! `campaign` — run a single fault-injection campaign with explicit
//! parameters (the command-line face of `softerr_inject::Injector`).
//!
//! ```text
//! cargo run --release -p softerr-bench --bin campaign -- \
//!     --machine a72 --workload sha --level O2 --structure rf -n 500
//! ```
//!
//! The `worker` subcommand instead joins a distributed study (see
//! `repro serve`): it connects to a coordinator, receives the full study
//! configuration over the wire, and executes leased cells until told the
//! grid is complete:
//!
//! ```text
//! campaign worker --connect 127.0.0.1:7077 [--capacity N] [--name S]
//! ```
//!
//! Observability flags:
//!
//! * `--records FILE` — stream one JSONL `FaultRecord` per injection to
//!   `FILE` (first line is the run manifest), and print forensic summary
//!   tables;
//! * `--trace FILE` — record stage spans and export them as Chrome
//!   trace-event JSON (load `FILE` in Perfetto / `chrome://tracing`), plus
//!   a plain aggregate table on stdout;
//! * `--profile` — record stage spans and print the stage-attribution
//!   wall-time table (per structure) and the engine worker-counter table;
//! * `--propagation EVERY[/ONE_IN]` — trace how corruption spreads: a
//!   deterministic 1-in-`ONE_IN` (default 8) subset of forked faults
//!   snapshots its diverging components every `EVERY` cycles, and the
//!   aggregated component × time-since-injection heatmap is printed (and
//!   the timelines ride `--records` lines when both are given);
//! * `--metrics` — run the golden execution once more with the simulator's
//!   microarchitectural counters enabled and print them next to the AVF
//!   table;
//! * `--sampler uniform|importance|importance/verify` — sampling
//!   distribution: `importance` draws only live-and-demanded fault sites
//!   and reweights the estimates (Horvitz–Thompson), `importance/verify`
//!   additionally re-runs a uniform campaign to the same achieved margin
//!   and panics unless the two AVF estimates agree;
//! * `--quiet` — suppress warning events and the progress line;
//! * `--log-json` — emit warning events as JSONL on stderr instead of
//!   human-readable text.

use softerr::{
    ace_estimate, telemetry, CampaignConfig, Compiler, FaultRecord, Injector, MachineConfig,
    OptLevel, ProgressLine, PruneMode, PrunePolicy, RunManifest, SamplerKind, SamplingPlan, Scale,
    Sim, StopRule, Structure, Table, Workload,
};
use std::io::Write;

struct Args {
    machine: MachineConfig,
    workload: Workload,
    level: OptLevel,
    structures: Vec<Structure>,
    scale: Scale,
    injections: u64,
    seed: u64,
    threads: usize,
    checkpoint: bool,
    prune: PruneMode,
    prune_static: PruneMode,
    target_margin: Option<f64>,
    sampler: SamplerKind,
    estimate_ace: bool,
    records: Option<String>,
    trace: Option<String>,
    profile: bool,
    /// `(every, one_in)` propagation sampling.
    propagation: Option<(u64, u64)>,
    metrics: bool,
    quiet: bool,
    log_json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        machine: MachineConfig::cortex_a72(),
        workload: Workload::Qsort,
        level: OptLevel::O2,
        structures: Structure::ALL.to_vec(),
        scale: Scale::Tiny,
        injections: 200,
        seed: 1,
        threads: 1,
        checkpoint: true,
        prune: PruneMode::Off,
        prune_static: PruneMode::Off,
        target_margin: None,
        sampler: SamplerKind::Uniform,
        estimate_ace: false,
        records: None,
        trace: None,
        profile: false,
        propagation: None,
        metrics: false,
        quiet: false,
        log_json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        i += 1;
        // Value-less switches first; everything else consumes a value.
        match flag.as_str() {
            "--metrics" => {
                args.metrics = true;
                continue;
            }
            "--quiet" => {
                args.quiet = true;
                continue;
            }
            "--log-json" => {
                args.log_json = true;
                continue;
            }
            "--profile" => {
                args.profile = true;
                continue;
            }
            _ => {}
        }
        let value = argv
            .get(i)
            .ok_or_else(|| format!("missing value for {flag}"))?
            .clone();
        i += 1;
        match flag.as_str() {
            "--machine" => {
                args.machine = match value.as_str() {
                    "a15" => MachineConfig::cortex_a15(),
                    "a72" => MachineConfig::cortex_a72(),
                    other => return Err(format!("unknown machine `{other}` (a15|a72)")),
                }
            }
            "--workload" => {
                args.workload = Workload::from_name(&value)
                    .ok_or_else(|| format!("unknown workload `{value}`"))?
            }
            "--level" => args.level = value.parse()?,
            "--structure" => {
                args.structures = vec![Structure::from_name(&value)
                    .ok_or_else(|| format!("unknown structure `{value}`"))?]
            }
            "--scale" => {
                args.scale = match value.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale `{other}`")),
                }
            }
            "-n" | "--injections" => {
                args.injections = value.parse().map_err(|_| "bad injection count")?
            }
            "--seed" => args.seed = value.parse().map_err(|_| "bad seed")?,
            "--threads" => args.threads = value.parse().map_err(|_| "bad thread count")?,
            "--estimate" => match value.as_str() {
                "ace" => args.estimate_ace = true,
                other => return Err(format!("unknown estimator `{other}` (ace)")),
            },
            "--checkpoint" => {
                args.checkpoint = match value.as_str() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => return Err(format!("bad --checkpoint value `{other}` (on|off)")),
                }
            }
            "--prune" => args.prune = value.parse()?,
            "--prune-static" => args.prune_static = value.parse()?,
            "--target-margin" => {
                let target: f64 = value.parse().map_err(|_| "bad target margin")?;
                if !(target > 0.0 && target < 1.0) {
                    return Err(format!(
                        "--target-margin must be in (0, 1), got {target} \
                         (the paper's figure is 0.0288)"
                    ));
                }
                args.target_margin = Some(target);
            }
            "--sampler" => args.sampler = value.parse()?,
            "--records" => args.records = Some(value),
            "--trace" => args.trace = Some(value),
            "--propagation" => {
                let (every, one_in) = match value.split_once('/') {
                    Some((e, o)) => (
                        e.parse().map_err(|_| "bad propagation period")?,
                        o.parse().map_err(|_| "bad propagation subset")?,
                    ),
                    None => (value.parse().map_err(|_| "bad propagation period")?, 8),
                };
                if every == 0 || one_in == 0 {
                    return Err("--propagation EVERY/ONE_IN must both be nonzero".to_string());
                }
                args.propagation = Some((every, one_in));
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

/// Golden-run counter report: one row per headline counter, then the
/// per-structure occupancy histogram summary.
fn metrics_tables(machine: &MachineConfig, program: &softerr::Program) -> (Table, Table) {
    let mut sim = Sim::new(machine, program);
    sim.enable_counters();
    sim.run(4_000_000_000);
    let c = sim.counters().expect("counters were enabled");
    let mut headline = Table::new(vec!["counter".into(), "value".into()]);
    headline.row(vec!["cycles".into(), c.cycles.to_string()]);
    headline.row(vec![
        "committed instructions".into(),
        c.committed.to_string(),
    ]);
    headline.row(vec!["IPC".into(), format!("{:.3}", c.ipc())]);
    headline.row(vec![
        "fetch stall cycles".into(),
        c.fetch_stall_cycles.to_string(),
    ]);
    headline.row(vec![
        "issue stall cycles".into(),
        c.issue_stall_cycles.to_string(),
    ]);
    headline.row(vec![
        "commit stall cycles".into(),
        c.commit_stall_cycles.to_string(),
    ]);
    headline.row(vec!["branches committed".into(), c.branches.to_string()]);
    headline.row(vec!["mispredicts".into(), c.mispredicts.to_string()]);
    headline.row(vec![
        "mispredicts / kilo-branch".into(),
        format!("{:.1}", c.mispredicts_per_kilo_branch()),
    ]);
    headline.row(vec!["squashes".into(), c.squashes.to_string()]);
    headline.row(vec!["squashed uops".into(), c.squashed_uops.to_string()]);
    let mut occupancy = Table::new(vec![
        "structure".into(),
        "capacity".into(),
        "mean".into(),
        "p50".into(),
        "p99".into(),
        "peak".into(),
        "utilization".into(),
    ]);
    for h in &c.occupancy {
        occupancy.row(vec![
            h.name.to_string(),
            h.capacity.to_string(),
            format!("{:.2}", h.mean()),
            h.percentile(0.5).to_string(),
            h.percentile(0.99).to_string(),
            h.peak().to_string(),
            format!("{:.1}%", 100.0 * h.utilization()),
        ]);
    }
    (headline, occupancy)
}

/// Parses and runs `campaign worker --connect HOST:PORT ...`, exiting
/// the process with the worker's status.
fn worker_main(argv: &[String]) -> ! {
    let mut opts = softerr::WorkerOptions::default();
    let mut connect: Option<String> = None;
    let mut quiet = false;
    let mut log_json = false;
    let mut i = 0;
    let result: Result<(), String> = (|| {
        while i < argv.len() {
            let flag = argv[i].clone();
            i += 1;
            match flag.as_str() {
                "--quiet" => {
                    quiet = true;
                    continue;
                }
                "--log-json" => {
                    log_json = true;
                    continue;
                }
                _ => {}
            }
            let value = argv
                .get(i)
                .ok_or_else(|| format!("missing value for {flag}"))?
                .clone();
            i += 1;
            match flag.as_str() {
                "--connect" => connect = Some(value),
                "--name" => opts.name = value,
                "--capacity" => {
                    opts.capacity = value.parse().map_err(|_| "bad --capacity")?;
                }
                "--max-cells" => {
                    opts.max_cells = Some(value.parse().map_err(|_| "bad --max-cells")?);
                }
                "--abandon-after" => {
                    opts.abandon_after = Some(value.parse().map_err(|_| "bad --abandon-after")?);
                }
                other => return Err(format!("unknown worker option `{other}`")),
            }
        }
        Ok(())
    })();
    let addr = match (result, connect) {
        (Ok(()), Some(addr)) => addr,
        (Err(e), _) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: campaign worker --connect HOST:PORT [--name S] [--capacity N]\n\
                 \x20                    [--max-cells N] [--abandon-after N] [--quiet] [--log-json]"
            );
            std::process::exit(1);
        }
        (Ok(()), None) => {
            eprintln!("error: worker mode needs --connect HOST:PORT");
            std::process::exit(1);
        }
    };
    if quiet {
        telemetry::set_max_level(None);
    }
    if log_json {
        telemetry::install_sink(Box::new(telemetry::JsonlSink::stderr()));
    }
    match softerr::run_worker(&addr, &opts) {
        Ok(report) => {
            println!(
                "worker {}: {} cell(s) completed, {} rejected{}",
                opts.name,
                report.completed,
                report.rejected,
                if report.abandoned { " (abandoned)" } else { "" }
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("worker {} failed: {e}", opts.name);
            std::process::exit(1);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("worker") {
        worker_main(&argv[1..]);
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: campaign [--machine a15|a72] [--workload NAME] [--level O0..O3]\n\
                 \x20              [--structure NAME] [--scale tiny|small|full]\n\
                 \x20              [-n COUNT] [--seed N] [--threads N] [--checkpoint on|off]\n\
                 \x20              [--prune off|on|verify] [--prune-static off|on|verify]\n\
                 \x20              [--target-margin F] [--sampler uniform|importance|importance/verify]\n\
                 \x20              [--estimate ace] [--records FILE] [--trace FILE] [--profile]\n\
                 \x20              [--propagation EVERY[/ONE_IN]] [--metrics] [--quiet]\n\
                 \x20              [--log-json]"
            );
            std::process::exit(1);
        }
    };
    if args.quiet {
        telemetry::set_max_level(None);
    }
    if args.log_json {
        telemetry::install_sink(Box::new(telemetry::JsonlSink::stderr()));
    }
    // Arm before the compile so `cc.*` spans land in the trace too.
    if args.trace.is_some() || args.profile {
        telemetry::set_tracing(true);
    }

    let plan = SamplingPlan {
        sampler: args.sampler,
        stop: match args.target_margin {
            Some(target) => StopRule::TargetMargin {
                target,
                batch: args.injections,
            },
            None => StopRule::FixedN(args.injections),
        },
        prune: PrunePolicy {
            liveness: args.prune,
            demand: args.prune_static,
        },
    };
    if let Err(e) = plan.validate() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    let campaign_cfg = CampaignConfig {
        plan,
        seed: args.seed,
        threads: args.threads,
        checkpoint: args.checkpoint,
    };
    let mut manifest = RunManifest::new(&args.machine.name, &args.machine, &campaign_cfg);
    manifest.workload = args.workload.to_string();
    manifest.level = args.level.to_string();
    manifest.scale = args.scale.to_string();

    let compiled = Compiler::new(args.machine.profile, args.level)
        .compile(&args.workload.source(args.scale))
        .expect("workload must compile");
    let injector = Injector::new(&args.machine, &compiled.program).expect("golden run");
    let golden = injector.golden();
    println!("manifest: {manifest}");
    println!(
        "{} / {} / {} ({} scale): {} cycles, {} instructions fault-free\n",
        args.machine.name, args.workload, args.level, args.scale, golden.cycles, golden.retired
    );

    let mut records_out = args.records.as_deref().map(|path| {
        let mut file = std::io::BufWriter::new(
            std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}")),
        );
        let header = serde_json::to_string(&manifest).expect("manifest serializes");
        writeln!(file, "{header}").expect("record stream writable");
        file
    });

    // One extra golden run with residency tracking; no injections needed.
    let ace = args.estimate_ace.then(|| {
        ace_estimate(&args.machine, &compiled.program, 4_000_000_000)
            .expect("ACE golden run must halt cleanly")
    });

    let mut header = vec![
        "structure".to_string(),
        "bits".into(),
        "AVF".into(),
        "±99%".into(),
        "n".into(),
        "sims".into(),
    ];
    if args.sampler.is_importance() {
        header.push("weight".into());
    }
    if ace.is_some() {
        header.push("static AVF".into());
    }
    header.extend([
        "SDC".into(),
        "Crash".into(),
        "Timeout".into(),
        "Assert".into(),
    ]);
    let mut table = Table::new(header);
    let mut all_records: Vec<FaultRecord> = Vec::new();
    for &s in &args.structures {
        let progress = (!args.quiet).then(|| ProgressLine::new(s.name(), args.injections));
        let mut run = injector.run(s, &campaign_cfg);
        if let Some(p) = progress.as_ref() {
            run = run.observer(p);
        }
        if let Some((every, one_in)) = args.propagation {
            run = run.propagation(every, one_in);
        }
        // Propagation heatmaps fold over in-memory records, so either flag
        // runs the recording engine; only `--records` also streams them.
        let output = if records_out.is_some() || args.propagation.is_some() {
            run.records(true).execute()
        } else {
            run.execute()
        };
        if let Some(records) = output.records {
            if let Some(file) = records_out.as_mut() {
                for record in &records {
                    let line = serde_json::to_string(record).expect("record serializes");
                    writeln!(file, "{line}").expect("record stream writable");
                }
            }
            all_records.extend(records);
        }
        let (result, simulated) = (output.result, output.simulated);
        if let Some(p) = progress.as_ref() {
            p.finish();
        }
        let mut row = vec![
            s.name().to_string(),
            result.bit_population.to_string(),
            format!("{:.4}", result.avf()),
            format!("{:.4}", result.margin_99()),
            result.total().to_string(),
            simulated.to_string(),
        ];
        if args.sampler.is_importance() {
            row.push(format!("{:.4}", result.weight));
        }
        if let Some(est) = &ace {
            row.push(format!("{:.4}", est.avf(s)));
        }
        row.extend([
            result.counts.sdc.to_string(),
            result.counts.crash.to_string(),
            result.counts.timeout.to_string(),
            result.counts.assert_.to_string(),
        ]);
        table.row(row);
    }
    if let Some(file) = records_out.as_mut() {
        file.flush().expect("record stream flushes");
    }
    println!("{table}");
    match args.target_margin {
        Some(target) => println!(
            "(adaptive sampling to a {target} margin at 99% in batches of {}; \
             {} bit x cycle sampling via Leveugle)",
            args.injections, args.sampler,
        ),
        None => println!(
            "({} injections per structure; {} bit x cycle sampling; margin at 99% via Leveugle)",
            args.injections, args.sampler,
        ),
    }
    if args.sampler.is_importance() {
        println!(
            "(sampler={}: faults drawn from the live-and-demanded subpopulation only; \
             AVF and margins Horvitz-Thompson-reweighted by each structure's weight{})",
            args.sampler,
            if args.sampler == SamplerKind::ImportanceVerify {
                "; cross-checked against a uniform campaign at the achieved margin"
            } else {
                ""
            }
        );
    }
    if args.prune != PruneMode::Off {
        println!(
            "(prune={}: faults outside every golden-run live window classify as Masked{})",
            args.prune,
            if args.prune == PruneMode::Verify {
                ", then re-simulate to assert the verdict"
            } else {
                " without simulating"
            }
        );
    }
    if args.prune_static != PruneMode::Off {
        println!(
            "(prune_static={}: faults in statically-dead bits of every covering RF window \
             classify as Masked{})",
            args.prune_static,
            if args.prune_static == PruneMode::Verify {
                ", then re-simulate to assert the verdict"
            } else {
                " without simulating"
            }
        );
    }
    if ace.is_some() {
        println!(
            "(static AVF: entry-granular ACE bit-liveness from one golden run — an upper-bound\n\
             \x20estimate that ignores fault-to-crash conversion; see EXPERIMENTS.md)"
        );
    }
    if !all_records.is_empty() {
        println!("\ndetection latency (cycles from injection to verdict):");
        println!("{}", softerr::forensics::latency_table(&all_records));
        println!("first-divergence census:");
        println!("{}", softerr::forensics::divergence_table(&all_records));
        if let Some(path) = args.records.as_deref() {
            println!("({} records streamed to {path})", all_records.len());
        }
    }
    if let Some((every, _)) = args.propagation {
        let traced = all_records
            .iter()
            .filter(|r| r.propagation.is_some())
            .count();
        println!(
            "\npropagation heatmap ({traced} traced fault(s); snapshots every {every} cycles; \
             columns are cycles since injection):"
        );
        println!(
            "{}",
            softerr::forensics::propagation_heatmap(&all_records, every)
        );
    }
    if args.metrics {
        let (headline, occupancy) = metrics_tables(&args.machine, &compiled.program);
        println!("\ngolden-run microarchitectural counters:");
        println!("{headline}");
        println!("occupancy histograms:");
        println!("{occupancy}");
    }
    if args.trace.is_some() || args.profile {
        let trace = telemetry::take_trace();
        if let Some(path) = args.trace.as_deref() {
            std::fs::write(path, trace.to_chrome_json())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!(
                "\n({} span(s) exported to {path}; open in Perfetto or chrome://tracing)",
                trace.len()
            );
            if trace.dropped > 0 {
                println!("(warning: {} span(s) lost to ring overflow)", trace.dropped);
            }
            println!("\nspan aggregate:");
            println!("{}", trace.aggregate_table());
        }
        if args.profile {
            println!("\nstage attribution (self wall-time per campaign stage):");
            println!("{}", softerr::profile::stage_table(&trace));
            println!("engine workers:");
            println!("{}", softerr::profile::worker_table(&trace));
        }
    }
}
