//! Benchmark regression gate.
//!
//! Compares a freshly generated `BENCH_<group>.json` against the committed
//! baseline copy and fails (exit 1) if any benchmark id present in *both*
//! files regressed by more than the allowed fraction in `mean_ns`. Ids only
//! present on one side are reported but never fail the gate: new benchmarks
//! need a first run to gain a baseline, and retired ones should not haunt
//! the build.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [--max-regression 0.20]
//!            [--budget ID=FRAC]...
//! ```
//!
//! CI timing noise is real, so the threshold is a deliberate 20% by
//! default — loose enough to ignore scheduler jitter, tight enough to catch
//! "the fork deep-copies the machine again" class mistakes, which move the
//! needle by integer factors.
//!
//! `--budget ID=FRAC` (repeatable) tightens the threshold for one id, and
//! turns its presence into an assertion: a budgeted id missing from either
//! file fails the gate instead of being waved through as NEW/GONE. This is
//! how the telemetry overhead contract is enforced — the committed baseline
//! for `rf_campaign/checkpoint` predates span instrumentation, so holding
//! that id inside the 3% telemetry budget proves disabled tracing stays
//! effectively free on the checkpointed RegFile campaign.

use serde::Deserialize;
use std::process::ExitCode;

/// A `BENCH_<group>.json` file as written by the criterion shim.
#[derive(Deserialize)]
struct BenchFile {
    #[allow(dead_code)]
    group: String,
    benchmarks: Vec<Entry>,
}

/// One benchmark row; only `id` and `mean_ns` matter to the gate.
#[derive(Deserialize)]
struct Entry {
    id: String,
    mean_ns: f64,
    #[allow(dead_code)]
    iters: u64,
    #[allow(dead_code)]
    elements_per_sec: f64,
}

fn load(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let file: BenchFile = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(file.benchmarks)
}

/// Parses one `ID=FRAC` budget argument.
fn parse_budget(arg: &str) -> Option<(String, f64)> {
    let (id, frac) = arg.split_once('=')?;
    let frac: f64 = frac.parse().ok()?;
    if id.is_empty() || !frac.is_finite() || frac < 0.0 {
        return None;
    }
    Some((id.to_string(), frac))
}

/// Compares `current` against `baseline`, printing one verdict line per id.
/// Returns true when any shared id exceeds its threshold (the per-id budget
/// when one is set, `max_regression` otherwise) or any budgeted id is
/// missing from either side.
fn gate(
    baseline: &[Entry],
    current: &[Entry],
    max_regression: f64,
    budgets: &[(String, f64)],
) -> bool {
    let threshold = |id: &str| {
        budgets
            .iter()
            .find(|(b, _)| b == id)
            .map_or(max_regression, |&(_, frac)| frac)
    };
    let mut failed = false;
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.id == cur.id) else {
            println!(
                "NEW      {:<28} {:>12.1} ms (no baseline)",
                cur.id,
                cur.mean_ns / 1e6
            );
            continue;
        };
        let ratio = cur.mean_ns / base.mean_ns;
        let allowed = threshold(&cur.id);
        let verdict = if ratio > 1.0 + allowed {
            failed = true;
            "FAIL"
        } else if ratio < 1.0 {
            "FASTER"
        } else {
            "OK"
        };
        println!(
            "{:<8} {:<28} {:>12.1} ms -> {:>10.1} ms ({:+.1}%, budget {:.0}%)",
            verdict,
            cur.id,
            base.mean_ns / 1e6,
            cur.mean_ns / 1e6,
            (ratio - 1.0) * 100.0,
            allowed * 100.0
        );
    }
    for base in baseline {
        if !current.iter().any(|c| c.id == base.id) {
            println!("GONE     {:<28} (in baseline only)", base.id);
        }
    }
    // A budgeted id is a contract, not an opportunistic check: if either
    // side lost it (renamed, bench deleted), the assertion must not vanish
    // silently.
    for (id, _) in budgets {
        for (side, entries) in [("baseline", baseline), ("current", current)] {
            if !entries.iter().any(|e| &e.id == id) {
                eprintln!("bench_gate: budgeted id {id:?} missing from {side}");
                failed = true;
            }
        }
    }
    failed
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_regression = 0.20f64;
    let mut budgets: Vec<(String, f64)> = Vec::new();
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--max-regression" {
            let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                eprintln!("bench_gate: --max-regression needs a numeric value");
                return ExitCode::FAILURE;
            };
            max_regression = v;
        } else if a == "--budget" {
            let Some(b) = it.next().and_then(|v| parse_budget(v)) else {
                eprintln!("bench_gate: --budget needs ID=FRAC (e.g. rf_campaign/checkpoint=0.03)");
                return ExitCode::FAILURE;
            };
            budgets.push(b);
        } else {
            files.push(a.clone());
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        eprintln!(
            "usage: bench_gate <baseline.json> <current.json> \
             [--max-regression 0.20] [--budget ID=FRAC]..."
        );
        return ExitCode::FAILURE;
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    if gate(&baseline, &current, max_regression, &budgets) {
        eprintln!("bench_gate: at least one benchmark exceeded its regression budget");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, mean_ns: f64) -> Entry {
        Entry {
            id: id.to_string(),
            mean_ns,
            iters: 1,
            elements_per_sec: 0.0,
        }
    }

    #[test]
    fn budget_arguments_parse_or_are_rejected() {
        assert_eq!(
            parse_budget("rf_campaign/checkpoint=0.03"),
            Some(("rf_campaign/checkpoint".to_string(), 0.03))
        );
        assert_eq!(parse_budget("id=0"), Some(("id".to_string(), 0.0)));
        assert_eq!(parse_budget("missing-frac"), None);
        assert_eq!(parse_budget("=0.1"), None);
        assert_eq!(parse_budget("id=notafloat"), None);
        assert_eq!(parse_budget("id=-0.5"), None);
        assert_eq!(parse_budget("id=inf"), None);
    }

    #[test]
    fn per_id_budget_overrides_the_global_threshold() {
        let baseline = [entry("a", 100.0), entry("b", 100.0)];
        // +10%: inside the 20% default, outside a 3% budget.
        let current = [entry("a", 110.0), entry("b", 110.0)];
        assert!(!gate(&baseline, &current, 0.20, &[]));
        assert!(gate(&baseline, &current, 0.20, &[("a".to_string(), 0.03)]));
        // Inside the budget passes.
        let current = [entry("a", 102.0), entry("b", 110.0)];
        assert!(!gate(&baseline, &current, 0.20, &[("a".to_string(), 0.03)]));
    }

    #[test]
    fn missing_budgeted_id_fails_instead_of_passing_as_new_or_gone() {
        let with = [entry("a", 100.0)];
        let without: [Entry; 0] = [];
        // Unbudgeted ids on one side only never fail...
        assert!(!gate(&with, &without, 0.20, &[]));
        assert!(!gate(&without, &with, 0.20, &[]));
        // ...but a budgeted id must exist on both sides.
        let budget = [("a".to_string(), 0.03)];
        assert!(gate(&with, &without, 0.20, &budget));
        assert!(gate(&without, &with, 0.20, &budget));
    }
}
