//! Benchmark regression gate.
//!
//! Compares a freshly generated `BENCH_<group>.json` against the committed
//! baseline copy and fails (exit 1) if any benchmark id present in *both*
//! files regressed by more than the allowed fraction in `mean_ns`. Ids only
//! present on one side are reported but never fail the gate: new benchmarks
//! need a first run to gain a baseline, and retired ones should not haunt
//! the build.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [--max-regression 0.20]
//! ```
//!
//! CI timing noise is real, so the threshold is a deliberate 20% by
//! default — loose enough to ignore scheduler jitter, tight enough to catch
//! "the fork deep-copies the machine again" class mistakes, which move the
//! needle by integer factors.

use serde::Deserialize;
use std::process::ExitCode;

/// A `BENCH_<group>.json` file as written by the criterion shim.
#[derive(Deserialize)]
struct BenchFile {
    #[allow(dead_code)]
    group: String,
    benchmarks: Vec<Entry>,
}

/// One benchmark row; only `id` and `mean_ns` matter to the gate.
#[derive(Deserialize)]
struct Entry {
    id: String,
    mean_ns: f64,
    #[allow(dead_code)]
    iters: u64,
    #[allow(dead_code)]
    elements_per_sec: f64,
}

fn load(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let file: BenchFile = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(file.benchmarks)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_regression = 0.20f64;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--max-regression" {
            let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                eprintln!("bench_gate: --max-regression needs a numeric value");
                return ExitCode::FAILURE;
            };
            max_regression = v;
        } else {
            files.push(a.clone());
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <current.json> [--max-regression 0.20]");
        return ExitCode::FAILURE;
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for cur in &current {
        let Some(base) = baseline.iter().find(|b| b.id == cur.id) else {
            println!(
                "NEW      {:<28} {:>12.1} ms (no baseline)",
                cur.id,
                cur.mean_ns / 1e6
            );
            continue;
        };
        let ratio = cur.mean_ns / base.mean_ns;
        let verdict = if ratio > 1.0 + max_regression {
            failed = true;
            "FAIL"
        } else if ratio < 1.0 {
            "FASTER"
        } else {
            "OK"
        };
        println!(
            "{:<8} {:<28} {:>12.1} ms -> {:>10.1} ms ({:+.1}%)",
            verdict,
            cur.id,
            base.mean_ns / 1e6,
            cur.mean_ns / 1e6,
            (ratio - 1.0) * 100.0
        );
    }
    for base in &baseline {
        if !current.iter().any(|c| c.id == base.id) {
            println!("GONE     {:<28} (in baseline only)", base.id);
        }
    }
    if failed {
        eprintln!(
            "bench_gate: at least one benchmark regressed more than {:.0}%",
            max_regression * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
