//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p softerr-bench --bin repro -- all --scale quick
//! cargo run --release -p softerr-bench --bin repro -- fig5 --injections 200
//! ```
//!
//! Completed study cells are persisted in a content-addressed result store
//! under `--results` (keyed by the full cell configuration), so individual
//! figures re-render instantly after the first run and a killed study
//! resumes from the cells it already finished.

use softerr::{
    ace_estimate, telemetry, weighted_avf, AceEstimate, Coordinator, EccScheme, FaultClass,
    MachineConfig, OptLevel, Orchestrator, PassConfig, PruneMode, PrunePolicy, ResultStore,
    SamplerKind, SamplingPlan, Scale, StopRule, Structure, StudyConfig, StudyResults, Table,
    Workload,
};
use softerr::{event, Level};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return;
    }
    let command = args[0].clone();
    if command == "serve" {
        // `serve` has its own flags on top of the generic options, so it
        // parses before the strict Options::parse sees them.
        serve_cmd(&args[1..]);
        return;
    }
    let opts = Options::parse(&args[1..]);
    // Progress events are part of repro's normal chatter; `--quiet` drops
    // them back to silence and `--log-json` reroutes them as JSONL.
    if opts.quiet {
        telemetry::set_max_level(None);
    } else {
        telemetry::set_max_level(Some(Level::Info));
    }
    if opts.log_json {
        telemetry::install_sink(Box::new(telemetry::JsonlSink::stderr()));
    }
    match command.as_str() {
        "table1" => table1(),
        "fig1" => fig1(&opts),
        "fig2" => avf_figure(
            &opts,
            "Fig 2: L1 Instruction Cache AVF",
            &[Structure::L1IData, Structure::L1ITag],
        ),
        "fig3" => avf_figure(
            &opts,
            "Fig 3: L1 Data Cache AVF",
            &[Structure::L1DData, Structure::L1DTag],
        ),
        "fig4" => avf_figure(
            &opts,
            "Fig 4: L2 Cache AVF",
            &[Structure::L2Data, Structure::L2Tag],
        ),
        "fig5" => avf_figure(
            &opts,
            "Fig 5: Physical Register File AVF",
            &[Structure::RegFile],
        ),
        "fig6" => avf_figure(
            &opts,
            "Fig 6: Load Queue and Store Queue AVF",
            &[Structure::LoadQueue, Structure::StoreQueue],
        ),
        "fig7" => avf_figure(
            &opts,
            "Fig 7: Issue Queue AVF (source field)",
            &[Structure::IqSrc, Structure::IqDest],
        ),
        "fig8" => avf_figure(
            &opts,
            "Fig 8: Reorder Buffer AVF (PC field)",
            &[
                Structure::RobPc,
                Structure::RobDest,
                Structure::RobSeq,
                Structure::RobFlags,
            ],
        ),
        "fig9" => fig9(&opts),
        "fig10" => fig10(&opts),
        "fig11" => fig11(&opts),
        "fig12" => fig12(&opts),
        "ablation-opt" => ablation_opt(&opts),
        "ablation-size" => ablation_size(&opts),
        "mbu" => mbu(&opts),
        "ace" => ace_sweep(&opts),
        "vuln" => vuln(&opts),
        "sampling" => sampling(&opts),
        "metrics" => metrics(&opts),
        "profile" => profile_cmd(&opts),
        "all" => {
            table1();
            fig1(&opts);
            avf_figure(
                &opts,
                "Fig 2: L1 Instruction Cache AVF",
                &[Structure::L1IData, Structure::L1ITag],
            );
            avf_figure(
                &opts,
                "Fig 3: L1 Data Cache AVF",
                &[Structure::L1DData, Structure::L1DTag],
            );
            avf_figure(
                &opts,
                "Fig 4: L2 Cache AVF",
                &[Structure::L2Data, Structure::L2Tag],
            );
            avf_figure(
                &opts,
                "Fig 5: Physical Register File AVF",
                &[Structure::RegFile],
            );
            avf_figure(
                &opts,
                "Fig 6: Load Queue and Store Queue AVF",
                &[Structure::LoadQueue, Structure::StoreQueue],
            );
            avf_figure(
                &opts,
                "Fig 7: Issue Queue AVF (source field)",
                &[Structure::IqSrc, Structure::IqDest],
            );
            avf_figure(
                &opts,
                "Fig 8: Reorder Buffer AVF (PC field)",
                &[
                    Structure::RobPc,
                    Structure::RobDest,
                    Structure::RobSeq,
                    Structure::RobFlags,
                ],
            );
            fig9(&opts);
            fig10(&opts);
            fig11(&opts);
            fig12(&opts);
        }
        other => {
            eprintln!("unknown command `{other}`\n");
            usage();
            std::process::exit(1);
        }
    }
}

fn usage() {
    eprintln!("repro — regenerate the paper's tables and figures\n");
    eprintln!("commands:");
    eprintln!("  table1           machine configurations (paper Table I)");
    eprintln!("  fig1             relative performance of O0-O3");
    eprintln!("  fig2..fig8       per-structure AVF (L1I, L1D, L2, RF, LQ/SQ, IQ, ROB)");
    eprintln!("  fig9             weighted-AVF delta of O1/O2/O3 vs O0 per structure");
    eprintln!("  fig10            per-benchmark CPU FIT split by fault class");
    eprintln!("  fig11            failures-per-execution normalized to O0");
    eprintln!("  fig12            CPU FIT under ECC configurations");
    eprintln!("  ablation-opt     single-pass ablations of O2 (perf + RF AVF)");
    eprintln!("  ablation-size    ROB/IQ size sweep (perf + ROB AVF)");
    eprintln!("  mbu              multi-bit-upset extension (1/2/4-bit bursts)");
    eprintln!("  ace              static ACE/bit-liveness AVF sweep (no injections)");
    eprintln!("  vuln             static bit-demand masked fraction vs injected RF AVF,");
    eprintln!("                   with liveness-only vs +static prune rates per cell");
    eprintln!("  sampling         uniform vs importance sampling at equal target margin:");
    eprintln!("                   AVF +/- margin and forked child sims per grid cell");
    eprintln!("  metrics          golden-run microarchitectural counters sweep");
    eprintln!("  profile          stage-attribution wall-time profile of the full study grid");
    eprintln!("                   (8 workloads x O0-O3 x both machines; --trace FILE exports");
    eprintln!("                   the span timeline as Chrome trace-event JSON)");
    eprintln!("  serve            coordinate the study grid for remote `campaign worker`");
    eprintln!("                   processes (--listen ADDR, --spawn-workers N to fork local");
    eprintln!("                   workers, --check-serial to assert bit-identity with a");
    eprintln!("                   serial run, --progress-log FILE for forensics JSONL)");
    eprintln!("  all              everything above (except ablations/mbu/ace/vuln/metrics)\n");
    eprintln!("options:");
    eprintln!("  --scale quick|default|paper   campaign size (default: quick)");
    eprintln!("  --injections N                override injections per cell");
    eprintln!("  --seed N                      campaign seed (default 20240704)");
    eprintln!("  --threads N                   worker threads per campaign (default 1)");
    eprintln!("  --jobs N                      concurrent study cells (default 1; 0 = all cores)");
    eprintln!("  --no-checkpoint               disable golden-prefix checkpointing");
    eprintln!("  --prune off|on|verify         skip provably-masked faults via golden-run");
    eprintln!("                                liveness (verify re-simulates and asserts)");
    eprintln!("  --prune-static off|on|verify  additionally skip faults the compiler's static");
    eprintln!("                                bit-demand analysis proves masked");
    eprintln!("  --target-margin F             adaptive sampling: draw until the 99% error");
    eprintln!("                                margin is <= F (overrides --injections)");
    eprintln!("  --sampler KIND                uniform|importance|importance/verify: draw from");
    eprintln!("                                the full population or the live subpopulation");
    eprintln!("                                (Horvitz-Thompson-reweighted estimates)");
    eprintln!("  --results DIR                 result-store root (default target/softerr-store)");
    eprintln!("  --fresh                       ignore stored results (re-execute every cell)");
    eprintln!("  --estimate ace                print static ACE AVF beside injected (figs 2-8)");
    eprintln!("  --trace FILE                  (profile) export spans as Chrome trace-event JSON");
    eprintln!("  --quiet                       suppress progress/warning events");
    eprintln!("  --log-json                    emit progress/warning events as JSONL on stderr");
}

#[derive(Debug, Clone)]
struct Options {
    scale: Scale,
    injections: u64,
    seed: u64,
    threads: usize,
    jobs: usize,
    checkpoint: bool,
    prune: PruneMode,
    prune_static: PruneMode,
    target_margin: Option<f64>,
    sampler: SamplerKind,
    results_dir: PathBuf,
    fresh: bool,
    estimate_ace: bool,
    trace: Option<PathBuf>,
    quiet: bool,
    log_json: bool,
}

impl Options {
    fn parse(args: &[String]) -> Options {
        let mut opts = Options {
            scale: Scale::Tiny,
            injections: 16,
            seed: 20_240_704,
            threads: 1,
            jobs: 1,
            checkpoint: true,
            prune: PruneMode::Off,
            prune_static: PruneMode::Off,
            target_margin: None,
            sampler: SamplerKind::Uniform,
            results_dir: PathBuf::from("target/softerr-store"),
            fresh: false,
            estimate_ace: false,
            trace: None,
            quiet: false,
            log_json: false,
        };
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].clone();
            let mut next = |what: &str| -> String {
                i += 1;
                args.get(i)
                    .unwrap_or_else(|| {
                        eprintln!("missing value for {what}");
                        std::process::exit(1);
                    })
                    .clone()
            };
            match flag.as_str() {
                "--scale" => match next("--scale").as_str() {
                    "quick" => {
                        opts.scale = Scale::Tiny;
                        opts.injections = 16;
                    }
                    "default" => {
                        opts.scale = Scale::Tiny;
                        opts.injections = 100;
                    }
                    "paper" => {
                        opts.scale = Scale::Full;
                        opts.injections = 2000;
                    }
                    other => {
                        eprintln!("unknown scale `{other}`");
                        std::process::exit(1);
                    }
                },
                "--injections" => opts.injections = next("--injections").parse().expect("number"),
                "--seed" => opts.seed = next("--seed").parse().expect("number"),
                "--threads" => opts.threads = next("--threads").parse().expect("number"),
                "--jobs" => opts.jobs = next("--jobs").parse().expect("number"),
                "--no-checkpoint" => opts.checkpoint = false,
                "--prune" => {
                    opts.prune = next("--prune").parse().unwrap_or_else(|e: String| {
                        eprintln!("{e}");
                        std::process::exit(1);
                    })
                }
                "--prune-static" => {
                    opts.prune_static =
                        next("--prune-static").parse().unwrap_or_else(|e: String| {
                            eprintln!("{e}");
                            std::process::exit(1);
                        })
                }
                "--target-margin" => {
                    let target: f64 = next("--target-margin").parse().expect("number");
                    if !(target > 0.0 && target < 1.0) {
                        eprintln!("--target-margin must be in (0, 1), got {target}");
                        std::process::exit(1);
                    }
                    opts.target_margin = Some(target);
                }
                "--sampler" => {
                    opts.sampler = next("--sampler").parse().unwrap_or_else(|e: String| {
                        eprintln!("{e}");
                        std::process::exit(1);
                    })
                }
                "--results" => opts.results_dir = PathBuf::from(next("--results")),
                "--trace" => opts.trace = Some(PathBuf::from(next("--trace"))),
                "--fresh" => opts.fresh = true,
                "--quiet" => opts.quiet = true,
                "--log-json" => opts.log_json = true,
                "--estimate" => match next("--estimate").as_str() {
                    "ace" => opts.estimate_ace = true,
                    other => {
                        eprintln!("unknown estimator `{other}` (ace)");
                        std::process::exit(1);
                    }
                },
                other => {
                    eprintln!("unknown option `{other}`");
                    std::process::exit(1);
                }
            }
            i += 1;
        }
        opts
    }

    /// The sampling plan every campaign in this invocation runs under,
    /// with `min_injections` as the floor some commands impose on the
    /// fixed count (or adaptive batch size).
    fn plan(&self, min_injections: u64) -> SamplingPlan {
        let n = self.injections.max(min_injections);
        let plan = SamplingPlan {
            sampler: self.sampler,
            stop: match self.target_margin {
                Some(target) => StopRule::TargetMargin { target, batch: n },
                None => StopRule::FixedN(n),
            },
            prune: PrunePolicy {
                liveness: self.prune,
                demand: self.prune_static,
            },
        };
        if let Err(e) = plan.validate() {
            eprintln!("invalid sampling configuration: {e}");
            std::process::exit(1);
        }
        plan
    }
}

/// Runs (or re-serves from the result store) the full study grid.
///
/// Every completed (machine, workload, level) cell is persisted in the
/// content-addressed store under `--results`, keyed by the full cell
/// configuration, so a second invocation with the same parameters executes
/// zero campaigns and a killed study resumes from its completed cells.
/// `--fresh` skips store *reads* (every cell re-executes and overwrites).
fn study(opts: &Options) -> StudyResults {
    let config = study_config(opts);
    let store = ResultStore::open(&opts.results_dir).expect("result store opens");
    event!(
        Level::Info,
        "repro.study",
        { injections: config.total_injections(), store: store.root().display().to_string() },
        "running study: {} injections total (result store: {})",
        config.total_injections(),
        store.root().display()
    );
    let report = Orchestrator::new(config)
        .cell_workers(opts.jobs)
        .store(store)
        .refresh(opts.fresh)
        .execute(&|msg| event!(Level::Info, "repro.study", {}, "  {msg}"))
        .expect("study failed");
    event!(
        Level::Info,
        "repro.study",
        {
            seconds: report.seconds,
            executed: report.executed,
            store_hits: report.store_hits
        },
        "study completed in {:.1}s ({} cell(s) executed, {} from store)",
        report.seconds,
        report.executed,
        report.store_hits
    );
    report.results
}

/// The full paper grid the generic options describe (shared by the local
/// `study()` runner and the distributed `serve` command, so a distributed
/// run answers for exactly the study a local one would).
fn study_config(opts: &Options) -> StudyConfig {
    StudyConfig {
        scale: opts.scale,
        plan: opts.plan(1),
        seed: opts.seed,
        threads: opts.threads,
        checkpoint: opts.checkpoint,
        ..StudyConfig::default()
    }
}

// ---------------------------------------------------------------- serve --

/// `repro serve` — coordinate the study grid for `campaign worker`
/// processes. With `--spawn-workers N` the coordinator forks N local
/// workers (the sibling `campaign` binary); with `--check-serial` it
/// re-runs the study serially afterwards and asserts the distributed
/// store cells and results are bit-identical.
fn serve_cmd(args: &[String]) {
    let mut listen = "127.0.0.1:0".to_string();
    let mut spawn_workers = 0usize;
    let mut check_serial = false;
    let mut progress_log: Option<PathBuf> = None;
    let mut lease_ms = 60_000u64;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let mut next = |what: &str| -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {what}");
                    std::process::exit(1);
                })
                .clone()
        };
        match flag.as_str() {
            "--listen" => listen = next("--listen"),
            "--spawn-workers" => {
                spawn_workers = next("--spawn-workers").parse().expect("number");
            }
            "--lease-ms" => lease_ms = next("--lease-ms").parse().expect("number"),
            "--progress-log" => progress_log = Some(PathBuf::from(next("--progress-log"))),
            "--check-serial" => check_serial = true,
            _ => rest.push(flag),
        }
        i += 1;
    }
    let opts = Options::parse(&rest);
    if opts.quiet {
        telemetry::set_max_level(None);
    } else {
        telemetry::set_max_level(Some(Level::Info));
    }
    if opts.log_json {
        telemetry::install_sink(Box::new(telemetry::JsonlSink::stderr()));
    }
    let config = study_config(&opts);
    let store = ResultStore::open(&opts.results_dir).expect("result store opens");
    let listener = std::net::TcpListener::bind(&listen)
        .unwrap_or_else(|e| panic!("cannot listen on {listen}: {e}"));
    let addr = listener.local_addr().expect("listener address");
    println!(
        "coordinating {} cells ({} injections total) on {addr}",
        config.machines.len() * config.workloads.len() * config.levels.len(),
        config.total_injections()
    );

    let mut children = Vec::new();
    if spawn_workers > 0 {
        let campaign = std::env::current_exe()
            .expect("own path")
            .with_file_name("campaign");
        for i in 0..spawn_workers {
            let child = std::process::Command::new(&campaign)
                .args([
                    "worker",
                    "--connect",
                    &addr.to_string(),
                    "--name",
                    &format!("local{i}"),
                    "--quiet",
                ])
                .spawn()
                .unwrap_or_else(|e| panic!("cannot spawn {}: {e}", campaign.display()));
            children.push(child);
        }
        println!("spawned {spawn_workers} local worker(s)");
    }

    let mut coordinator = Coordinator::new(config.clone(), store)
        .lease_ms(lease_ms)
        .refresh(opts.fresh);
    if let Some(path) = &progress_log {
        coordinator = coordinator.progress_log(path);
    }
    let report = coordinator
        .serve(&listener)
        .expect("distributed study failed");
    for mut child in children {
        let _ = child.wait();
    }
    println!(
        "distributed study complete: {}/{} cell(s) executed by workers, {} from store, {:.1}s",
        report.executed, report.cells, report.store_hits, report.seconds
    );

    if check_serial {
        let serial_dir =
            std::env::temp_dir().join(format!("softerr-serve-check-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&serial_dir);
        let serial_store = ResultStore::open(&serial_dir).expect("serial check store opens");
        let serial = Orchestrator::new(config.clone())
            .store(serial_store)
            .run()
            .expect("serial check run failed");
        assert_eq!(
            serial, report.results,
            "distributed results diverge from the serial run"
        );
        // Compare the raw store bytes cell by cell: the distributed store
        // must be indistinguishable from one a serial run wrote.
        let mut compared = 0;
        for machine in &config.machines {
            for &workload in &config.workloads {
                for &level in &config.levels {
                    let hash = softerr::cell_config_hash(&config, machine, workload, level);
                    let name = format!("cells/{hash}.json");
                    let dist = std::fs::read(opts.results_dir.join(&name))
                        .unwrap_or_else(|e| panic!("distributed cell {name} unreadable: {e}"));
                    let ser = std::fs::read(serial_dir.join(&name))
                        .unwrap_or_else(|e| panic!("serial cell {name} unreadable: {e}"));
                    assert_eq!(
                        dist, ser,
                        "store cell {name} differs between distributed and serial runs"
                    );
                    compared += 1;
                }
            }
        }
        let _ = std::fs::remove_dir_all(&serial_dir);
        println!("serve-check passed: {compared} store cell(s) bit-identical to a serial run");
    }
}

const MACHINE_SHORT: [(&str, &str); 2] = [("Cortex-A15-like", "A15"), ("Cortex-A72-like", "A72")];

fn short_name(machine: &str) -> &str {
    MACHINE_SHORT
        .iter()
        .find(|(long, _)| *long == machine)
        .map(|(_, s)| *s)
        .unwrap_or(machine)
}

// ------------------------------------------------------------- Table I --

fn table1() {
    println!("== Table I: microprocessor configurations ==\n");
    let mut t = Table::new(vec![
        "parameter".into(),
        "Cortex-A15-like".into(),
        "Cortex-A72-like".into(),
    ]);
    let (a, b) = (MachineConfig::cortex_a15(), MachineConfig::cortex_a72());
    let kb = |bytes: u64| format!("{} KB", bytes / 1024);
    t.row(vec![
        "ISA profile".into(),
        a.profile.to_string(),
        b.profile.to_string(),
    ]);
    t.row(vec![
        "L1 D-cache".into(),
        format!("{} ({}-way)", kb(a.l1d.size_bytes), a.l1d.ways),
        format!("{} ({}-way)", kb(b.l1d.size_bytes), b.l1d.ways),
    ]);
    t.row(vec![
        "L1 I-cache".into(),
        format!("{} ({}-way)", kb(a.l1i.size_bytes), a.l1i.ways),
        format!("{} ({}-way)", kb(b.l1i.size_bytes), b.l1i.ways),
    ]);
    t.row(vec![
        "L2 cache".into(),
        format!("{} ({}-way)", kb(a.l2.size_bytes), a.l2.ways),
        format!("{} ({}-way)", kb(b.l2.size_bytes), b.l2.ways),
    ]);
    t.row(vec![
        "physical registers".into(),
        format!("{} x {}-bit", a.phys_regs, a.profile.xlen()),
        format!("{} x {}-bit", b.phys_regs, b.profile.xlen()),
    ]);
    t.row(vec![
        "issue queue".into(),
        format!("{} entries", a.iq_entries),
        format!("{} entries", b.iq_entries),
    ]);
    t.row(vec![
        "LQ / SQ".into(),
        format!("{} / {}", a.lq_entries, a.sq_entries),
        format!("{} / {}", b.lq_entries, b.sq_entries),
    ]);
    t.row(vec![
        "reorder buffer".into(),
        format!("{} entries", a.rob_entries),
        format!("{} entries", b.rob_entries),
    ]);
    t.row(vec![
        "fetch/exec/writeback".into(),
        format!("{}/{}/{}", a.fetch_width, a.issue_width, a.writeback_width),
        format!("{}/{}/{}", b.fetch_width, b.issue_width, b.writeback_width),
    ]);
    t.row(vec![
        "raw FIT/bit".into(),
        format!("{:.2e}", a.raw_fit_per_bit),
        format!("{:.2e}", b.raw_fit_per_bit),
    ]);
    println!("{t}");
}

// --------------------------------------------------------------- Fig 1 --

fn fig1(opts: &Options) {
    let results = study(opts);
    println!("== Fig 1: relative performance among optimization levels ==");
    println!("(speedup over O0, from fault-free cycle counts)\n");
    for machine in results.machine_names() {
        println!("-- {machine}");
        let mut t = Table::new(vec![
            "benchmark".into(),
            "O0".into(),
            "O1".into(),
            "O2".into(),
            "O3".into(),
        ]);
        for w in Workload::ALL {
            let mut row = vec![w.name().to_string()];
            for level in OptLevel::ALL {
                row.push(format!("{:.2}", results.speedup_vs_o0(&machine, w, level)));
            }
            t.row(row);
        }
        println!("{t}");
    }
}

// ---------------------------------------------------------- Figs 2 – 8 --

fn machine_config(name: &str) -> MachineConfig {
    MachineConfig::paper_machines()
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("unknown machine `{name}`"))
}

/// One golden ACE run per (machine, workload, level): `result[machine]` is
/// indexed `[workload][level]` in `Workload::ALL` / `OptLevel::ALL` order.
fn static_estimates(opts: &Options, machines: &[String]) -> Vec<(String, Vec<Vec<AceEstimate>>)> {
    use softerr::Compiler;
    machines
        .iter()
        .map(|name| {
            let cfg = machine_config(name);
            let per_workload = Workload::ALL
                .iter()
                .map(|w| {
                    OptLevel::ALL
                        .iter()
                        .map(|&level| {
                            let compiled = Compiler::new(cfg.profile, level)
                                .compile(&w.source(opts.scale))
                                .expect("workload must compile");
                            ace_estimate(&cfg, &compiled.program, 4_000_000_000)
                                .expect("ACE golden run must halt cleanly")
                        })
                        .collect()
                })
                .collect();
            (name.clone(), per_workload)
        })
        .collect()
}

fn avf_figure(opts: &Options, title: &str, structures: &[Structure]) {
    let results = study(opts);
    println!("== {title} ==");
    println!("(per-benchmark AVF with the wAVF aggregate; fault-class split of wAVF below)\n");
    let statics = if opts.estimate_ace {
        let machines = results.machine_names();
        event!(
            Level::Info,
            "repro.ace",
            { runs: machines.len() * 32 },
            "(running {} ACE golden runs for --estimate ace)",
            machines.len() * 32
        );
        Some(static_estimates(opts, &machines))
    } else {
        None
    };
    for structure in structures {
        for machine in results.machine_names() {
            println!(
                "-- {} — {} ({})",
                short_name(&machine),
                structure,
                structure.component()
            );
            let mut t = Table::new(vec![
                "benchmark".into(),
                "O0".into(),
                "O1".into(),
                "O2".into(),
                "O3".into(),
            ]);
            for w in Workload::ALL {
                let mut row = vec![w.name().to_string()];
                for level in OptLevel::ALL {
                    row.push(format!(
                        "{:.3}",
                        results.avf(&machine, w, level, *structure)
                    ));
                }
                t.row(row);
            }
            let mut wavf_row = vec!["wAVF".to_string()];
            for level in OptLevel::ALL {
                wavf_row.push(format!(
                    "{:.3}",
                    results.weighted_avf(&machine, level, *structure)
                ));
            }
            t.row(wavf_row);
            println!("{t}");
            // Fault-class split of the weighted AVF.
            let mut ct = Table::new(vec![
                "class".into(),
                "O0".into(),
                "O1".into(),
                "O2".into(),
                "O3".into(),
            ]);
            for class in [
                FaultClass::Sdc,
                FaultClass::Crash,
                FaultClass::Timeout,
                FaultClass::Assert,
            ] {
                let mut row = vec![class.name().to_string()];
                for level in OptLevel::ALL {
                    row.push(format!(
                        "{:.3}",
                        results.weighted_fraction(&machine, level, *structure, class)
                    ));
                }
                ct.row(row);
            }
            println!("{ct}");
            // Static ACE estimate next to the injected table above.
            if let Some(statics) = &statics {
                let (_, per_workload) = statics
                    .iter()
                    .find(|(name, _)| *name == machine)
                    .expect("estimates cover every machine");
                println!(
                    "-- {} — {} static ACE AVF (bit-liveness, no injections)",
                    short_name(&machine),
                    structure
                );
                let mut st = Table::new(vec![
                    "benchmark".into(),
                    "O0".into(),
                    "O1".into(),
                    "O2".into(),
                    "O3".into(),
                ]);
                for (w, levels) in Workload::ALL.iter().zip(per_workload) {
                    let mut row = vec![w.name().to_string()];
                    for est in levels {
                        row.push(format!("{:.3}", est.avf(*structure)));
                    }
                    st.row(row);
                }
                let mut wavf_row = vec!["wAVF".to_string()];
                for li in 0..OptLevel::ALL.len() {
                    let samples: Vec<(f64, u64)> = per_workload
                        .iter()
                        .map(|levels| (levels[li].avf(*structure), levels[li].cycles))
                        .collect();
                    wavf_row.push(format!("{:.3}", weighted_avf(&samples)));
                }
                st.row(wavf_row);
                println!("{st}");
            }
        }
    }
}

// ----------------------------------------------------------- static ACE --

fn ace_sweep(opts: &Options) {
    println!("== Static ACE/bit-liveness AVF (one golden run per cell, no injections) ==");
    println!("(cycle-weighted over the eight benchmarks, the wAVF analogue of figs 2-8;");
    println!(" entry-granular upper bound that ignores fault-to-crash conversion)\n");
    let machines: Vec<String> = MachineConfig::paper_machines()
        .into_iter()
        .map(|m| m.name)
        .collect();
    let statics = static_estimates(opts, &machines);
    for (machine, per_workload) in &statics {
        println!("-- {machine}");
        let mut t = Table::new(vec![
            "structure".into(),
            "O0".into(),
            "O1".into(),
            "O2".into(),
            "O3".into(),
        ]);
        for structure in Structure::ALL {
            let mut row = vec![structure.name().to_string()];
            for li in 0..OptLevel::ALL.len() {
                let samples: Vec<(f64, u64)> = per_workload
                    .iter()
                    .map(|levels| (levels[li].avf(structure), levels[li].cycles))
                    .collect();
                row.push(format!("{:.3}", weighted_avf(&samples)));
            }
            t.row(row);
        }
        println!("{t}");
    }
}

// --------------------------------------------------------- static vuln --

/// Static bit-demand masked fraction vs. injected RF AVF, per (machine,
/// workload, level) cell, plus the prune-rate uplift the static masks buy
/// over dynamic liveness pruning alone.
///
/// Every cell runs one RF campaign with both pruners enabled and records
/// on; the per-fault `pruned`/`pruned_static` flags attribute each skipped
/// fault to exactly one stage, so the liveness-only rate and the composed
/// rate come out of a single run (and the tallies are bit-identical to an
/// unpruned campaign — see `tests/static_vuln.rs`).
fn vuln(opts: &Options) {
    use softerr::{CampaignConfig, Compiler, Injector, StaticVulnCell};
    println!("== Static bit vulnerability vs injected RF AVF ==");
    println!("(static masked = fraction of def-site destination bits the compiler's");
    println!(" backward demand analysis proves unobservable; prune rates are the");
    println!(" fraction of sampled RF faults classified without simulation)\n");
    let mut cells = Vec::new();
    for machine in MachineConfig::paper_machines() {
        for w in Workload::ALL {
            for level in OptLevel::ALL {
                let compiled = Compiler::new(machine.profile, level)
                    .compile(&w.source(opts.scale))
                    .expect("workload must compile");
                let injector = Injector::new(&machine, &compiled.program).expect("golden");
                let out = injector
                    .run(
                        Structure::RegFile,
                        &CampaignConfig {
                            plan: opts
                                .plan(40)
                                .prune(PruneMode::On)
                                .prune_static(PruneMode::On),
                            seed: opts.seed,
                            threads: opts.threads,
                            checkpoint: opts.checkpoint,
                        },
                    )
                    .records(true)
                    .execute();
                let records = out.records.as_deref().unwrap_or(&[]);
                let n = records.len().max(1) as f64;
                let dyn_n = records.iter().filter(|r| r.pruned).count() as f64;
                let static_n = records.iter().filter(|r| r.pruned_static).count() as f64;
                event!(
                    Level::Info,
                    "repro.vuln",
                    { machine: machine.name.clone(), workload: w.name(), level: level.to_string() },
                    "(vuln cell {}/{}/{} done)",
                    machine.name,
                    w.name(),
                    level
                );
                cells.push(StaticVulnCell {
                    machine: machine.name.clone(),
                    workload: w.name().to_string(),
                    level: level.to_string(),
                    static_masked: compiled.vuln.masked_fraction(),
                    injected_avf: out.result.avf(),
                    prune_rate_liveness: dyn_n / n,
                    prune_rate_static: (dyn_n + static_n) / n,
                });
            }
        }
    }
    println!("{}", softerr::static_vuln_table(&cells));
    println!(
        "mean prune-rate uplift from static masks: {:+.4}",
        softerr::mean_static_uplift(&cells)
    );
    match softerr::static_injected_rank_correlation(&cells) {
        Some(rho) => println!(
            "Spearman rank correlation, static masked fraction vs measured \
             masked fraction (1 - AVF): {rho:.3}"
        ),
        None => println!("(too few distinct cells for a rank correlation)"),
    }
}

// -------------------------------------------------------------- metrics --

/// Golden-run microarchitectural counter sweep: every (machine, benchmark,
/// opt level) cell runs fault-free once with `Sim` counters enabled.
///
/// Stall percentages are cycles in which the stage made no forward progress;
/// occupancy is the time-average fill of the structure relative to capacity.
fn metrics(opts: &Options) {
    use softerr::{Compiler, Sim};
    println!("== Golden-run microarchitectural counters ==");
    println!(
        "({} scale, fault-free; stalls as % of cycles, occupancy as mean fill)\n",
        opts.scale
    );
    for machine in MachineConfig::paper_machines() {
        println!("-- {}", machine.name);
        let mut t = Table::new(vec![
            "benchmark".into(),
            "level".into(),
            "cycles".into(),
            "IPC".into(),
            "fetch st%".into(),
            "issue st%".into(),
            "commit st%".into(),
            "mpred/kbr".into(),
            "rf occ".into(),
            "rob occ".into(),
            "iq occ".into(),
        ]);
        for w in Workload::ALL {
            for level in OptLevel::ALL {
                let compiled = Compiler::new(machine.profile, level)
                    .compile(&w.source(opts.scale))
                    .expect("workload must compile");
                let mut sim = Sim::new(&machine, &compiled.program);
                sim.enable_counters();
                sim.run(4_000_000_000);
                let c = sim.counters().expect("counters were enabled");
                let pct = |n: u64| format!("{:.1}", 100.0 * n as f64 / c.cycles.max(1) as f64);
                let occ = |name: &str| {
                    c.occupancy
                        .iter()
                        .find(|h| h.name == name)
                        .map(|h| format!("{:.1}%", 100.0 * h.utilization()))
                        .unwrap_or_else(|| "-".into())
                };
                t.row(vec![
                    w.name().to_string(),
                    level.to_string(),
                    c.cycles.to_string(),
                    format!("{:.2}", c.ipc()),
                    pct(c.fetch_stall_cycles),
                    pct(c.issue_stall_cycles),
                    pct(c.commit_stall_cycles),
                    format!("{:.1}", c.mispredicts_per_kilo_branch()),
                    occ("regfile"),
                    occ("rob"),
                    occ("iq"),
                ]);
            }
        }
        println!("{t}");
    }
}

// -------------------------------------------------------------- profile --

/// Stage-attribution profile of the full study grid: the 8 workloads at
/// O0–O3 on both paper machines run with span tracing armed, and the
/// trace is rolled into per-cell, per-stage, and per-worker wall-time
/// tables. Store reads are skipped (a store-served cell executes no
/// campaign and would profile as a pure lookup), but completed cells are
/// still written back.
fn profile_cmd(opts: &Options) {
    println!("== Stage-attribution profile (8 workloads x O0-O3 x both machines) ==");
    println!("(store reads skipped so every cell executes; span tracing armed)\n");
    telemetry::set_tracing(true);
    let mut fresh_opts = opts.clone();
    fresh_opts.fresh = true;
    let _ = study(&fresh_opts);
    let trace = telemetry::take_trace();
    if let Some(path) = &opts.trace {
        std::fs::write(path, trace.to_chrome_json())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!(
            "({} span(s) exported to {}; open in Perfetto or chrome://tracing)",
            trace.len(),
            path.display()
        );
    }
    if trace.dropped > 0 {
        println!(
            "(warning: {} span(s) lost to ring overflow; stage sums undercount)",
            trace.dropped
        );
    }
    println!("\ncell lifecycle (store lookup / compile / execute / store write):");
    println!("{}", softerr::profile::cell_table(&trace));
    println!("stage attribution (self wall-time per campaign stage):");
    println!("{}", softerr::profile::stage_table(&trace));
    println!("engine workers:");
    println!("{}", softerr::profile::worker_table(&trace));
    println!("span aggregate:");
    println!("{}", trace.aggregate_table());
}

// --------------------------------------------------------------- Fig 9 --

fn fig9(opts: &Options) {
    let results = study(opts);
    println!("== Fig 9: weighted-AVF difference of O1/O2/O3 relative to O0 ==");
    println!("(positive = optimized code is MORE vulnerable in that structure)\n");
    for machine in results.machine_names() {
        println!("-- {machine}");
        let mut t = Table::new(vec![
            "structure".into(),
            "O1-O0".into(),
            "O2-O0".into(),
            "O3-O0".into(),
        ]);
        for structure in Structure::ALL {
            let base = results.weighted_avf(&machine, OptLevel::O0, structure);
            let mut row = vec![structure.name().to_string()];
            for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
                let delta = results.weighted_avf(&machine, level, structure) - base;
                row.push(format!("{delta:+.3}"));
            }
            t.row(row);
        }
        println!("{t}");
    }
}

// -------------------------------------------------------------- Fig 10 --

fn fig10(opts: &Options) {
    let results = study(opts);
    println!("== Fig 10: CPU FIT rates per benchmark, split by fault class ==");
    println!("(failures per 10^9 device-hours, unprotected design)\n");
    for machine in results.machine_names() {
        println!("-- {machine}");
        let mut t = Table::new(vec![
            "benchmark/level".into(),
            "SDC".into(),
            "Crash".into(),
            "Timeout".into(),
            "Assert".into(),
            "total".into(),
        ]);
        for w in Workload::ALL {
            for level in OptLevel::ALL {
                let split = results.cpu_fit_by_class(&machine, w, level, EccScheme::None);
                let total: f64 = split.iter().map(|(_, f)| f).sum();
                t.row(vec![
                    format!("{}/{}", w.name(), level),
                    format!("{:.2}", split[0].1),
                    format!("{:.2}", split[1].1),
                    format!("{:.2}", split[2].1),
                    format!("{:.2}", split[3].1),
                    format!("{total:.2}"),
                ]);
            }
        }
        println!("{t}");
    }
}

// -------------------------------------------------------------- Fig 11 --

fn fig11(opts: &Options) {
    let results = study(opts);
    println!("== Fig 11: failures per execution (FPE), normalized to O0 ==");
    println!("(< 1 means the speedup pays back the added vulnerability)\n");
    for machine in results.machine_names() {
        println!("-- {machine}");
        let mut t = Table::new(vec![
            "benchmark".into(),
            "O1/O0".into(),
            "O2/O0".into(),
            "O3/O0".into(),
        ]);
        for w in Workload::ALL {
            let base = results.fpe(&machine, w, OptLevel::O0, EccScheme::None);
            let mut row = vec![w.name().to_string()];
            for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
                let v = results.fpe(&machine, w, level, EccScheme::None);
                row.push(if base > 0.0 {
                    format!("{:.2}", v / base)
                } else {
                    "n/a".to_string()
                });
            }
            t.row(row);
        }
        println!("{t}");
    }
}

// -------------------------------------------------------------- Fig 12 --

fn fig12(opts: &Options) {
    let results = study(opts);
    println!("== Fig 12: CPU FIT per optimization level under ECC schemes ==");
    println!("(weighted over all benchmarks; failures per 10^9 device-hours)\n");
    for machine in results.machine_names() {
        println!("-- {machine}");
        let mut t = Table::new(vec![
            "ECC scheme".into(),
            "O0".into(),
            "O1".into(),
            "O2".into(),
            "O3".into(),
            "best level".into(),
        ]);
        for ecc in EccScheme::ALL {
            let fits: Vec<f64> = OptLevel::ALL
                .iter()
                .map(|&l| results.aggregate_cpu_fit(&machine, l, ecc))
                .collect();
            let best = OptLevel::ALL
                .iter()
                .zip(&fits)
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(l, _)| l.to_string())
                .unwrap_or_default();
            t.row(vec![
                ecc.to_string(),
                format!("{:.3}", fits[0]),
                format!("{:.3}", fits[1]),
                format!("{:.3}", fits[2]),
                format!("{:.3}", fits[3]),
                best,
            ]);
        }
        println!("{t}");
    }
}

// ----------------------------------------------------------- ablations --

fn ablation_opt(opts: &Options) {
    use softerr::{CampaignConfig, Compiler, Injector};
    println!("== Ablation: single-pass removals from O2 (the paper's future work) ==\n");
    let machine = MachineConfig::cortex_a72();
    let w = Workload::Gsm;
    let source = w.source(opts.scale);
    let passes = [
        "(full O2)",
        "cse",
        "licm",
        "schedule",
        "strength-reduce",
        "mem2reg",
    ];
    let mut t = Table::new(vec![
        "O2 without".into(),
        "cycles".into(),
        "code words".into(),
        "RF AVF".into(),
    ]);
    for pass in passes {
        let cfg = if pass == "(full O2)" {
            PassConfig::for_level(OptLevel::O2)
        } else {
            PassConfig::for_level(OptLevel::O2).without(pass)
        };
        let compiled = Compiler::with_passes(machine.profile, cfg)
            .compile(&source)
            .expect("compile");
        let injector = Injector::new(&machine, &compiled.program).expect("golden");
        let campaign = injector
            .run(
                Structure::RegFile,
                &CampaignConfig {
                    plan: opts.plan(50),
                    seed: opts.seed,
                    threads: opts.threads,
                    checkpoint: opts.checkpoint,
                },
            )
            .execute()
            .result;
        t.row(vec![
            pass.to_string(),
            injector.golden().cycles.to_string(),
            compiled.stats.code_words.to_string(),
            format!("{:.3}", campaign.avf()),
        ]);
    }
    println!("{t}");
}

fn mbu(opts: &Options) {
    use softerr::{CampaignConfig, Compiler, Injector};
    println!("== Extension: multi-bit upsets (adjacent-bit bursts, cf. IISWC'19 MBU study) ==\n");
    let machine = MachineConfig::cortex_a72();
    let w = Workload::Sha;
    let compiled = Compiler::new(machine.profile, OptLevel::O2)
        .compile(&w.source(opts.scale))
        .expect("compile");
    let injector = Injector::new(&machine, &compiled.program).expect("golden");
    let mut t = Table::new(vec![
        "structure".into(),
        "1-bit AVF".into(),
        "2-bit AVF".into(),
        "4-bit AVF".into(),
    ]);
    for s in [
        Structure::L1IData,
        Structure::L1DData,
        Structure::RegFile,
        Structure::IqSrc,
    ] {
        let mut row = vec![s.name().to_string()];
        for width in [1u8, 2, 4] {
            let c = injector
                .run(
                    s,
                    &CampaignConfig {
                        plan: opts.plan(60),
                        seed: opts.seed,
                        threads: opts.threads,
                        checkpoint: opts.checkpoint,
                    },
                )
                .burst_width(width)
                .execute()
                .result;
            row.push(format!("{:.3}", c.avf()));
        }
        t.row(row);
    }
    println!("{t}");
    println!("Wider bursts strictly contain the single-bit flip at the same");
    println!("site, so AVF grows monotonically with burst width.");
}

fn ablation_size(opts: &Options) {
    use softerr::{CampaignConfig, Compiler, Injector};
    println!("== Ablation: ROB size sweep (A72-like, gsm at O2) ==\n");
    let w = Workload::Gsm;
    let mut t = Table::new(vec![
        "ROB entries".into(),
        "cycles".into(),
        "ROB-PC AVF".into(),
    ]);
    for rob in [32usize, 64, 128, 192] {
        let mut machine = MachineConfig::cortex_a72();
        machine.rob_entries = rob;
        machine.name = format!("A72-rob{rob}");
        let compiled = Compiler::new(machine.profile, OptLevel::O2)
            .compile(&w.source(opts.scale))
            .expect("compile");
        let injector = Injector::new(&machine, &compiled.program).expect("golden");
        let campaign = injector
            .run(
                Structure::RobPc,
                &CampaignConfig {
                    plan: opts.plan(50),
                    seed: opts.seed,
                    threads: opts.threads,
                    checkpoint: opts.checkpoint,
                },
            )
            .execute()
            .result;
        t.row(vec![
            rob.to_string(),
            injector.golden().cycles.to_string(),
            format!("{:.3}", campaign.avf()),
        ]);
    }
    println!("{t}");
    println!("A smaller ROB runs fuller, so a larger fraction of its bits is");
    println!("architecturally live at any instant — per-bit AVF falls as the");
    println!("structure grows, one of the capacity effects behind the paper's");
    println!("A15-vs-A72 contrasts.");
}

// ----------------------------------------------------------- sampling --

/// `repro sampling` — uniform vs importance sampling at the same target
/// margin, across the full (machine, workload, level) paper grid.
///
/// Each cell runs two adaptive L1I-data campaigns to the same 99% target
/// margin: one drawing uniformly over the full `(bit × cycle)` population
/// and one drawing only from the golden run's live-and-demanded
/// subpopulation with Horvitz–Thompson-reweighted estimates. The table
/// reports AVF ± achieved margin and the forked-child-simulation cost of
/// each, the importance weight, the per-cell savings factor, and whether
/// the two estimates agree within their combined margins (the same
/// predicate the `importance/verify` sampler enforces).
fn sampling(opts: &Options) {
    use softerr::{CampaignConfig, Compiler, Injector, SamplingCell};
    let structure = Structure::L1IData;
    let target = opts.target_margin.unwrap_or(0.08);
    let batch = opts.injections.max(25);
    let mut plan = opts.plan(25);
    plan.stop = StopRule::TargetMargin { target, batch };
    let uni_plan = plan.sampler(SamplerKind::Uniform);
    let imp_plan = plan.sampler(SamplerKind::Importance);
    if let Err(e) = imp_plan.validate() {
        eprintln!("invalid sampling configuration: {e}");
        std::process::exit(1);
    }
    println!("== Sampling efficiency: uniform vs importance at a {target} margin (99%) ==");
    println!(
        "(structure {}; both campaigns grow in batches of {batch} until the achieved",
        structure.name()
    );
    println!(" margin reaches the target; sims = forked child simulations paid for)\n");
    let mut cells = Vec::new();
    for machine in MachineConfig::paper_machines() {
        for w in Workload::ALL {
            for level in OptLevel::ALL {
                let compiled = Compiler::new(machine.profile, level)
                    .compile(&w.source(opts.scale))
                    .expect("workload must compile");
                let injector = Injector::new(&machine, &compiled.program).expect("golden");
                let base = CampaignConfig {
                    plan: uni_plan,
                    seed: opts.seed,
                    threads: opts.threads,
                    checkpoint: opts.checkpoint,
                };
                let uni = injector.run(structure, &base).execute();
                let imp = injector
                    .run(
                        structure,
                        &CampaignConfig {
                            plan: imp_plan,
                            ..base
                        },
                    )
                    .execute();
                event!(
                    Level::Info,
                    "repro.sampling",
                    { machine: machine.name.clone(), workload: w.name(), level: level.to_string() },
                    "(sampling cell {}/{}/{} done: {} vs {} sims)",
                    machine.name,
                    w.name(),
                    level,
                    uni.simulated,
                    imp.simulated
                );
                cells.push(SamplingCell {
                    machine: machine.name.clone(),
                    workload: w.name().to_string(),
                    level: level.to_string(),
                    uniform_avf: uni.result.avf(),
                    uniform_margin: uni.result.margin_99(),
                    uniform_sims: uni.simulated,
                    importance_avf: imp.result.avf(),
                    importance_margin: imp.result.margin_99(),
                    importance_sims: imp.simulated,
                    weight: imp.result.weight,
                });
            }
        }
    }
    println!("{}", softerr::sampling_table(&cells));
    let agree = cells.iter().filter(|c| c.agrees()).count();
    println!(
        "{agree}/{} cells agree within combined margins",
        cells.len()
    );
    if let Some(mean) = softerr::mean_sampling_speedup(&cells) {
        println!("mean child-simulation savings of importance sampling: {mean:.1}x");
    }
}
