//! Criterion benchmark: simulated cycles per second of the cycle-level
//! out-of-order model, per machine configuration (the substrate cost of
//! the whole study).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use softerr::{Compiler, MachineConfig, OptLevel, Scale, Sim, SimOutcome, Workload};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    for machine in MachineConfig::paper_machines() {
        let compiled = Compiler::new(machine.profile, OptLevel::O1)
            .compile(&Workload::Fft.source(Scale::Tiny))
            .expect("compile");
        // Calibrate the cycle count once.
        let mut probe = Sim::new(&machine, &compiled.program);
        let SimOutcome::Halted { cycles, .. } = probe.run(1_000_000_000) else {
            panic!("probe failed");
        };
        group.throughput(Throughput::Elements(cycles));
        group.bench_with_input(
            BenchmarkId::new("fft_o1", &machine.name),
            &machine,
            |b, m| {
                b.iter(|| {
                    let mut sim = Sim::new(m, &compiled.program);
                    match sim.run(1_000_000_000) {
                        SimOutcome::Halted { cycles, .. } => cycles,
                        other => panic!("{other:?}"),
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group! {name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1)); targets = bench_sim}
criterion_main!(benches);
