//! Criterion benchmark: end-to-end fault injections per second.
//!
//! Two groups:
//!
//! * `injection_throughput` — the default RegFile campaign (100 uniformly
//!   sampled faults) with the fresh per-fault engine versus the
//!   golden-prefix checkpointing engine, versus checkpointing plus
//!   liveness pruning. The checkpointing engine simulates the fault-free
//!   prefix once and forks a child per fault, so its advantage grows with
//!   the golden run length; the pruned variant additionally classifies
//!   faults outside every live window as Masked without forking a child
//!   at all. This trio is the headline before/after number for the
//!   campaign engine. The `cow` rows measure the same convoy engine with
//!   copy-on-write forking called out explicitly — one for the RegFile
//!   campaign and one for an `l1d.data` campaign, where each fork
//!   previously deep-copied the full cache tag+data arrays and now shares
//!   every chunk with the golden simulator until somebody writes it.
//! * `single_injection` — the unit cost of one from-scratch injection
//!   (golden positioning + flip + run-to-outcome) across structures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use softerr::{
    CampaignConfig, Compiler, FaultSpec, Injector, MachineConfig, OptLevel, PruneMode, SamplerKind,
    SamplingPlan, Scale, Structure, Workload,
};

fn bench_campaign(c: &mut Criterion) {
    let machine = MachineConfig::cortex_a15();
    let compiled = Compiler::new(machine.profile, OptLevel::O1)
        .compile(&Workload::Qsort.source(Scale::Tiny))
        .expect("compile");
    let injector = Injector::new(&machine, &compiled.program).expect("golden");

    let mut group = c.benchmark_group("injection_throughput");
    let base = CampaignConfig::default();
    group.throughput(Throughput::Elements(base.plan.injections()));
    // The pruned variant pays the one-off liveness golden run up front so
    // the measured loop sees only the steady-state campaign cost.
    injector.liveness();
    for (label, checkpoint, prune, prune_static) in [
        ("fresh", false, PruneMode::Off, PruneMode::Off),
        ("checkpoint", true, PruneMode::Off, PruneMode::Off),
        ("pruned", true, PruneMode::On, PruneMode::Off),
        // Liveness pruning with the compiler's static bit-demand masks
        // composed on top: faults inside live windows whose bits every
        // covering writeback provably never demands are also skipped.
        ("static-pruned", true, PruneMode::On, PruneMode::On),
        // Same engine as `checkpoint`, recorded under the storage scheme's
        // own name so the COW fork cost is a tracked series of its own.
        ("cow", true, PruneMode::Off, PruneMode::Off),
    ] {
        group.bench_with_input(
            BenchmarkId::new("rf_campaign", label),
            &(checkpoint, prune, prune_static),
            |b, &(checkpoint, prune, prune_static)| {
                let cfg = CampaignConfig {
                    checkpoint,
                    plan: base.plan.prune(prune).prune_static(prune_static),
                    ..base
                };
                b.iter(|| injector.run(Structure::RegFile, &cfg).execute().result)
            },
        );
    }
    // Cache campaign: the case COW forking exists for. Every fork used to
    // deep-copy ~100 KB of L1 arrays plus the 1 MB L2 data array.
    for (label, checkpoint) in [("fresh", false), ("cow", true)] {
        group.bench_with_input(
            BenchmarkId::new("l1d_campaign", label),
            &checkpoint,
            |b, &checkpoint| {
                let cfg = CampaignConfig { checkpoint, ..base };
                b.iter(|| injector.run(Structure::L1DData, &cfg).execute().result)
            },
        );
    }
    // Equal-margin sampling comparison: both campaigns grow in batches
    // until the achieved 99% margin reaches the same target on the L1I
    // data array, whose live-and-demanded subpopulation is a tiny slice
    // of the full `(bit x cycle)` population. The uniform row must keep
    // buying batches until the raw binomial margin closes; the importance
    // row draws only live-and-demanded sites and its Horvitz-Thompson
    // margin scales by the weight, so it stops after far fewer forked
    // children. The mean-time ratio of these two rows is the headline
    // child-simulation savings of importance sampling.
    for (label, sampler) in [
        ("uniform", SamplerKind::Uniform),
        ("importance", SamplerKind::Importance),
    ] {
        group.bench_with_input(
            BenchmarkId::new("l1i_campaign", label),
            &sampler,
            |b, &sampler| {
                let cfg = CampaignConfig {
                    plan: SamplingPlan::adaptive(0.08, 25).sampler(sampler),
                    ..base
                };
                b.iter(|| injector.run(Structure::L1IData, &cfg).execute().result)
            },
        );
    }
    group.finish();
    write_profile(&injector, &base);
}

/// One traced checkpointed RegFile campaign (outside any measured loop),
/// whose stage-attribution table lands next to the benchmark rows as
/// `BENCH_injection_throughput.profile.txt`. The numbers explain what the
/// `rf_campaign/checkpoint` row is made of; they are never gated.
fn write_profile(injector: &Injector, base: &CampaignConfig) {
    softerr::telemetry::set_tracing(true);
    let cfg = CampaignConfig {
        checkpoint: true,
        ..*base
    };
    injector.run(Structure::RegFile, &cfg).execute();
    let trace = softerr::telemetry::take_trace();
    let text = format!(
        "stage attribution (rf_campaign/checkpoint, {} spans)\n\n{}\n{}",
        trace.len(),
        softerr::profile::stage_table(&trace),
        trace.aggregate_table(),
    );
    let path = workspace_root().join("BENCH_injection_throughput.profile.txt");
    match std::fs::write(&path, text) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// The outermost ancestor directory holding a `Cargo.toml` (same rule as
/// the criterion shim uses to place `BENCH_<group>.json`).
fn workspace_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    let mut root = cwd.clone();
    for dir in cwd.ancestors() {
        if dir.join("Cargo.toml").exists() {
            root = dir.to_path_buf();
        }
    }
    root
}

fn bench_single(c: &mut Criterion) {
    let machine = MachineConfig::cortex_a15();
    let compiled = Compiler::new(machine.profile, OptLevel::O1)
        .compile(&Workload::Qsort.source(Scale::Tiny))
        .expect("compile");
    let injector = Injector::new(&machine, &compiled.program).expect("golden");
    let mid = injector.golden().cycles / 2;

    let mut group = c.benchmark_group("single_injection");
    for structure in [Structure::RegFile, Structure::L1DData, Structure::RobPc] {
        group.bench_with_input(
            BenchmarkId::new("qsort_o1", structure.name()),
            &structure,
            |b, &s| {
                let mut bit = 0u64;
                let bits = injector.bit_count(s);
                b.iter(|| {
                    bit = (bit + 127) % bits;
                    injector.inject(FaultSpec {
                        structure: s,
                        bit,
                        cycle: mid,
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group! {name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1)); targets = bench_campaign, bench_single}
criterion_main!(benches);
