//! Criterion benchmark: end-to-end fault injections per second (golden
//! positioning + flip + run-to-outcome), the unit cost of every campaign.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softerr::{
    Compiler, FaultSpec, Injector, MachineConfig, OptLevel, Scale, Structure, Workload,
};

fn bench_injection(c: &mut Criterion) {
    let machine = MachineConfig::cortex_a15();
    let compiled = Compiler::new(machine.profile, OptLevel::O1)
        .compile(&Workload::Qsort.source(Scale::Tiny))
        .expect("compile");
    let injector = Injector::new(&machine, &compiled.program).expect("golden");
    let mid = injector.golden().cycles / 2;

    let mut group = c.benchmark_group("injection_throughput");
    for structure in [Structure::RegFile, Structure::L1DData, Structure::RobPc] {
        group.bench_with_input(
            BenchmarkId::new("qsort_o1", structure.name()),
            &structure,
            |b, &s| {
                let mut bit = 0u64;
                let bits = injector.bit_count(s);
                b.iter(|| {
                    bit = (bit + 127) % bits;
                    injector.inject(FaultSpec { structure: s, bit, cycle: mid })
                })
            },
        );
    }
    group.finish();
}

criterion_group!{name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1)); targets = bench_injection}
criterion_main!(benches);
