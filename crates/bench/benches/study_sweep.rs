//! Benchmark: cell-parallel sweep orchestration versus the serial study
//! loop, plus the fully-warm store-served path.
//!
//! Writes `BENCH_study_sweep.json` with the measured wall-clock of a quick
//! study run three ways on the same configuration:
//!
//! * `serial_ms` — one cell worker (the pre-orchestrator behavior),
//! * `parallel_ms` — one cell worker per available core,
//! * `warm_ms` — a re-run against the populated result store (must execute
//!   zero campaigns).
//!
//! The `speedup` figure is serial/parallel; it only demonstrates cell
//! parallelism on a multi-core host, so the host's core count is recorded
//! alongside it.

use softerr::{
    OptLevel, Orchestrator, ResultStore, SamplingPlan, Structure, StudyConfig, Workload,
};
use std::time::Instant;

fn sweep_config() -> StudyConfig {
    StudyConfig {
        workloads: vec![Workload::Qsort, Workload::Sha],
        levels: vec![OptLevel::O0, OptLevel::O2],
        structures: vec![Structure::RegFile, Structure::IqSrc, Structure::L1DData],
        plan: SamplingPlan::fixed(24),
        seed: 0xBEEF,
        ..StudyConfig::default()
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let store_root =
        std::env::temp_dir().join(format!("softerr-sweep-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&store_root).ok();

    let t0 = Instant::now();
    let serial = Orchestrator::new(sweep_config())
        .run()
        .expect("serial sweep");
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let parallel = Orchestrator::new(sweep_config())
        .cell_workers(0)
        .store(ResultStore::open(&store_root).expect("store opens"))
        .execute(&|_| {})
        .expect("parallel sweep");
    let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        serial, parallel.results,
        "cell-parallel sweep must be bit-identical to serial"
    );

    let t0 = Instant::now();
    let warm = Orchestrator::new(sweep_config())
        .cell_workers(0)
        .store(ResultStore::open(&store_root).expect("store reopens"))
        .execute(&|_| {})
        .expect("warm sweep");
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(warm.executed, 0, "warm sweep must be fully store-served");
    assert_eq!(warm.results, serial, "store round-trip must be lossless");
    std::fs::remove_dir_all(&store_root).ok();

    let speedup = serial_ms / parallel_ms;
    let json = format!(
        "{{\n  \"group\": \"study_sweep\",\n  \"cores\": {cores},\n  \"cells\": {},\n  \
         \"serial_ms\": {serial_ms:.1},\n  \"parallel_ms\": {parallel_ms:.1},\n  \
         \"warm_ms\": {warm_ms:.1},\n  \"speedup\": {speedup:.2},\n  \
         \"warm_executed_campaigns\": {}\n}}\n",
        parallel.cells, warm.executed
    );
    // Same destination convention as the criterion-stub groups: the
    // outermost Cargo.toml directory (workspace root), not the bench cwd.
    let root = std::env::current_dir()
        .ok()
        .and_then(|cwd| {
            cwd.ancestors()
                .filter(|d| d.join("Cargo.toml").exists())
                .last()
                .map(std::path::Path::to_path_buf)
        })
        .unwrap_or_default();
    std::fs::write(root.join("BENCH_study_sweep.json"), &json)
        .expect("write BENCH_study_sweep.json");
    print!("{json}");
    eprintln!(
        "study_sweep: serial {serial_ms:.0} ms, parallel {parallel_ms:.0} ms \
         ({speedup:.2}x on {cores} core(s)), warm {warm_ms:.0} ms"
    );
}
