//! Criterion benchmark: MiniC compilation time per optimization level
//! (the cost of each pass pipeline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softerr::{Compiler, OptLevel, Profile, Scale, Workload};

fn bench_compile(c: &mut Criterion) {
    let source = Workload::Rijndael.source(Scale::Tiny);
    let mut group = c.benchmark_group("compile_speed");
    for level in OptLevel::ALL {
        group.bench_with_input(BenchmarkId::new("rijndael", level), &level, |b, &level| {
            b.iter(|| {
                Compiler::new(Profile::A64, level)
                    .compile(&source)
                    .expect("compile")
                    .stats
                    .code_words
            })
        });
    }
    group.finish();
}

criterion_group! {name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1)); targets = bench_compile}
criterion_main!(benches);
