//! Run manifests: the provenance header every campaign artifact carries.
//!
//! A result without its sampling parameters cannot be reproduced or
//! compared, so reports and record streams embed a [`RunManifest`]
//! capturing the seed, machine, workload, optimization level, and a hash
//! of the full configuration. In a `--records` JSONL stream the manifest
//! is the first line; in text reports it prints as a one-line header.

use crate::campaign::{CampaignConfig, PruneMode};
use serde::{Deserialize, Serialize};
use softerr_sim::MachineConfig;
use std::fmt;

/// Provenance of one campaign or repro invocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Campaign RNG seed.
    pub seed: u64,
    /// Injections per structure (the fixed count, or the adaptive batch
    /// size under a margin target).
    pub injections: u64,
    /// Sampling distribution the campaign drew from (`"uniform"`,
    /// `"importance"`, or `"importance/verify"`).
    pub sampler: String,
    /// Stopping rule: `"fixed"` or the margin target as
    /// `"margin=<target>"`.
    pub stop: String,
    /// Worker threads.
    pub threads: u64,
    /// Whether golden-prefix checkpointing was enabled.
    pub checkpoint: bool,
    /// Liveness-based pruning mode the campaign ran under.
    pub prune: PruneMode,
    /// Static bit-demand pruning mode the campaign ran under.
    pub prune_static: PruneMode,
    /// Machine profile name (e.g. `"cortex-a15"`).
    pub machine: String,
    /// ISA profile (e.g. `"A32"`).
    pub profile: String,
    /// Workload name, or `"-"` when not applicable.
    pub workload: String,
    /// Optimization level, or `"-"` when not applicable.
    pub level: String,
    /// Workload scale, or `"-"` when not applicable.
    pub scale: String,
    /// FNV-1a hash (hex) of the machine + campaign configuration, for
    /// quickly telling two runs' configurations apart. Not stable across
    /// crate versions — compare only alongside `version`.
    pub config_hash: String,
    /// Crate version that produced the artifact.
    pub version: String,
}

impl RunManifest {
    /// Builds a manifest for a campaign on `machine` (named `machine_name`)
    /// with the given parameters. Workload, level, and scale default to
    /// `"-"`; harnesses that know them fill the fields in directly.
    pub fn new(machine_name: &str, machine: &MachineConfig, cfg: &CampaignConfig) -> RunManifest {
        RunManifest {
            seed: cfg.seed,
            injections: cfg.plan.injections(),
            sampler: cfg.plan.sampler.name().to_string(),
            stop: match cfg.plan.target_margin() {
                Some(target) => format!("margin={target}"),
                None => "fixed".to_string(),
            },
            threads: cfg.threads as u64,
            checkpoint: cfg.checkpoint,
            prune: cfg.plan.prune.liveness,
            prune_static: cfg.plan.prune.demand,
            machine: machine_name.to_string(),
            profile: format!("{:?}", machine.profile),
            workload: "-".to_string(),
            level: "-".to_string(),
            scale: "-".to_string(),
            config_hash: format!("{:016x}", fnv1a(format!("{machine:?}|{cfg:?}").as_bytes())),
            version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }
}

impl fmt::Display for RunManifest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "machine={} profile={} workload={} level={} scale={} \
             injections={} sampler={} stop={} seed={} threads={} \
             checkpoint={} prune={} prune_static={} config={} v{}",
            self.machine,
            self.profile,
            self.workload,
            self.level,
            self.scale,
            self.injections,
            self.sampler,
            self.stop,
            self.seed,
            self.threads,
            self.checkpoint,
            self.prune,
            self.prune_static,
            self.config_hash,
            self.version,
        )
    }
}

/// 64-bit FNV-1a over a byte string — the hash behind every `config_hash`
/// in this crate and the content-addressed study result store in
/// `softerr-core`. Deterministic across runs and platforms; not stable
/// across crate versions (callers fold the version into the hashed bytes).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{SamplerKind, SamplingPlan};

    #[test]
    fn hash_separates_configurations() {
        let machine = MachineConfig::cortex_a15();
        let cfg = CampaignConfig::default();
        let a = RunManifest::new("cortex-a15", &machine, &cfg);
        let b = RunManifest::new(
            "cortex-a15",
            &machine,
            &CampaignConfig {
                seed: cfg.seed + 1,
                ..cfg
            },
        );
        assert_ne!(a.config_hash, b.config_hash);
        let st = RunManifest::new(
            "cortex-a15",
            &machine,
            &CampaignConfig {
                plan: cfg.plan.prune_static(PruneMode::On),
                ..cfg
            },
        );
        assert_ne!(
            a.config_hash, st.config_hash,
            "prune_static must be part of the configuration identity"
        );
        let imp = RunManifest::new(
            "cortex-a15",
            &machine,
            &CampaignConfig {
                plan: cfg.plan.sampler(SamplerKind::Importance),
                ..cfg
            },
        );
        assert_ne!(
            a.config_hash, imp.config_hash,
            "the sampler kind must be part of the configuration identity"
        );
        let adaptive = RunManifest::new(
            "cortex-a15",
            &machine,
            &CampaignConfig {
                plan: SamplingPlan::adaptive(0.05, cfg.plan.injections()),
                ..cfg
            },
        );
        assert_ne!(
            a.config_hash, adaptive.config_hash,
            "the stop rule must be part of the configuration identity"
        );
        assert_eq!(imp.sampler, "importance");
        assert_eq!(adaptive.stop, "margin=0.05");
        assert_eq!(
            a.config_hash,
            RunManifest::new("cortex-a15", &machine, &cfg).config_hash,
            "hash is deterministic"
        );
        let a72 = RunManifest::new("cortex-a72", &MachineConfig::cortex_a72(), &cfg);
        assert_ne!(a.config_hash, a72.config_hash);
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let mut m = RunManifest::new(
            "cortex-a72",
            &MachineConfig::cortex_a72(),
            &CampaignConfig::default(),
        );
        m.workload = "qsort".to_string();
        m.level = "O2".to_string();
        m.scale = "small".to_string();
        let json = serde_json::to_string(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn display_is_one_line_with_every_field() {
        let m = RunManifest::new(
            "cortex-a15",
            &MachineConfig::cortex_a15(),
            &CampaignConfig::default(),
        );
        let line = m.to_string();
        assert_eq!(line.lines().count(), 1);
        for needle in [
            "machine=cortex-a15",
            "seed=",
            "config=",
            "workload=-",
            "prune_static=",
            "sampler=uniform",
            "stop=fixed",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
    }
}
