//! Sampling strategy, stopping rule, and prune policy — the typed
//! [`SamplingPlan`] that replaced the flat `injections` / `target_margin` /
//! `prune` / `prune_static` knobs on `CampaignConfig`.
//!
//! Two samplers implement the [`Sampler`] trait. [`UniformSampler`] draws
//! `(bit, cycle)` sites uniformly over the full structure population — the
//! historical behavior, bit-identical to the pre-plan code path.
//! [`ImportanceSampler`] inverts the prune filter: instead of drawing
//! uniformly and discarding the 40–99% of sites that the golden run's
//! liveness windows (intersected with static writeback demand masks where
//! available) prove masked, it draws only from the live-and-demanded
//! subpopulation and attaches a Horvitz–Thompson weight equal to that
//! subpopulation's mass. Every forked child simulation is then informative,
//! and the reweighted estimator in [`crate::stats`] reaches the same
//! Leveugle-style confidence margin with ~`weight`× fewer samples.
//!
//! Both samplers are deterministic, seed-keyed, and prefix-stable: a
//! smaller sample is always a prefix of a larger one from the same seed,
//! and the drawn set never depends on thread count.

use crate::campaign::{FaultSpec, Injector, PruneMode};
use serde::{Deserialize, Serialize};
use softerr_sim::Structure;
use std::fmt;

/// Which sampling distribution a campaign draws its fault sites from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SamplerKind {
    /// Uniform over the full `(bit × cycle)` population (the paper's
    /// methodology and the historical default).
    #[default]
    Uniform,
    /// Uniform over the live-and-demanded subpopulation only, with tallies
    /// reweighted by the subpopulation mass (Horvitz–Thompson).
    Importance,
    /// [`SamplerKind::Importance`], plus an equivalence net in the style of
    /// `prune = verify`: after the importance campaign, a uniform campaign
    /// is run to the same achieved margin and the run panics unless the two
    /// AVF estimates agree within their combined margins.
    ImportanceVerify,
}

impl SamplerKind {
    /// Lower-case CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            SamplerKind::Uniform => "uniform",
            SamplerKind::Importance => "importance",
            SamplerKind::ImportanceVerify => "importance/verify",
        }
    }

    /// The sampler implementing this kind (verify mode draws exactly like
    /// plain importance; the cross-check lives in the campaign runner).
    pub fn sampler(self) -> &'static dyn Sampler {
        match self {
            SamplerKind::Uniform => &UniformSampler,
            SamplerKind::Importance | SamplerKind::ImportanceVerify => &ImportanceSampler,
        }
    }

    /// Whether this kind draws from the live subpopulation.
    pub fn is_importance(self) -> bool {
        self != SamplerKind::Uniform
    }
}

impl fmt::Display for SamplerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SamplerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<SamplerKind, String> {
        match s {
            "uniform" => Ok(SamplerKind::Uniform),
            "importance" => Ok(SamplerKind::Importance),
            "importance/verify" | "importance-verify" => Ok(SamplerKind::ImportanceVerify),
            other => Err(format!(
                "unknown sampler '{other}' (uniform|importance|importance/verify)"
            )),
        }
    }
}

/// When a campaign stops drawing faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StopRule {
    /// Inject exactly this many faults (capped at the sampler's
    /// population). The historical `injections` knob.
    FixedN(u64),
    /// Keep drawing in batches of `batch` until the worst-case AVF error
    /// margin at 99% confidence drops to `target` (the historical
    /// `target_margin` + `injections`-as-batch pair). Under an importance
    /// sampler the margin is the reweighted one, so sparse structures stop
    /// after ~`weight²`× fewer draws.
    TargetMargin {
        /// Margin to reach, e.g. the paper's `0.0288`.
        target: f64,
        /// Sample-growth granularity (0 is treated as 1).
        batch: u64,
    },
}

impl Default for StopRule {
    fn default() -> StopRule {
        StopRule::FixedN(100)
    }
}

/// Pre-simulation prune policy: which proof stages may classify faults as
/// Masked without forking a child simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PrunePolicy {
    /// Dynamic liveness-window pruning (the historical `prune` knob).
    pub liveness: PruneMode,
    /// Static bit-demand pruning on top (the historical `prune_static`
    /// knob); a strict refinement of the liveness stage.
    pub demand: PruneMode,
}

impl PrunePolicy {
    /// Any stage set to [`PruneMode::Verify`]?
    pub fn any_verify(self) -> bool {
        self.liveness == PruneMode::Verify || self.demand == PruneMode::Verify
    }

    /// Any stage set to [`PruneMode::On`]?
    pub fn any_on(self) -> bool {
        self.liveness == PruneMode::On || self.demand == PruneMode::On
    }
}

/// What to sample, when to stop, and what to prune — the complete sampling
/// half of a [`crate::CampaignConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SamplingPlan {
    /// Sampling distribution.
    pub sampler: SamplerKind,
    /// Stopping rule.
    pub stop: StopRule,
    /// Prune policy.
    pub prune: PrunePolicy,
}

impl SamplingPlan {
    /// Uniform plan injecting exactly `n` faults (the old
    /// `injections: n`).
    pub fn fixed(n: u64) -> SamplingPlan {
        SamplingPlan {
            stop: StopRule::FixedN(n),
            ..SamplingPlan::default()
        }
    }

    /// Uniform plan growing in batches of `batch` until the 99% margin
    /// reaches `target` (the old `target_margin: Some(target)` with
    /// `injections: batch`).
    pub fn adaptive(target: f64, batch: u64) -> SamplingPlan {
        SamplingPlan {
            stop: StopRule::TargetMargin { target, batch },
            ..SamplingPlan::default()
        }
    }

    /// Replaces the sampler kind.
    #[must_use]
    pub fn sampler(mut self, sampler: SamplerKind) -> SamplingPlan {
        self.sampler = sampler;
        self
    }

    /// Replaces the liveness-prune stage (the old `prune` field).
    #[must_use]
    pub fn prune(mut self, mode: PruneMode) -> SamplingPlan {
        self.prune.liveness = mode;
        self
    }

    /// Replaces the static demand-prune stage (the old `prune_static`
    /// field).
    #[must_use]
    pub fn prune_static(mut self, mode: PruneMode) -> SamplingPlan {
        self.prune.demand = mode;
        self
    }

    /// Nominal injection count: the fixed `n`, or the batch size under a
    /// margin target (what the old `injections` field meant in each mode).
    pub fn injections(&self) -> u64 {
        match self.stop {
            StopRule::FixedN(n) => n,
            StopRule::TargetMargin { batch, .. } => batch,
        }
    }

    /// The margin target, if this plan stops on one.
    pub fn target_margin(&self) -> Option<f64> {
        match self.stop {
            StopRule::FixedN(_) => None,
            StopRule::TargetMargin { target, .. } => Some(target),
        }
    }

    /// Rejects nonsense plans with a human-readable reason.
    ///
    /// An importance sampler cannot be combined with `prune = verify` in
    /// either stage: verify mode asserts that *prunable* faults simulate as
    /// Masked, but an importance sampler never draws a prunable fault, so
    /// the net would vacuously pass while pretending to check something. A
    /// margin target must be in `(0, 1)` — zero margin means a full census
    /// and is always a configuration mistake.
    pub fn validate(&self) -> Result<(), String> {
        if let StopRule::TargetMargin { target, .. } = self.stop {
            if !target.is_finite() || target <= 0.0 || target >= 1.0 {
                return Err(format!("target margin must be in (0, 1), got {target}"));
            }
        }
        if self.sampler.is_importance() && self.prune.any_verify() {
            return Err(format!(
                "sampler '{}' cannot be combined with prune = verify: importance \
                 sampling never draws a prunable fault, so the verification \
                 would be vacuous",
                self.sampler
            ));
        }
        Ok(())
    }
}

/// A deterministic, seed-keyed, prefix-stable fault-site sampler.
///
/// `sample(n)` must be a prefix of `sample(n + k)` from the same seed, and
/// both `population` and `weight` must be pure functions of the injector's
/// golden run — never of thread count or of previously drawn samples.
pub trait Sampler: Sync {
    /// Lower-case display name.
    fn name(&self) -> &'static str;

    /// Number of distinct fault sites this sampler can draw for
    /// `structure` (the finite-population-correction denominator).
    fn population(&self, injector: &Injector<'_>, structure: Structure) -> u64;

    /// Horvitz–Thompson weight attached to every drawn fault: the
    /// probability mass of the sampled subpopulation (1.0 for uniform).
    fn weight(&self, injector: &Injector<'_>, structure: Structure) -> f64;

    /// Draws `n` distinct faults (capped at the population), reproducibly
    /// from `seed`.
    fn sample(
        &self,
        injector: &Injector<'_>,
        structure: Structure,
        n: u64,
        seed: u64,
    ) -> Vec<FaultSpec>;
}

/// Uniform sampling over the full `(bit × cycle)` population — bit-identical
/// to the pre-[`SamplingPlan`] campaign path.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformSampler;

impl Sampler for UniformSampler {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn population(&self, injector: &Injector<'_>, structure: Structure) -> u64 {
        injector
            .bit_count(structure)
            .saturating_mul(injector.golden().cycles.max(1))
    }

    fn weight(&self, _injector: &Injector<'_>, _structure: Structure) -> f64 {
        1.0
    }

    fn sample(
        &self,
        injector: &Injector<'_>,
        structure: Structure,
        n: u64,
        seed: u64,
    ) -> Vec<FaultSpec> {
        injector.sample_faults(structure, n, seed)
    }
}

/// Importance sampling over the live-and-demanded subpopulation: rejection
/// sampling against [`softerr_sim::LivenessMap::is_vulnerable`] on the same
/// RNG stream the uniform sampler uses, so on a structure whose every site
/// is live the drawn sample is bit-identical to [`UniformSampler`]'s.
///
/// The weight is `vulnerable sites / total sites`, computed exactly by
/// [`softerr_sim::StructureLiveness::vulnerable_site_count`]; untracked
/// structures fall back to weight 1.0 (everything conservative-live).
#[derive(Debug, Clone, Copy, Default)]
pub struct ImportanceSampler;

impl Sampler for ImportanceSampler {
    fn name(&self) -> &'static str {
        "importance"
    }

    fn population(&self, injector: &Injector<'_>, structure: Structure) -> u64 {
        let bits = injector.bit_count(structure);
        if bits == 0 {
            return 0;
        }
        let cycles = injector.golden().cycles.max(1);
        let total = bits.saturating_mul(cycles);
        injector
            .liveness()
            .vulnerable_site_count(structure, cycles)
            .unwrap_or(total)
            .min(total)
    }

    fn weight(&self, injector: &Injector<'_>, structure: Structure) -> f64 {
        let total = UniformSampler.population(injector, structure);
        if total == 0 {
            return 1.0;
        }
        self.population(injector, structure) as f64 / total as f64
    }

    fn sample(
        &self,
        injector: &Injector<'_>,
        structure: Structure,
        n: u64,
        seed: u64,
    ) -> Vec<FaultSpec> {
        injector.sample_importance(structure, n, seed)
    }
}

/// Builds the [`crate::CampaignConfig`]'s effective batch size for adaptive
/// growth (shared by the campaign runner and the verify cross-check).
pub(crate) fn stop_batch(plan: &SamplingPlan) -> u64 {
    plan.injections().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_kind_round_trips_through_str() {
        for kind in [
            SamplerKind::Uniform,
            SamplerKind::Importance,
            SamplerKind::ImportanceVerify,
        ] {
            assert_eq!(kind.name().parse::<SamplerKind>().unwrap(), kind);
        }
        assert_eq!(
            "importance-verify".parse::<SamplerKind>().unwrap(),
            SamplerKind::ImportanceVerify
        );
        assert!("gaussian".parse::<SamplerKind>().is_err());
    }

    #[test]
    fn plan_constructors_mirror_the_old_flat_knobs() {
        let fixed = SamplingPlan::fixed(2000);
        assert_eq!(fixed.injections(), 2000);
        assert_eq!(fixed.target_margin(), None);
        assert_eq!(fixed.sampler, SamplerKind::Uniform);
        let adaptive = SamplingPlan::adaptive(0.0288, 100);
        assert_eq!(adaptive.injections(), 100);
        assert_eq!(adaptive.target_margin(), Some(0.0288));
        let pruned = SamplingPlan::fixed(10)
            .prune(PruneMode::On)
            .prune_static(PruneMode::Verify);
        assert_eq!(pruned.prune.liveness, PruneMode::On);
        assert_eq!(pruned.prune.demand, PruneMode::Verify);
        assert!(pruned.prune.any_on() && pruned.prune.any_verify());
    }

    #[test]
    fn validate_rejects_nonsense_plans() {
        assert!(SamplingPlan::fixed(100).validate().is_ok());
        assert!(SamplingPlan::adaptive(0.05, 100)
            .sampler(SamplerKind::Importance)
            .prune(PruneMode::On)
            .validate()
            .is_ok());
        // Zero, one, and non-finite margin targets are configuration bugs.
        for target in [0.0, 1.0, -0.1, f64::NAN, f64::INFINITY] {
            assert!(
                SamplingPlan::adaptive(target, 100).validate().is_err(),
                "target {target} must be rejected"
            );
        }
        // Importance + prune verify is vacuous and must be rejected.
        for sampler in [SamplerKind::Importance, SamplerKind::ImportanceVerify] {
            for plan in [
                SamplingPlan::fixed(10)
                    .sampler(sampler)
                    .prune(PruneMode::Verify),
                SamplingPlan::fixed(10)
                    .sampler(sampler)
                    .prune_static(PruneMode::Verify),
            ] {
                assert!(plan.validate().is_err(), "{plan:?} must be rejected");
            }
        }
        // ...but uniform + verify stays the regression net it always was.
        assert!(SamplingPlan::fixed(10)
            .prune(PruneMode::Verify)
            .validate()
            .is_ok());
    }

    #[test]
    fn plan_round_trips_through_serde() {
        for plan in [
            SamplingPlan::default(),
            SamplingPlan::fixed(2000)
                .sampler(SamplerKind::Importance)
                .prune(PruneMode::On),
            SamplingPlan::adaptive(0.0288, 250).sampler(SamplerKind::ImportanceVerify),
        ] {
            let json = serde_json::to_string(&plan).expect("serialize");
            let back: SamplingPlan = serde_json::from_str(&json).expect("roundtrip");
            assert_eq!(back, plan);
        }
    }
}
