//! Fault specification, single-run execution, and campaign orchestration.

use crate::progress::CampaignObserver;
use crate::record::{DivergenceSite, FaultRecord, PropagationSample, PropagationTrace};
use crate::sampler::{Sampler, SamplerKind, SamplingPlan, StopRule};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use softerr_isa::Program;
use softerr_sim::{LivenessMap, MachineConfig, Sim, SimOutcome, Structure};
use softerr_telemetry::{event, span, Level, Span};
use std::collections::HashSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// One single-bit transient fault: flip `bit` of `structure` at `cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Target structure field.
    pub structure: Structure,
    /// Bit index within the structure (`0..bit_count`).
    pub bit: u64,
    /// Injection cycle (`0..golden_cycles`).
    pub cycle: u64,
}

/// Outcome class of one injection (the paper's classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultClass {
    /// No architecturally visible deviation.
    Masked,
    /// Silent data corruption: wrong output, no other indication.
    Sdc,
    /// Process/kernel crash (architectural fault at commit).
    Crash,
    /// Exceeded 2× the fault-free execution time.
    Timeout,
    /// Simulator assertion (unhandled microarchitectural state).
    Assert,
}

impl FaultClass {
    /// All classes, masked first.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::Masked,
        FaultClass::Sdc,
        FaultClass::Crash,
        FaultClass::Timeout,
        FaultClass::Assert,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Masked => "Masked",
            FaultClass::Sdc => "SDC",
            FaultClass::Crash => "Crash",
            FaultClass::Timeout => "Timeout",
            FaultClass::Assert => "Assert",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class injection counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Masked runs.
    pub masked: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Crashes.
    pub crash: u64,
    /// Timeouts.
    pub timeout: u64,
    /// Asserts.
    pub assert_: u64,
}

impl ClassCounts {
    /// Adds one outcome.
    pub fn record(&mut self, class: FaultClass) {
        match class {
            FaultClass::Masked => self.masked += 1,
            FaultClass::Sdc => self.sdc += 1,
            FaultClass::Crash => self.crash += 1,
            FaultClass::Timeout => self.timeout += 1,
            FaultClass::Assert => self.assert_ += 1,
        }
    }

    /// Count of one class.
    pub fn get(&self, class: FaultClass) -> u64 {
        match class {
            FaultClass::Masked => self.masked,
            FaultClass::Sdc => self.sdc,
            FaultClass::Crash => self.crash,
            FaultClass::Timeout => self.timeout,
            FaultClass::Assert => self.assert_,
        }
    }

    /// Total injections.
    pub fn total(&self) -> u64 {
        self.masked + self.sdc + self.crash + self.timeout + self.assert_
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &ClassCounts) {
        self.masked += other.masked;
        self.sdc += other.sdc;
        self.crash += other.crash;
        self.timeout += other.timeout;
        self.assert_ += other.assert_;
    }
}

/// Fault-free reference execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Golden {
    /// Execution time in cycles.
    pub cycles: u64,
    /// Retired instruction count.
    pub retired: u64,
    /// Program output.
    pub output: Vec<u64>,
}

/// The golden run failed (the program itself is broken).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenError(pub String);

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "golden run failed: {}", self.0)
    }
}

impl std::error::Error for GoldenError {}

/// Liveness-based pre-simulation pruning policy.
///
/// The golden run's [`softerr_sim::LivenessMap`] knows, per structure, the
/// exact (bit, cycle) windows in which a flip could still be observed. A
/// fault outside every window is Masked by construction; pruning classifies
/// it on the spot instead of forking a child simulator for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PruneMode {
    /// Simulate every sampled fault (the baseline engines).
    #[default]
    Off,
    /// Classify faults landing outside every live window as Masked without
    /// simulating them. Class tallies are bit-identical to `Off`.
    On,
    /// Simulate every fault anyway and assert that each prunable one really
    /// classifies as Masked — the regression net for the liveness model.
    /// Panics on a mismatch (an unsound prune window is a correctness bug).
    Verify,
}

impl PruneMode {
    /// Lower-case CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            PruneMode::Off => "off",
            PruneMode::On => "on",
            PruneMode::Verify => "verify",
        }
    }
}

impl fmt::Display for PruneMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PruneMode {
    type Err = String;

    fn from_str(s: &str) -> Result<PruneMode, String> {
        match s {
            "off" => Ok(PruneMode::Off),
            "on" => Ok(PruneMode::On),
            "verify" => Ok(PruneMode::Verify),
            other => Err(format!("unknown prune mode '{other}' (off|on|verify)")),
        }
    }
}

/// Campaign parameters.
///
/// The sampling half — how many faults, which distribution, when to stop,
/// and what to prune — lives in the typed [`SamplingPlan`] (the flat
/// `injections` / `target_margin` / `prune` / `prune_static` fields it
/// replaced are gone; see the README migration table).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// What to sample, when to stop, and what to prune. The default plan
    /// (`SamplingPlan::fixed(100)`, uniform, no pruning) keeps the bundled
    /// experiments fast; the paper samples 2,000 per structure to reach its
    /// reported confidence margins — use `SamplingPlan::fixed(2000)` to
    /// match.
    pub plan: SamplingPlan,
    /// RNG seed (campaigns are fully reproducible).
    pub seed: u64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Golden-prefix checkpointing. When enabled (the default), the engine
    /// sorts sampled faults by cycle, advances a single fault-free simulator
    /// once, and forks a child at each fault cycle instead of re-simulating
    /// the prefix from cycle 0 per injection. Children run in lockstep with
    /// the golden simulator and are classified the moment they either end or
    /// re-converge to the golden state. Classification is bit-identical to
    /// the fresh per-fault path (`checkpoint: false`).
    pub checkpoint: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            plan: SamplingPlan::fixed(100),
            seed: 0xB17F11B5,
            threads: 1,
            checkpoint: true,
        }
    }
}

/// Aggregated result of a campaign on one structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Target structure.
    pub structure: Structure,
    /// Injectable bit population of the structure.
    pub bit_population: u64,
    /// Golden execution time (cycles) the faults were sampled over.
    pub golden_cycles: u64,
    /// Per-class tallies.
    pub counts: ClassCounts,
    /// Horvitz–Thompson weight of every sample: the probability mass of
    /// the subpopulation the faults were drawn from. 1.0 under uniform
    /// sampling; the live fraction under importance sampling. Every
    /// derived statistic ([`CampaignResult::avf`],
    /// [`CampaignResult::fraction`], [`CampaignResult::margin_99`])
    /// reweights by it.
    pub weight: f64,
    /// Size of the sampled subpopulation under importance sampling
    /// (`None` = the full `bit_population × golden_cycles` population).
    pub live_population: Option<u64>,
}

impl CampaignResult {
    /// Total injections.
    pub fn total(&self) -> u64 {
        self.counts.total()
    }

    /// Architectural vulnerability factor: the non-masked fraction of the
    /// full population. Under importance sampling every unsampled site is
    /// Masked by construction, so the sample's non-masked fraction is
    /// reweighted by the live mass (Horvitz–Thompson).
    pub fn avf(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        self.weight * (1.0 - self.counts.masked as f64 / n as f64)
    }

    /// Full-population fraction of a class. Non-Masked classes reweight
    /// the sample proportion by the sampled mass; Masked additionally
    /// absorbs the entire unsampled (provably masked) remainder, so the
    /// five fractions still sum to 1. With `weight = 1.0` both formulas
    /// reduce bit-identically to the plain sample proportions.
    pub fn fraction(&self, class: FaultClass) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        if class == FaultClass::Masked {
            if self.weight == 1.0 {
                self.counts.masked as f64 / n as f64
            } else {
                1.0 - self.avf()
            }
        } else {
            crate::stats::ht_fraction(self.counts.get(class), n, self.weight)
        }
    }

    /// Error margin of the AVF estimate at 99% confidence (Leveugle;
    /// reweighted over the live subpopulation for importance-sampled
    /// campaigns).
    pub fn margin_99(&self) -> f64 {
        let population = self.live_population.unwrap_or_else(|| {
            self.bit_population
                .saturating_mul(self.golden_cycles.max(1))
        });
        crate::stats::weighted_error_margin(
            self.total(),
            population,
            self.weight,
            crate::stats::Z_99,
        )
    }
}

/// Fault injector bound to one (machine, program) pair.
///
/// Holds the golden reference; every injection constructs a fresh simulator
/// so faults cannot leak between runs.
#[derive(Debug)]
pub struct Injector<'a> {
    cfg: &'a MachineConfig,
    program: &'a Program,
    golden: Golden,
    /// Per-structure injectable-bit populations, captured once at
    /// construction: machine geometry, not simulation state, so no caller
    /// should ever pay a full `Sim` allocation just to read a size.
    bit_counts: [u64; Structure::ALL.len()],
    /// Golden-run liveness windows, built lazily by one extra instrumented
    /// golden execution the first time a campaign prunes (or verifies).
    liveness: OnceLock<LivenessMap>,
}

impl<'a> Injector<'a> {
    /// Runs the golden execution and prepares the injector.
    ///
    /// # Errors
    ///
    /// [`GoldenError`] if the fault-free program does not halt cleanly.
    pub fn new(cfg: &'a MachineConfig, program: &'a Program) -> Result<Injector<'a>, GoldenError> {
        let mut sp = span("campaign.golden");
        let mut sim = Sim::new(cfg, program);
        let bit_counts = Structure::ALL.map(|s| sim.bit_count(s));
        match sim.run(4_000_000_000) {
            SimOutcome::Halted {
                cycles,
                retired,
                output,
            } => {
                sp.record("cycles", cycles);
                Ok(Injector {
                    cfg,
                    program,
                    golden: Golden {
                        cycles,
                        retired,
                        output,
                    },
                    bit_counts,
                    liveness: OnceLock::new(),
                })
            }
            other => Err(GoldenError(format!("{other:?}"))),
        }
    }

    /// The golden reference run.
    pub fn golden(&self) -> &Golden {
        &self.golden
    }

    /// Number of injectable bits of `structure` on this machine (cached at
    /// construction — this used to allocate a throwaway `Sim` per call,
    /// which dominated the pruning filter once COW forking made the convoy
    /// itself cheap).
    pub fn bit_count(&self, structure: Structure) -> u64 {
        self.bit_counts[Structure::ALL
            .iter()
            .position(|&s| s == structure)
            .expect("Structure::ALL is exhaustive")]
    }

    /// Per-structure live windows of the golden run, built on first use by
    /// one extra instrumented golden execution and cached for the
    /// injector's lifetime.
    pub fn liveness(&self) -> &LivenessMap {
        self.liveness.get_or_init(|| {
            let _sp = span("campaign.liveness");
            let mut sim = Sim::new(self.cfg, self.program);
            sim.enable_liveness();
            {
                let _mask_sp = span("campaign.masks");
                sim.attach_static_masks(self.program);
            }
            let _ = sim.run(4_000_000_000);
            sim.liveness_map()
                .expect("liveness instrumentation was enabled")
        })
    }

    /// True when every bit of the `width`-bit burst at `fault` lands
    /// outside all of the golden run's live windows: the flip can never be
    /// observed, so the fault is Masked by construction and a campaign may
    /// classify it without simulating.
    fn prunable(&self, fault: FaultSpec, width: u8) -> bool {
        let bits = self.bit_count(fault.structure);
        if bits == 0 {
            // Nothing to flip; the engines classify this Masked themselves.
            return false;
        }
        let map = self.liveness();
        (0..u64::from(width.max(1)))
            .all(|k| !map.is_ace(fault.structure, (fault.bit + k) % bits, fault.cycle))
    }

    /// True when every bit of the burst is provably unobservable once the
    /// per-window static demand masks are taken into account: the bit is
    /// either outside all danger windows (the [`Injector::prunable`] case)
    /// or inside windows whose writing instructions the compiler proved
    /// never demand it. Always true where `prunable` is true, so static
    /// pruning is a strict refinement of liveness pruning.
    fn prunable_static(&self, fault: FaultSpec, width: u8) -> bool {
        let bits = self.bit_count(fault.structure);
        if bits == 0 {
            return false;
        }
        let map = self.liveness();
        (0..u64::from(width.max(1)))
            .all(|k| !map.is_vulnerable(fault.structure, (fault.bit + k) % bits, fault.cycle))
    }

    /// Executes one single-bit injection and classifies the outcome.
    pub fn inject(&self, fault: FaultSpec) -> FaultClass {
        self.inject_burst(fault, 1)
    }

    /// Executes a multi-bit-upset injection: `width` *adjacent* bits are
    /// flipped at the fault cycle (width 1 is the paper's single-event
    /// upset; larger widths model the MBU bursts of the authors' companion
    /// IISWC'19 study). Bits past the end of the structure wrap around.
    ///
    /// A simulator panic during the faulted run is caught and classified as
    /// [`FaultClass::Assert`] (with a warning event) instead of aborting
    /// the campaign: a flipped bit driving the model into a state it refuses
    /// to handle is exactly what the paper's Assert class records.
    pub fn inject_burst(&self, fault: FaultSpec, width: u8) -> FaultClass {
        self.inject_outcome(fault, width).class
    }

    /// Fresh-path injection with forensic context (the end cycle; the fresh
    /// path has no golden simulator alongside to diff, so no divergence
    /// site).
    fn inject_outcome(&self, fault: FaultSpec, width: u8) -> Outcome {
        match catch_unwind(AssertUnwindSafe(|| self.inject_outcome_inner(fault, width))) {
            Ok(outcome) => outcome,
            Err(_) => {
                event!(
                    Level::Warn,
                    "inject.fresh",
                    { bit: fault.bit, cycle: fault.cycle, width: width },
                    "simulator panicked on {:?} (width {}); classifying as Assert",
                    fault,
                    width
                );
                Outcome {
                    class: FaultClass::Assert,
                    end_cycle: fault.cycle,
                    ..Outcome::masked_at(fault.cycle)
                }
            }
        }
    }

    fn inject_outcome_inner(&self, fault: FaultSpec, width: u8) -> Outcome {
        let mut sim = Sim::new(self.cfg, self.program);
        if let Some(early) = sim.run_to_cycle(fault.cycle) {
            // The golden run ended before the injection cycle (can only
            // happen with out-of-range cycles): the fault lands after the
            // program finished and is architecturally masked.
            return match early {
                SimOutcome::Halted { cycles, .. } => Outcome::masked_at(cycles),
                other => {
                    event!(
                        Level::Warn,
                        "inject.fresh",
                        { bit: fault.bit, cycle: fault.cycle },
                        "fault-free prefix of {:?} ended abnormally ({:?}); \
                         classifying as Assert",
                        fault,
                        other
                    );
                    Outcome {
                        class: FaultClass::Assert,
                        ..Outcome::masked_at(sim.cycle())
                    }
                }
            };
        }
        if !apply_burst(&mut sim, fault, width) {
            return Outcome::masked_at(fault.cycle);
        }
        let end = sim.run(2 * self.golden.cycles);
        Outcome {
            class: self.classify_end(&end),
            ..Outcome::masked_at(end_cycles(&end))
        }
    }

    /// Maps a terminal faulted-run outcome to the paper's classes.
    fn classify_end(&self, end: &SimOutcome) -> FaultClass {
        match end {
            SimOutcome::Halted { output, .. } => {
                if *output == self.golden.output {
                    FaultClass::Masked
                } else {
                    FaultClass::Sdc
                }
            }
            SimOutcome::Crash { .. } => FaultClass::Crash,
            SimOutcome::Assert { .. } => FaultClass::Assert,
            SimOutcome::CycleLimit { .. } => FaultClass::Timeout,
        }
    }

    /// Starts configuring a campaign on one structure — the single entry
    /// point every campaign flavour goes through.
    ///
    /// The returned [`CampaignRun`] builder selects the optional extras the
    /// old `campaign_*` method family hard-coded into separate entry
    /// points: a live [`CampaignObserver`], forensic [`FaultRecord`]
    /// capture, a multi-bit burst width, and an explicit pre-sampled fault
    /// list. Call [`CampaignRun::execute`] to run it.
    ///
    /// ```ignore
    /// let out = injector
    ///     .run(Structure::RegFile, &cfg)
    ///     .observer(&progress)
    ///     .records(true)
    ///     .execute();
    /// ```
    pub fn run<'r>(&'r self, structure: Structure, cfg: &CampaignConfig) -> CampaignRun<'r, 'a> {
        CampaignRun {
            injector: self,
            structure,
            cfg: *cfg,
            faults: None,
            observer: None,
            record: false,
            burst_width: 1,
            propagation: None,
        }
    }

    /// Samples `n` distinct faults for a structure uniformly over
    /// (bit × cycle), reproducibly from `seed`.
    ///
    /// Draws are deduplicated (collisions are redrawn, preserving draw
    /// order): the error-margin statistics apply a finite-population
    /// correction that assumes sampling *without* replacement, so injecting
    /// the same (bit, cycle) twice would overstate the campaign's
    /// confidence. When `n` exceeds the structure's (bit × cycle)
    /// population the sample is the full census. Because rejected draws
    /// depend only on earlier draws, a smaller sample is always a prefix of
    /// a larger one from the same seed.
    ///
    /// A structure with no injectable bits on this machine (e.g. a queue
    /// configured with zero entries) yields an empty sample instead of
    /// panicking on the empty bit range.
    pub fn sample_faults(&self, structure: Structure, n: u64, seed: u64) -> Vec<FaultSpec> {
        let bits = self.bit_count(structure);
        if bits == 0 {
            return Vec::new();
        }
        let cycles = self.golden.cycles.max(1);
        let population = bits.saturating_mul(cycles);
        let n = n.min(population);
        // Mix the structure into the seed so different structures draw
        // independent samples from the same campaign seed.
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (structure as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut seen: HashSet<(u64, u64)> = HashSet::with_capacity(n as usize);
        let mut faults = Vec::with_capacity(n as usize);
        while (faults.len() as u64) < n {
            let bit = rng.gen_range(0..bits);
            let cycle = rng.gen_range(0..cycles);
            if seen.insert((bit, cycle)) {
                faults.push(FaultSpec {
                    structure,
                    bit,
                    cycle,
                });
            }
        }
        faults
    }

    /// Rejection-samples `n` distinct faults from the live-and-demanded
    /// subpopulation: the exact RNG stream of [`Injector::sample_faults`],
    /// but only draws the golden run's liveness model cannot prove masked
    /// are kept. On a structure whose every site is live the accepted
    /// sample is bit-identical to the uniform one. Deduplicated,
    /// prefix-stable, and capped at the subpopulation size like the
    /// uniform sampler.
    pub fn sample_importance(&self, structure: Structure, n: u64, seed: u64) -> Vec<FaultSpec> {
        let bits = self.bit_count(structure);
        if bits == 0 {
            return Vec::new();
        }
        let cycles = self.golden.cycles.max(1);
        let map = self.liveness();
        let live = crate::sampler::ImportanceSampler.population(self, structure);
        let n = n.min(live);
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (structure as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut seen: HashSet<(u64, u64)> = HashSet::with_capacity(n as usize);
        let mut faults = Vec::with_capacity(n as usize);
        while (faults.len() as u64) < n {
            let bit = rng.gen_range(0..bits);
            let cycle = rng.gen_range(0..cycles);
            if map.is_vulnerable(structure, bit, cycle) && seen.insert((bit, cycle)) {
                faults.push(FaultSpec {
                    structure,
                    bit,
                    cycle,
                });
            }
        }
        faults
    }

    /// Samples faults per the config's [`SamplingPlan`]: a fixed count, or
    /// just enough to reach a target margin.
    fn sample_plan(&self, structure: Structure, cfg: &CampaignConfig) -> Vec<FaultSpec> {
        let sampler = cfg.plan.sampler.sampler();
        match cfg.plan.stop {
            StopRule::FixedN(n) => sampler.sample(self, structure, n, cfg.seed),
            StopRule::TargetMargin { target, batch } => {
                self.sample_adaptive(structure, target, batch.max(1), sampler, cfg.seed)
            }
        }
    }

    /// Samples just enough faults to push the worst-case AVF error margin
    /// at 99% confidence down to `target`, growing in batches of `batch`.
    /// The resulting sample size depends only on the sampler's population
    /// and weight and the target, and both samplers are prefix-stable, so
    /// the adaptive sample equals a fixed-size sample of the same count.
    /// Under an importance sampler the margin is the reweighted one over
    /// the live subpopulation, which is what makes sparse structures stop
    /// ~`weight²`× earlier.
    fn sample_adaptive(
        &self,
        structure: Structure,
        target: f64,
        batch: u64,
        sampler: &dyn Sampler,
        seed: u64,
    ) -> Vec<FaultSpec> {
        let bits = self.bit_count(structure);
        if bits == 0 {
            return Vec::new();
        }
        let population = sampler.population(self, structure);
        let weight = sampler.weight(self, structure);
        // Jump straight to the analytic sample size, rounded up to whole
        // batches, then let the margin check absorb any rounding slack.
        let need =
            crate::stats::weighted_required_sample(target, population, weight, crate::stats::Z_99);
        let mut n = need.div_ceil(batch).saturating_mul(batch).min(population);
        while crate::stats::weighted_error_margin(n, population, weight, crate::stats::Z_99)
            > target
            && n < population
        {
            n = n.saturating_add(batch).min(population);
        }
        event!(
            Level::Info,
            "inject.adaptive",
            { structure: format!("{structure:?}"), n: n, population: population, target: target },
            "adaptive sampling: {} faults reach a {:.4} margin over a population of {}",
            n,
            target,
            population
        );
        sampler.sample(self, structure, n, seed)
    }

    /// The engine shared by the class-only and recorded paths: classifies
    /// every fault, notifying `observer` per verdict, and (in `record`
    /// mode, which forces the convoy engine) capturing forensic context.
    fn classify_outcomes(
        &self,
        faults: &[FaultSpec],
        width: u8,
        cfg: &CampaignConfig,
        record: bool,
        observer: Option<&dyn CampaignObserver>,
        propagation: Option<(u64, u64)>,
    ) -> Vec<Outcome> {
        let convoy = record || cfg.checkpoint;
        let mut sp = span("campaign.classify");
        sp.record("faults", faults.len());
        sp.record("engine", if convoy { "convoy" } else { "fresh" });
        sp.record("threads", cfg.threads);
        let mut order: Vec<usize> = (0..faults.len()).collect();
        if convoy {
            // Stable, so same-cycle faults keep their sample order.
            order.sort_by_key(|&i| faults[i].cycle);
        }
        let next = AtomicUsize::new(0);
        let engine = Engine {
            inj: self,
            faults,
            order: &order,
            next: &next,
            width,
            record,
            observer,
            propagation,
        };
        let run_worker = || {
            if convoy {
                engine.convoy_worker()
            } else {
                engine.fresh_worker()
            }
        };
        let parts: Vec<Vec<(usize, Outcome)>> = if cfg.threads <= 1 {
            vec![run_worker()]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..cfg.threads).map(|_| scope.spawn(run_worker)).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("injection worker panicked"))
                    .collect()
            })
        };
        let mut outcomes = vec![Outcome::masked_at(0); faults.len()];
        for (slot, outcome) in parts.into_iter().flatten() {
            outcomes[slot] = outcome;
        }
        outcomes
    }
}

/// A configured-but-not-yet-executed campaign, built by [`Injector::run`].
///
/// Defaults: single-bit upsets, faults sampled from the config's
/// `(injections, seed)`, no observer, no forensic records. Each builder
/// method opts into one extra; [`CampaignRun::execute`] runs the campaign
/// on the engine selected by the config (`checkpoint`, `threads`).
/// Classification is bit-identical across every combination of extras —
/// observers and records never perturb the engine's verdicts.
#[must_use = "a CampaignRun does nothing until `.execute()` is called"]
pub struct CampaignRun<'r, 'a> {
    injector: &'r Injector<'a>,
    structure: Structure,
    cfg: CampaignConfig,
    faults: Option<&'r [FaultSpec]>,
    observer: Option<&'r dyn CampaignObserver>,
    record: bool,
    burst_width: u8,
    /// `(every, one_in)` propagation sampling, see [`CampaignRun::propagation`].
    propagation: Option<(u64, u64)>,
}

impl<'r, 'a> CampaignRun<'r, 'a> {
    /// Streams every per-fault classification to `observer` as it is made
    /// (e.g. a [`crate::ProgressLine`]).
    pub fn observer(mut self, observer: &'r dyn CampaignObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Captures one forensic [`FaultRecord`] per fault (verdict cycle,
    /// first-divergence site). Recording always runs the checkpointed
    /// convoy engine — the golden simulator it forks children from doubles
    /// as the divergence reference — and classes stay identical to the
    /// engine the config selects.
    pub fn records(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// Flips `width` adjacent bits per injection instead of one (the MBU
    /// extension; width 1 is the paper's single-event upset).
    pub fn burst_width(mut self, width: u8) -> Self {
        self.burst_width = width;
        self
    }

    /// Classifies exactly `faults` (in input order) instead of sampling
    /// from the config's `(injections, seed)`. The aggregate result is
    /// attributed to the run's structure even if the list mixes targets.
    pub fn faults(mut self, faults: &'r [FaultSpec]) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Opt-in propagation tracing: a deterministic 1-in-`one_in` subset of
    /// the faults that actually fork a convoy child additionally snapshots
    /// the diverging-component set every `every` cycles after injection,
    /// attached to the [`FaultRecord`] as a [`PropagationTrace`]. Implies
    /// nothing unless [`CampaignRun::records`] is also enabled (the
    /// timeline rides the record).
    ///
    /// Selection hashes the fault spec itself, so whether a given fault is
    /// traced does not depend on thread count or which other faults were
    /// sampled. Sampling is read-only on both simulators and never changes
    /// classes or the other record fields; the timeline's *length* is
    /// best-effort (it ends early if the child graduates off the convoy).
    pub fn propagation(mut self, every: u64, one_in: u64) -> Self {
        self.propagation = Some((every.max(1), one_in.max(1)));
        self
    }

    /// Executes the campaign. Under
    /// [`SamplerKind::ImportanceVerify`] the importance campaign is
    /// followed by a uniform reference campaign at the same achieved
    /// margin, and the run panics unless the two AVF estimates agree
    /// within their combined margins (the sampling analogue of
    /// `prune = verify`).
    pub fn execute(self) -> CampaignOutput {
        let output = self.run_campaign();
        if self.cfg.plan.sampler == SamplerKind::ImportanceVerify && self.faults.is_none() {
            self.verify_against_uniform(&output);
        }
        output
    }

    /// One campaign under the configured plan: sample, prune, classify,
    /// tally.
    fn run_campaign(&self) -> CampaignOutput {
        let mut root = span("campaign.run");
        root.record("structure", self.structure.name());
        // Preset fault lists are the caller's own census — no sampling
        // distribution applies, so they always carry unit weight.
        let importance = self.faults.is_none() && self.cfg.plan.sampler.is_importance();
        let sampled;
        let faults: &[FaultSpec] = match self.faults {
            Some(faults) => faults,
            None => {
                let mut sp = span("campaign.sample");
                sampled = self.injector.sample_plan(self.structure, &self.cfg);
                sp.record("faults", sampled.len());
                &sampled
            }
        };
        root.record("injections", faults.len());
        let (weight, live_population) = if importance {
            let sampler = crate::sampler::ImportanceSampler;
            (
                sampler.weight(self.injector, self.structure),
                Some(sampler.population(self.injector, self.structure)),
            )
        } else {
            (1.0, None)
        };
        let prune = self.cfg.plan.prune;
        let outcomes = if prune.any_verify() {
            self.execute_verified(faults)
        } else if prune.any_on() {
            self.execute_pruned(faults)
        } else {
            self.injector.classify_outcomes(
                faults,
                self.burst_width,
                &self.cfg,
                self.record,
                self.observer,
                self.propagation,
            )
        };
        let mut counts = ClassCounts::default();
        let mut simulated = 0u64;
        for outcome in &outcomes {
            counts.record(outcome.class);
            if !outcome.pruned && !outcome.pruned_static {
                simulated += 1;
            }
        }
        let classes: Vec<FaultClass> = outcomes.iter().map(|o| o.class).collect();
        let records = self.record.then(|| {
            outcomes
                .into_iter()
                .zip(faults)
                .map(|(outcome, &spec)| FaultRecord {
                    spec,
                    class: outcome.class,
                    end_cycle: outcome.end_cycle,
                    golden_cycles: self.injector.golden.cycles,
                    first_divergence: outcome.divergence,
                    pruned: outcome.pruned,
                    pruned_static: outcome.pruned_static,
                    weight,
                    propagation: outcome.propagation,
                })
                .collect()
        });
        CampaignOutput {
            result: CampaignResult {
                structure: self.structure,
                bit_population: self.injector.bit_count(self.structure),
                golden_cycles: self.injector.golden.cycles,
                counts,
                weight,
                live_population,
            },
            classes,
            records,
            simulated,
        }
    }

    /// The `sampler = importance/verify` equivalence net: re-runs the
    /// campaign with uniform sampling to the margin the importance
    /// campaign achieved and panics unless the two AVF estimates agree
    /// within their combined 99% margins. An importance campaign whose
    /// subpopulation is empty proved AVF = 0 exactly and needs no
    /// reference run (a uniform campaign to margin 0 would be a census).
    fn verify_against_uniform(&self, output: &CampaignOutput) {
        let result = &output.result;
        let margin = result.margin_99();
        let mut sp = span("campaign.sampling_verify");
        sp.record("structure", self.structure.name());
        if result.live_population == Some(0) || !margin.is_finite() || margin <= 0.0 {
            event!(
                Level::Info,
                "inject.sampling",
                { structure: format!("{:?}", self.structure) },
                "sampling verification skipped: importance estimate is exact \
                 (empty live subpopulation)"
            );
            return;
        }
        let uniform_cfg = CampaignConfig {
            plan: SamplingPlan {
                sampler: SamplerKind::Uniform,
                stop: StopRule::TargetMargin {
                    target: margin,
                    batch: crate::sampler::stop_batch(&self.cfg.plan),
                },
                prune: self.cfg.plan.prune,
            },
            ..self.cfg
        };
        let uniform = self
            .injector
            .run(self.structure, &uniform_cfg)
            .burst_width(self.burst_width)
            .execute();
        let (avf_i, avf_u) = (result.avf(), uniform.result.avf());
        let combined = margin + uniform.result.margin_99();
        sp.record("delta", format!("{:.6}", (avf_i - avf_u).abs()));
        if (avf_i - avf_u).abs() > combined {
            event!(
                Level::Error,
                "inject.sampling",
                {
                    structure: format!("{:?}", self.structure),
                    importance_avf: avf_i,
                    uniform_avf: avf_u,
                    combined_margin: combined
                },
                "sampling verification failed: importance AVF {:.4} vs uniform \
                 AVF {:.4} differ beyond the combined margin {:.4}",
                avf_i,
                avf_u,
                combined
            );
            panic!(
                "sampling verification failed on {:?}: importance AVF {avf_i:.4} \
                 (±{margin:.4}) vs uniform AVF {avf_u:.4} differ beyond the \
                 combined 99% margin {combined:.4}",
                self.structure
            );
        }
        event!(
            Level::Info,
            "inject.sampling",
            {
                structure: format!("{:?}", self.structure),
                importance_avf: avf_i,
                uniform_avf: avf_u,
                combined_margin: combined
            },
            "importance AVF {:.4} agrees with uniform AVF {:.4} within the \
             combined margin {:.4}",
            avf_i,
            avf_u,
            combined
        );
    }

    /// `prune = on` and/or `prune_static = on`: classifies prunable faults
    /// as Masked without simulating them and runs only the survivors
    /// through the engine, scattering both back into sample order. A fault
    /// both stages could prune is attributed to the dynamic liveness
    /// pruner (the cheaper proof).
    fn execute_pruned(&self, faults: &[FaultSpec]) -> Vec<Outcome> {
        let mut sp = span("campaign.prune");
        let dyn_on = self.cfg.plan.prune.liveness == PruneMode::On;
        let static_on = self.cfg.plan.prune.demand == PruneMode::On;
        // (liveness-pruned, static-pruned) per fault, mutually exclusive.
        let flags: Vec<(bool, bool)> = faults
            .iter()
            .map(|&f| {
                let d = dyn_on && self.injector.prunable(f, self.burst_width);
                let s = !d && static_on && self.injector.prunable_static(f, self.burst_width);
                (d, s)
            })
            .collect();
        let survivors: Vec<FaultSpec> = faults
            .iter()
            .zip(&flags)
            .filter(|&(_, &(d, s))| !d && !s)
            .map(|(&f, _)| f)
            .collect();
        let dyn_n = flags.iter().filter(|&&(d, _)| d).count();
        let static_n = flags.iter().filter(|&&(_, s)| s).count();
        sp.record("pruned", dyn_n);
        sp.record("pruned_static", static_n);
        sp.record("survivors", survivors.len());
        drop(sp);
        if let Some(&first) = faults.first() {
            event!(
                Level::Info,
                "inject.prune",
                {
                    structure: format!("{:?}", first.structure),
                    pruned: dyn_n,
                    pruned_static: static_n,
                    total: faults.len(),
                    width: self.burst_width
                },
                "pruned {}/{} sampled faults as provably masked ({} by liveness, {} statically)",
                dyn_n + static_n,
                faults.len(),
                dyn_n,
                static_n
            );
        }
        let survivor_outcomes = self.injector.classify_outcomes(
            &survivors,
            self.burst_width,
            &self.cfg,
            self.record,
            self.observer,
            self.propagation,
        );
        let mut survivor_it = survivor_outcomes.into_iter();
        faults
            .iter()
            .zip(&flags)
            .map(|(fault, &(d, s))| {
                if d || s {
                    if let Some(observer) = self.observer {
                        observer.fault_classified(FaultClass::Masked);
                    }
                    if d {
                        Outcome::pruned_at(fault.cycle)
                    } else {
                        Outcome::pruned_static_at(fault.cycle)
                    }
                } else {
                    survivor_it.next().expect("one engine outcome per survivor")
                }
            })
            .collect()
    }

    /// `prune = verify` and/or `prune_static = verify`: simulates every
    /// fault exactly like `off`, then asserts that each prunable one really
    /// classified as Masked — per stage whose knob asked for verification.
    /// A mismatch means an unsound prune window (or demand mask) — a
    /// correctness bug — so it panics rather than returning tainted
    /// tallies.
    fn execute_verified(&self, faults: &[FaultSpec]) -> Vec<Outcome> {
        let outcomes = self.injector.classify_outcomes(
            faults,
            self.burst_width,
            &self.cfg,
            self.record,
            self.observer,
            self.propagation,
        );
        if self.cfg.plan.prune.liveness == PruneMode::Verify {
            self.verify_stage(faults, &outcomes, "liveness", |f| {
                self.injector.prunable(f, self.burst_width)
            });
        }
        if self.cfg.plan.prune.demand == PruneMode::Verify {
            self.verify_stage(faults, &outcomes, "static", |f| {
                self.injector.prunable_static(f, self.burst_width)
            });
        }
        outcomes
    }

    /// Asserts every `prunable` fault simulated as Masked; panics on the
    /// first counterexample.
    fn verify_stage(
        &self,
        faults: &[FaultSpec],
        outcomes: &[Outcome],
        stage: &str,
        prunable: impl Fn(FaultSpec) -> bool,
    ) {
        let mut sp = span("campaign.verify");
        sp.record("stage", stage.to_string());
        let mut checked = 0usize;
        for (fault, outcome) in faults.iter().zip(outcomes) {
            if !prunable(*fault) {
                continue;
            }
            checked += 1;
            if outcome.class != FaultClass::Masked {
                event!(
                    Level::Error,
                    "inject.prune",
                    {
                        stage: stage.to_string(),
                        structure: format!("{:?}", fault.structure),
                        bit: fault.bit,
                        cycle: fault.cycle,
                        class: outcome.class.name()
                    },
                    "{} prune verification failed: {:?} is provably masked \
                     but simulated as {}",
                    stage,
                    fault,
                    outcome.class
                );
                panic!(
                    "{stage} prune verification failed: {fault:?} (width {}) is \
                     provably masked but simulated as {}",
                    self.burst_width, outcome.class
                );
            }
        }
        event!(
            Level::Info,
            "inject.prune",
            { stage: stage.to_string(), verified: checked, total: faults.len() },
            "verified {}/{} {}-prunable faults simulate as Masked",
            checked,
            faults.len(),
            stage
        );
    }
}

/// Everything one executed campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignOutput {
    /// Aggregate per-class tallies and structure metadata.
    pub result: CampaignResult,
    /// One class per fault, in sample (or [`CampaignRun::faults`] input)
    /// order.
    pub classes: Vec<FaultClass>,
    /// One forensic record per fault in the same order, when
    /// [`CampaignRun::records`] was enabled.
    pub records: Option<Vec<FaultRecord>>,
    /// Faults that actually reached a simulation engine (everything a
    /// pruner did not classify on the spot) — the forked-child-simulation
    /// cost the sampling-efficiency tables compare.
    pub simulated: u64,
}

/// Classification outcome plus forensic context for one fault.
#[derive(Debug, Clone)]
struct Outcome {
    class: FaultClass,
    /// Cycle the verdict was decided at.
    end_cycle: u64,
    /// First-divergence site (recorded-mode convoy forks only).
    divergence: Option<DivergenceSite>,
    /// Verdict produced by the liveness pruner, without simulation.
    pruned: bool,
    /// Verdict produced by the static bit-demand pruner, without
    /// simulation (never set together with `pruned`).
    pruned_static: bool,
    /// Propagation timeline (opt-in recorded-convoy mode only).
    propagation: Option<PropagationTrace>,
}

impl Outcome {
    /// A Masked verdict decided at `cycle` without any state divergence.
    fn masked_at(cycle: u64) -> Outcome {
        Outcome {
            class: FaultClass::Masked,
            end_cycle: cycle,
            divergence: None,
            pruned: false,
            pruned_static: false,
            propagation: None,
        }
    }

    /// A Masked verdict the liveness pruner issued without simulating.
    fn pruned_at(cycle: u64) -> Outcome {
        Outcome {
            pruned: true,
            ..Outcome::masked_at(cycle)
        }
    }

    /// A Masked verdict the static bit-demand pruner issued without
    /// simulating.
    fn pruned_static_at(cycle: u64) -> Outcome {
        Outcome {
            pruned_static: true,
            ..Outcome::masked_at(cycle)
        }
    }
}

/// Terminal cycle of a simulation outcome.
fn end_cycles(end: &SimOutcome) -> u64 {
    match end {
        SimOutcome::Halted { cycles, .. }
        | SimOutcome::Crash { cycles, .. }
        | SimOutcome::Assert { cycles, .. }
        | SimOutcome::CycleLimit { cycles } => *cycles,
    }
}

/// One `classify_outcomes` invocation's shared context; worker threads run
/// its `convoy_worker`/`fresh_worker` against the common claim index.
struct Engine<'e, 'a> {
    inj: &'e Injector<'a>,
    faults: &'e [FaultSpec],
    /// Fault indices in claim order (cycle-sorted for the convoy engine).
    order: &'e [usize],
    /// Work-stealing claim index shared by every worker.
    next: &'e AtomicUsize,
    width: u8,
    /// Capture end cycles and first-divergence sites (forensics mode).
    record: bool,
    observer: Option<&'e dyn CampaignObserver>,
    /// `(every, one_in)` propagation sampling for a deterministic subset
    /// of recorded convoy children.
    propagation: Option<(u64, u64)>,
}

/// Per-worker counters rolled into the worker's `campaign.worker` span so
/// the profiler can attribute convoy behavior (forks, convergence,
/// graduation) without per-fork spans on the hot path. Plain integer
/// increments — negligible next to a single simulated cycle — so they are
/// maintained unconditionally.
#[derive(Debug, Default)]
struct WorkerStats {
    /// Faults this worker claimed.
    claimed: u64,
    /// Fresh (from-cycle-0) simulations.
    fresh: u64,
    /// Convoy children forked.
    forks: u64,
    /// Faults classified Masked without riding the convoy (flip landed in
    /// dead state or past the program end).
    masked_nofork: u64,
    /// Children classified by proven re-convergence to the golden state.
    converged: u64,
    /// Children that reached their own end (halt/crash/assert/timeout)
    /// while on the convoy.
    ended: u64,
    /// Children graduated off the convoy and run to their own end.
    graduated: u64,
    /// Children whose forked simulator panicked (Assert).
    asserts: u64,
    /// Post-injection cycles simulated by children that converged.
    converged_cycles: u64,
    /// Post-injection cycles simulated by children that ran to an end.
    ran_cycles: u64,
}

impl WorkerStats {
    fn record_into(&self, sp: &mut Span) {
        sp.record("claimed", self.claimed);
        sp.record("fresh", self.fresh);
        sp.record("forks", self.forks);
        sp.record("masked_nofork", self.masked_nofork);
        sp.record("converged", self.converged);
        sp.record("ended", self.ended);
        sp.record("graduated", self.graduated);
        sp.record("asserts", self.asserts);
        sp.record("converged_cycles", self.converged_cycles);
        sp.record("ran_cycles", self.ran_cycles);
    }
}

impl Engine<'_, '_> {
    /// Files a verdict: notifies the observer and appends to `results`.
    fn push(&self, results: &mut Vec<(usize, Outcome)>, slot: usize, outcome: Outcome) {
        if let Some(observer) = self.observer {
            observer.fault_classified(outcome.class);
        }
        results.push((slot, outcome));
    }

    /// Fresh-path worker: every claimed fault re-simulates from cycle 0.
    fn fresh_worker(&self) -> Vec<(usize, Outcome)> {
        let mut sp = span("campaign.worker");
        let mut stats = WorkerStats::default();
        let mut results = Vec::new();
        loop {
            let k = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(&slot) = self.order.get(k) else {
                break;
            };
            stats.claimed += 1;
            stats.fresh += 1;
            let outcome = self.inj.inject_outcome(self.faults[slot], self.width);
            self.push(&mut results, slot, outcome);
        }
        stats.record_into(&mut sp);
        results
    }

    /// Checkpointing worker: advances one golden simulator across its
    /// (cycle-sorted) claimed faults and forks a child per fault, so the
    /// fault-free prefix is simulated once instead of once per injection.
    ///
    /// Forked children travel in a *convoy*: they advance in lockstep with
    /// the golden simulator and are periodically compared against it with
    /// [`Sim::state_eq`]. A child whose state re-converges to the golden
    /// state is classified on the spot — by determinism its remaining run is
    /// the golden run, so it halts with the golden suffix appended to its
    /// own output; the fault is Masked exactly when the output prefixes
    /// match, and an SDC otherwise. Checks back off exponentially so
    /// children that stay diverged spend their time simulating, not
    /// comparing.
    ///
    /// In `record` mode each fork is additionally diffed against the golden
    /// simulator at the injection cycle ([`Sim::state_divergence`]) to name
    /// the first corrupted component; a fork whose state is *equal* to the
    /// golden state (the flip landed in execution-dead bits, e.g. a free
    /// physical register) is provably Masked — identical future, outputs
    /// already equal — and is classified immediately instead of riding the
    /// convoy.
    fn convoy_worker(&self) -> Vec<(usize, Outcome)> {
        let mut sp = span("campaign.worker");
        let mut stats = WorkerStats::default();
        let inj = self.inj;
        let mut results = Vec::new();
        let mut golden = Sim::new(inj.cfg, inj.program);
        let mut golden_done = false;
        let mut convoy: Vec<Child> = Vec::new();
        loop {
            let k = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(&slot) = self.order.get(k) else {
                break;
            };
            stats.claimed += 1;
            let fault = self.faults[slot];
            if fault.cycle > inj.golden.cycles {
                // The program halts before the fault lands: masked, exactly
                // as the fresh path's early-halt case.
                stats.masked_nofork += 1;
                self.push(&mut results, slot, Outcome::masked_at(fault.cycle));
                continue;
            }
            if !golden_done {
                golden_done = self.advance_convoy(
                    &mut golden,
                    fault.cycle,
                    &mut convoy,
                    &mut results,
                    &mut stats,
                );
            }
            if golden_done && golden.cycle() < fault.cycle {
                // Defensive: the golden simulator ended before the recorded
                // golden cycle count (a simulator bug, not a reachable state
                // today). Fall back to a from-scratch run for exactness.
                stats.fresh += 1;
                let outcome = inj.inject_outcome(fault, self.width);
                self.push(&mut results, slot, outcome);
                continue;
            }
            // COW fork: shares every cache/RF storage chunk with the golden
            // simulator; only chunks either side writes afterwards are
            // copied, so a child that re-converges quickly never pays for
            // the arrays it didn't touch.
            let mut sim = golden.fork();
            if !apply_burst(&mut sim, fault, self.width) {
                stats.masked_nofork += 1;
                self.push(&mut results, slot, Outcome::masked_at(fault.cycle));
                continue;
            }
            let divergence = if self.record {
                match sim.state_divergence(&golden) {
                    Some(component) => Some(DivergenceSite {
                        cycle: fault.cycle,
                        pc: sim.fetch_pc(),
                        component: component.to_string(),
                    }),
                    None => {
                        stats.masked_nofork += 1;
                        self.push(&mut results, slot, Outcome::masked_at(fault.cycle));
                        continue;
                    }
                }
            } else {
                None
            };
            stats.forks += 1;
            let prop = self.propagation_capture(fault).map(|mut capture| {
                // Seed the timeline with the state of the world at the
                // injection cycle itself.
                capture.samples.push(PropagationSample {
                    cycle: fault.cycle,
                    components: component_names(&sim.divergent_components(&golden)),
                });
                capture
            });
            convoy.push(Child {
                slot,
                sim,
                born: fault.cycle,
                next_check: fault.cycle + FIRST_CHECK_INTERVAL,
                interval: FIRST_CHECK_INTERVAL,
                divergence,
                prop,
            });
            if convoy.len() > MAX_CONVOY {
                // Bound memory: graduate the oldest child and run it to its
                // own end off-convoy.
                let oldest = convoy.remove(0);
                let (slot, outcome) = self.finish_child(oldest, &mut stats);
                self.push(&mut results, slot, outcome);
            }
        }
        // No faults left to fork: run the golden simulator out so remaining
        // children can still converge, then finish survivors independently.
        while !golden_done && !convoy.is_empty() {
            let target = convoy.iter().map(|c| c.next_stop()).min().unwrap();
            golden_done =
                self.advance_convoy(&mut golden, target, &mut convoy, &mut results, &mut stats);
        }
        for child in convoy {
            let (slot, outcome) = self.finish_child(child, &mut stats);
            self.push(&mut results, slot, outcome);
        }
        stats.record_into(&mut sp);
        results
    }

    /// The propagation capture for `fault`, when this engine opted in
    /// (recorded mode only) and the fault falls in the deterministic
    /// 1-in-`one_in` subset. Selection hashes the fault spec alone, so it
    /// is independent of convoy composition and thread count.
    fn propagation_capture(&self, fault: FaultSpec) -> Option<PropCapture> {
        let (every, one_in) = self.propagation?;
        if !self.record {
            return None;
        }
        let mut bytes = [0u8; 17];
        bytes[0] = fault.structure as u8;
        bytes[1..9].copy_from_slice(&fault.bit.to_le_bytes());
        bytes[9..17].copy_from_slice(&fault.cycle.to_le_bytes());
        crate::fnv1a(&bytes)
            .is_multiple_of(one_in)
            .then(|| PropCapture {
                every,
                next: fault.cycle + every,
                samples: Vec::new(),
            })
    }

    /// Advances the golden simulator to `target` cycles, co-advancing convoy
    /// children in lockstep and classifying any that end or converge on the
    /// way. Returns `true` once the golden run has ended.
    fn advance_convoy(
        &self,
        golden: &mut Sim,
        target: u64,
        convoy: &mut Vec<Child>,
        results: &mut Vec<(usize, Outcome)>,
        stats: &mut WorkerStats,
    ) -> bool {
        while golden.cycle() < target {
            // Stop at the earliest pending convergence check *or*
            // propagation sample across the convoy.
            let stop = convoy
                .iter()
                .map(|c| c.next_stop())
                .min()
                .unwrap_or(u64::MAX)
                .clamp(golden.cycle() + 1, target);
            let halted = golden.run_to_cycle(stop).is_some();
            self.lockstep_children(golden, convoy, results, halted, stats);
            if halted {
                return true;
            }
        }
        false
    }

    /// Advances every convoy child to the golden simulator's current cycle,
    /// classifying children that reach their own end, panic, or (when the
    /// golden run is still live) re-converge to the golden state.
    fn lockstep_children(
        &self,
        golden: &Sim,
        convoy: &mut Vec<Child>,
        results: &mut Vec<(usize, Outcome)>,
        golden_halted: bool,
        stats: &mut WorkerStats,
    ) {
        let cycle = golden.cycle();
        convoy.retain_mut(|child| {
            let end = match catch_unwind(AssertUnwindSafe(|| child.sim.run_to_cycle(cycle))) {
                Ok(end) => end,
                Err(_) => {
                    event!(
                        Level::Warn,
                        "inject.convoy",
                        { slot: child.slot },
                        "simulator panicked on forked injection (slot {}); \
                         classifying as Assert",
                        child.slot
                    );
                    stats.asserts += 1;
                    stats.ran_cycles += child.sim.cycle().saturating_sub(child.born);
                    // The child's own cycle counter, not the convoy's stop
                    // cycle: the stop schedule depends on which other faults
                    // share the convoy, and records must be a pure function
                    // of the fault itself (pruning changes convoy
                    // membership; record streams must not notice).
                    let outcome = Outcome {
                        class: FaultClass::Assert,
                        end_cycle: child.sim.cycle(),
                        divergence: child.divergence.take(),
                        propagation: child.take_propagation(None),
                        ..Outcome::masked_at(0)
                    };
                    self.push(results, child.slot, outcome);
                    return false;
                }
            };
            if let Some(end) = end {
                stats.ended += 1;
                stats.ran_cycles += end_cycles(&end).saturating_sub(child.born);
                let outcome = Outcome {
                    class: self.inj.classify_end(&end),
                    end_cycle: end_cycles(&end),
                    divergence: child.divergence.take(),
                    propagation: child.take_propagation(None),
                    ..Outcome::masked_at(0)
                };
                self.push(results, child.slot, outcome);
                return false;
            }
            // Propagation sample due at this stop: snapshot the full
            // diverging-component set. Read-only on both simulators.
            if let Some(prop) = &mut child.prop {
                if prop.next <= cycle {
                    prop.samples.push(PropagationSample {
                        cycle,
                        components: component_names(&child.sim.divergent_components(golden)),
                    });
                    // Stay on the injection-aligned grid even if a stop
                    // overshot (defensive; stops land exactly today).
                    prop.next += prop.every;
                    while prop.next <= cycle {
                        prop.next += prop.every;
                    }
                }
            }
            if !golden_halted && child.next_check <= cycle {
                if child.sim.state_eq(golden) {
                    // Converged: the child's future is the golden future, so
                    // it will halt with output = own-prefix ++ golden-suffix.
                    // Masked exactly when the prefixes agree.
                    let class = if child.sim.output() == golden.output() {
                        FaultClass::Masked
                    } else {
                        FaultClass::Sdc
                    };
                    stats.converged += 1;
                    stats.converged_cycles += cycle.saturating_sub(child.born);
                    // A converged child provably halts exactly when the
                    // golden run does, so record that terminal cycle rather
                    // than the (convoy-membership-dependent) cycle the check
                    // happened to run at — the same verdict a graduated
                    // child reaches by simulating to its own halt.
                    let outcome = Outcome {
                        class,
                        end_cycle: self.inj.golden.cycles,
                        divergence: child.divergence.take(),
                        propagation: child.take_propagation(Some(cycle)),
                        ..Outcome::masked_at(0)
                    };
                    self.push(results, child.slot, outcome);
                    return false;
                }
                child.interval = (child.interval * 2).min(MAX_CHECK_INTERVAL);
                child.next_check = cycle + child.interval;
            }
            true
        });
    }

    /// Runs a child that outlived the convoy to its own terminal outcome,
    /// under the same 2× golden-time budget as the fresh path.
    fn finish_child(&self, mut child: Child, stats: &mut WorkerStats) -> (usize, Outcome) {
        stats.graduated += 1;
        let budget = 2 * self.inj.golden.cycles;
        let propagation = child.take_propagation(None);
        let outcome = match catch_unwind(AssertUnwindSafe(|| child.sim.run(budget))) {
            Ok(end) => {
                stats.ran_cycles += end_cycles(&end).saturating_sub(child.born);
                Outcome {
                    class: self.inj.classify_end(&end),
                    end_cycle: end_cycles(&end),
                    divergence: child.divergence,
                    propagation,
                    ..Outcome::masked_at(0)
                }
            }
            Err(_) => {
                event!(
                    Level::Warn,
                    "inject.convoy",
                    { slot: child.slot },
                    "simulator panicked on forked injection (slot {}); \
                     classifying as Assert",
                    child.slot
                );
                stats.asserts += 1;
                stats.ran_cycles += child.sim.cycle().saturating_sub(child.born);
                Outcome {
                    class: FaultClass::Assert,
                    end_cycle: child.sim.cycle(),
                    divergence: child.divergence,
                    propagation,
                    ..Outcome::masked_at(0)
                }
            }
        };
        (child.slot, outcome)
    }
}

/// First convergence check happens this many cycles after the fork.
const FIRST_CHECK_INTERVAL: u64 = 16;

/// Cap on the exponential back-off between convergence checks.
const MAX_CHECK_INTERVAL: u64 = 4096;

/// Convoy size bound; the oldest child graduates beyond this.
const MAX_CONVOY: usize = 8;

/// One forked, faulted simulation riding a convoy.
struct Child {
    /// Index of the fault in the caller's fault list.
    slot: usize,
    /// The faulted simulator, kept in lockstep with the golden one.
    sim: Sim,
    /// Injection cycle (for attributing post-injection child cycles).
    born: u64,
    /// Golden cycle at which to next test convergence.
    next_check: u64,
    /// Current back-off interval between convergence checks.
    interval: u64,
    /// First-divergence site captured at the fork (recorded mode only),
    /// carried until the child is classified.
    divergence: Option<DivergenceSite>,
    /// In-flight propagation timeline (opt-in sampled subset only).
    prop: Option<PropCapture>,
}

impl Child {
    /// The next golden cycle at which the convoy must pause for this
    /// child: its convergence check or its propagation sample, whichever
    /// comes first.
    fn next_stop(&self) -> u64 {
        match &self.prop {
            Some(prop) => self.next_check.min(prop.next),
            None => self.next_check,
        }
    }

    /// Seals the child's propagation timeline (if it was tracing one) with
    /// the convergence verdict cycle, when the convoy proved one.
    fn take_propagation(&mut self, converged_at: Option<u64>) -> Option<PropagationTrace> {
        self.prop.take().map(|capture| PropagationTrace {
            every: capture.every,
            samples: capture.samples,
            converged_at,
        })
    }
}

/// A propagation timeline being captured for one convoy child.
struct PropCapture {
    /// Sampling period in cycles.
    every: u64,
    /// Next golden cycle to sample at (injection-aligned grid).
    next: u64,
    samples: Vec<PropagationSample>,
}

/// Owned names for a diverging-component set (records outlive the
/// simulators the `&'static str` probes came from only by convention;
/// serialized records need owned strings anyway).
fn component_names(components: &[&'static str]) -> Vec<String> {
    components.iter().map(|c| c.to_string()).collect()
}

/// Flips `width` adjacent bits of the fault's structure (wrapping at the
/// end). Returns `false` — flipping nothing — when the structure has no
/// injectable bits on this machine, instead of taking `% 0`.
fn apply_burst(sim: &mut Sim, fault: FaultSpec, width: u8) -> bool {
    let bits = sim.bit_count(fault.structure);
    if bits == 0 {
        return false;
    }
    for k in 0..u64::from(width.max(1)) {
        sim.flip_bit(fault.structure, (fault.bit + k) % bits);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::UniformSampler;
    use softerr_cc::{Compiler, OptLevel};

    fn setup() -> (MachineConfig, Program) {
        let cfg = MachineConfig::cortex_a15();
        let program = Compiler::new(cfg.profile, OptLevel::O1)
            .compile(
                "int tab[16];
                 void main() {
                     for (int i = 0; i < 16; i = i + 1) tab[i] = i * 3;
                     int s = 0;
                     for (int i = 0; i < 16; i = i + 1) s = s + tab[i];
                     out(s);
                 }",
            )
            .unwrap()
            .program;
        (cfg, program)
    }

    #[test]
    fn golden_run_is_recorded() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        assert_eq!(inj.golden().output, vec![360]);
        assert!(inj.golden().cycles > 0);
    }

    #[test]
    fn fault_sampling_is_reproducible_and_in_range() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let a = inj.sample_faults(Structure::RegFile, 50, 42);
        let b = inj.sample_faults(Structure::RegFile, 50, 42);
        assert_eq!(a, b);
        let bits = inj.bit_count(Structure::RegFile);
        for f in &a {
            assert!(f.bit < bits);
            assert!(f.cycle < inj.golden().cycles);
        }
        let c = inj.sample_faults(Structure::RegFile, 50, 43);
        assert_ne!(a, c, "different seeds draw different faults");
        let d = inj.sample_faults(Structure::IqSrc, 50, 42);
        assert!(
            a.iter().zip(&d).any(|(x, y)| x.cycle != y.cycle),
            "different structures draw independent samples"
        );
    }

    #[test]
    fn campaign_counts_sum_and_avf_bounds() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let r = inj
            .run(
                Structure::RegFile,
                &CampaignConfig {
                    plan: SamplingPlan::fixed(40),
                    seed: 1,
                    threads: 1,
                    checkpoint: true,
                },
            )
            .execute()
            .result;
        assert_eq!(r.total(), 40);
        assert!((0.0..=1.0).contains(&r.avf()));
        let frac_sum: f64 = FaultClass::ALL.iter().map(|c| r.fraction(*c)).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let cc = CampaignConfig {
            plan: SamplingPlan::fixed(30),
            seed: 99,
            threads: 1,
            checkpoint: true,
        };
        let a = inj.run(Structure::IqSrc, &cc).execute().result;
        let b = inj.run(Structure::IqSrc, &cc).execute().result;
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_campaign_matches_sequential() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let seq = inj
            .run(
                Structure::L1DData,
                &CampaignConfig {
                    plan: SamplingPlan::fixed(24),
                    seed: 5,
                    threads: 1,
                    checkpoint: true,
                },
            )
            .execute()
            .result;
        let par = inj
            .run(
                Structure::L1DData,
                &CampaignConfig {
                    plan: SamplingPlan::fixed(24),
                    seed: 5,
                    threads: 3,
                    checkpoint: true,
                },
            )
            .execute()
            .result;
        assert_eq!(seq.counts, par.counts);
    }

    #[test]
    fn lsq_campaign_outcomes_are_assert_or_masked() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        for s in [Structure::LoadQueue, Structure::StoreQueue] {
            let r = inj
                .run(
                    s,
                    &CampaignConfig {
                        plan: SamplingPlan::fixed(50),
                        seed: 3,
                        threads: 1,
                        checkpoint: true,
                    },
                )
                .execute()
                .result;
            assert_eq!(r.counts.sdc, 0, "{s}: paper reports no SDCs");
            assert_eq!(r.counts.crash, 0, "{s}: paper reports no crashes");
        }
    }

    #[test]
    fn injection_after_program_end_is_masked() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let class = inj.inject(FaultSpec {
            structure: Structure::RegFile,
            bit: 5,
            cycle: inj.golden().cycles * 10,
        });
        assert_eq!(class, FaultClass::Masked);
    }

    #[test]
    fn burst_width_one_equals_single_bit() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let f = FaultSpec {
            structure: Structure::RegFile,
            bit: 100,
            cycle: 20,
        };
        assert_eq!(inj.inject(f), inj.inject_burst(f, 1));
    }

    #[test]
    fn wider_bursts_are_at_least_as_vulnerable_on_average() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let cc = CampaignConfig {
            plan: SamplingPlan::fixed(60),
            seed: 77,
            threads: 1,
            checkpoint: true,
        };
        let single = inj
            .run(Structure::L1IData, &cc)
            .burst_width(1)
            .execute()
            .result;
        let quad = inj
            .run(Structure::L1IData, &cc)
            .burst_width(4)
            .execute()
            .result;
        // Same fault sites: a 4-bit burst strictly contains the 1-bit flip,
        // so it can only add ways to fail.
        assert!(
            quad.avf() >= single.avf(),
            "{} < {}",
            quad.avf(),
            single.avf()
        );
    }

    #[test]
    fn burst_wraps_at_structure_end_without_panicking() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let bits = inj.bit_count(Structure::LoadQueue);
        let f = FaultSpec {
            structure: Structure::LoadQueue,
            bit: bits - 1,
            cycle: 10,
        };
        let _ = inj.inject_burst(f, 4);
    }

    #[test]
    fn checkpointed_classes_match_fresh_per_fault() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let fresh_cfg = CampaignConfig {
            plan: SamplingPlan::fixed(25),
            seed: 21,
            threads: 1,
            checkpoint: false,
        };
        let ckpt_cfg = CampaignConfig {
            checkpoint: true,
            ..fresh_cfg
        };
        for s in [Structure::RegFile, Structure::L1DData, Structure::RobFlags] {
            let faults = inj.sample_faults(s, fresh_cfg.plan.injections(), fresh_cfg.seed);
            let fresh = inj.run(s, &fresh_cfg).faults(&faults).execute().classes;
            let ckpt = inj.run(s, &ckpt_cfg).faults(&faults).execute().classes;
            assert_eq!(
                fresh, ckpt,
                "{s}: fork-from-checkpoint must be bit-identical"
            );
        }
    }

    #[test]
    fn parallel_checkpointed_campaign_matches_sequential() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let seq = inj
            .run(
                Structure::IqDest,
                &CampaignConfig {
                    plan: SamplingPlan::fixed(24),
                    seed: 8,
                    threads: 1,
                    checkpoint: true,
                },
            )
            .execute()
            .result;
        let par = inj
            .run(
                Structure::IqDest,
                &CampaignConfig {
                    plan: SamplingPlan::fixed(24),
                    seed: 8,
                    threads: 3,
                    checkpoint: true,
                },
            )
            .execute()
            .result;
        assert_eq!(seq.counts, par.counts);
    }

    #[test]
    fn zero_bit_structure_samples_nothing_and_injects_masked() {
        // A machine with no load queue: the LoadQueue structure has zero
        // injectable bits. Sampling must not panic on the empty bit range,
        // and a direct injection must classify as Masked (nothing to flip).
        let mut cfg = MachineConfig::cortex_a15();
        cfg.lq_entries = 0;
        // Store-only workload (never reads memory), so no load ever needs a
        // queue slot.
        let program = Compiler::new(cfg.profile, OptLevel::O1)
            .compile(
                "int tab[8];
                 void main() {
                     int s = 0;
                     for (int i = 0; i < 8; i = i + 1) {
                         tab[i] = i * 2;
                         s = s + i;
                     }
                     out(s);
                 }",
            )
            .unwrap()
            .program;
        let inj = Injector::new(&cfg, &program).unwrap();
        assert_eq!(inj.bit_count(Structure::LoadQueue), 0);
        assert!(inj.sample_faults(Structure::LoadQueue, 20, 7).is_empty());
        for checkpoint in [false, true] {
            let r = inj
                .run(
                    Structure::LoadQueue,
                    &CampaignConfig {
                        plan: SamplingPlan::fixed(20),
                        seed: 7,
                        threads: 1,
                        checkpoint,
                    },
                )
                .execute()
                .result;
            assert_eq!(r.total(), 0, "no injectable bits means an empty campaign");
        }
        let f = FaultSpec {
            structure: Structure::LoadQueue,
            bit: 0,
            cycle: 1,
        };
        assert_eq!(inj.inject(f), FaultClass::Masked);
    }

    #[test]
    fn recorded_classes_match_classify_all_with_forensics() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let cc = CampaignConfig {
            plan: SamplingPlan::fixed(30),
            seed: 11,
            threads: 1,
            checkpoint: true,
        };
        for s in [Structure::RegFile, Structure::RobPc] {
            let faults = inj.sample_faults(s, cc.plan.injections(), cc.seed);
            let classes = inj.run(s, &cc).faults(&faults).execute().classes;
            let records = inj
                .run(s, &cc)
                .faults(&faults)
                .records(true)
                .execute()
                .records
                .expect("records were requested");
            assert_eq!(records.len(), faults.len());
            for ((record, class), fault) in records.iter().zip(&classes).zip(&faults) {
                assert_eq!(
                    record.class, *class,
                    "{s}: classes must be engine-identical"
                );
                assert_eq!(record.spec, *fault, "records keep sample order");
                assert_eq!(record.golden_cycles, inj.golden().cycles);
                assert!(record.end_cycle >= record.spec.cycle);
                if record.class != FaultClass::Masked {
                    let site = record
                        .first_divergence
                        .as_ref()
                        .expect("non-masked faults diverge at the fork");
                    assert_eq!(site.cycle, record.spec.cycle);
                    assert!(!site.component.is_empty());
                }
            }
        }
    }

    #[test]
    fn propagation_tracing_never_perturbs_classes_or_base_records() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let cc = CampaignConfig {
            plan: SamplingPlan::fixed(40),
            seed: 21,
            threads: 1,
            checkpoint: true,
        };
        for s in [Structure::RegFile, Structure::RobPc] {
            let faults = inj.sample_faults(s, cc.plan.injections(), cc.seed);
            let plain = inj
                .run(s, &cc)
                .faults(&faults)
                .records(true)
                .execute()
                .records
                .unwrap();
            let traced = inj
                .run(s, &cc)
                .faults(&faults)
                .records(true)
                .propagation(16, 1)
                .execute()
                .records
                .unwrap();
            assert_eq!(plain.len(), traced.len());
            for (p, t) in plain.iter().zip(&traced) {
                // Everything except the opt-in timeline is bit-identical.
                let mut t_base = t.clone();
                t_base.propagation = None;
                assert_eq!(p, &t_base, "{s}: propagation must ride along inertly");
            }
        }
    }

    #[test]
    fn propagation_timelines_sample_on_the_injection_grid() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let cc = CampaignConfig {
            plan: SamplingPlan::fixed(40),
            seed: 21,
            threads: 1,
            checkpoint: true,
        };
        let every = 16;
        let records = inj
            .run(Structure::RegFile, &cc)
            .records(true)
            .propagation(every, 1) // every fault that forks
            .execute()
            .records
            .unwrap();
        let traced: Vec<_> = records.iter().filter(|r| r.propagation.is_some()).collect();
        assert!(
            !traced.is_empty(),
            "one-in-one sampling must trace every forked child"
        );
        for record in traced {
            let prop = record.propagation.as_ref().unwrap();
            assert_eq!(prop.every, every);
            assert!(!prop.samples.is_empty(), "seed sample at injection");
            assert_eq!(prop.samples[0].cycle, record.spec.cycle);
            assert!(
                !prop.samples[0].components.is_empty(),
                "a forked child diverges at injection by construction"
            );
            for sample in &prop.samples[1..] {
                assert_eq!(
                    (sample.cycle - record.spec.cycle) % every,
                    0,
                    "samples stay on the injection-aligned grid"
                );
                for c in &sample.components {
                    assert!(
                        softerr_sim::Sim::DIVERGENCE_COMPONENTS.contains(&c.as_str()),
                        "unknown component {c}"
                    );
                }
            }
            let cycles: Vec<u64> = prop.samples.iter().map(|s| s.cycle).collect();
            let mut sorted = cycles.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(cycles, sorted, "samples are strictly increasing");
            if let Some(at) = prop.converged_at {
                assert_eq!(record.end_cycle, inj.golden().cycles);
                assert!(at >= record.spec.cycle);
            }
        }
        // Masked-without-forking faults never carry a timeline.
        for record in &records {
            if record.first_divergence.is_none() {
                assert!(record.propagation.is_none());
            }
        }
    }

    #[test]
    fn propagation_subset_selection_is_a_pure_function_of_the_fault() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let faults = inj.sample_faults(Structure::RegFile, 80, 7);
        let run = |threads: usize| {
            let cc = CampaignConfig {
                plan: SamplingPlan::fixed(80),
                seed: 7,
                threads,
                checkpoint: true,
            };
            inj.run(Structure::RegFile, &cc)
                .faults(&faults)
                .records(true)
                .propagation(32, 2)
                .execute()
                .records
                .unwrap()
                .iter()
                .map(|r| r.propagation.is_some())
                .collect::<Vec<bool>>()
        };
        let selected = run(1);
        assert_eq!(
            selected,
            run(3),
            "which faults are traced must not depend on thread count"
        );
        assert!(selected.iter().any(|&s| s), "1-in-2 selects someone here");
        assert!(selected.iter().any(|&s| !s), "and skips someone");
    }

    #[test]
    fn recording_ignores_checkpoint_flag_and_matches_fresh() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let cc = CampaignConfig {
            plan: SamplingPlan::fixed(20),
            seed: 33,
            threads: 1,
            checkpoint: false,
        };
        let faults = inj.sample_faults(Structure::RegFile, cc.plan.injections(), cc.seed);
        let fresh = inj
            .run(Structure::RegFile, &cc)
            .faults(&faults)
            .execute()
            .classes;
        // Recording always runs the convoy engine; classes must still match
        // the fresh per-fault path the config asked for.
        let records = inj
            .run(Structure::RegFile, &cc)
            .faults(&faults)
            .records(true)
            .execute()
            .records
            .expect("records were requested");
        let recorded: Vec<FaultClass> = records.iter().map(|r| r.class).collect();
        assert_eq!(fresh, recorded);
    }

    #[test]
    fn observer_sees_every_classification() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let cc = CampaignConfig {
            plan: SamplingPlan::fixed(30),
            seed: 2,
            threads: 2,
            checkpoint: true,
        };
        let progress = crate::ProgressLine::with_activity("test", cc.plan.injections(), false);
        let out = inj
            .run(Structure::RegFile, &cc)
            .records(true)
            .observer(&progress)
            .execute();
        let (result, records) = (out.result, out.records.expect("records were requested"));
        let (done, counts) = progress.snapshot();
        assert_eq!(done, result.total());
        assert_eq!(counts, result.counts, "observer tallies match the result");
        assert_eq!(records.len() as u64, result.total());
        let observed = inj
            .run(Structure::RegFile, &cc)
            .observer(&crate::ProgressLine::with_activity(
                "test",
                cc.plan.injections(),
                false,
            ))
            .execute()
            .result;
        assert_eq!(observed, result, "observed and forensic runs agree");
    }

    #[test]
    fn sampling_never_repeats_a_fault_site() {
        // Small population: a single-entry load queue (32 injectable bits
        // on A32) over a few hundred golden cycles. Sampling with
        // replacement would collide here with near-certainty, and the
        // finite-population-corrected error margin assumes it never does.
        let mut cfg = MachineConfig::cortex_a15();
        cfg.lq_entries = 1;
        let program = Compiler::new(cfg.profile, OptLevel::O1)
            .compile(
                "int tab[8];
                 void main() {
                     int s = 0;
                     for (int i = 0; i < 8; i = i + 1) { tab[i] = i; s = s + tab[i]; }
                     out(s);
                 }",
            )
            .unwrap()
            .program;
        let inj = Injector::new(&cfg, &program).unwrap();
        let population = inj.bit_count(Structure::LoadQueue) * inj.golden().cycles;
        assert!(population > 0);
        let sample = inj.sample_faults(Structure::LoadQueue, population + 100, 42);
        assert_eq!(
            sample.len() as u64,
            population,
            "over-asking yields the full census, not duplicates"
        );
        let mut seen = std::collections::HashSet::new();
        for f in &sample {
            assert!(
                seen.insert((f.bit, f.cycle)),
                "duplicate draw at bit {} cycle {}",
                f.bit,
                f.cycle
            );
        }
    }

    #[test]
    fn sampling_is_prefix_stable() {
        // The adaptive sampler depends on this: a grown sample must extend,
        // not reshuffle, the smaller one drawn from the same seed.
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let small = inj.sample_faults(Structure::RegFile, 30, 9);
        let big = inj.sample_faults(Structure::RegFile, 90, 9);
        assert_eq!(&big[..30], &small[..]);
    }

    #[test]
    fn pruned_campaign_matches_unpruned_and_flags_pruned_records() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let base = CampaignConfig {
            plan: SamplingPlan::fixed(60),
            seed: 13,
            ..CampaignConfig::default()
        };
        let on = CampaignConfig {
            plan: base.plan.prune(PruneMode::On),
            ..base
        };
        for s in [Structure::RegFile, Structure::L1DData, Structure::IqDest] {
            let off_out = inj.run(s, &base).records(true).execute();
            let on_out = inj.run(s, &on).records(true).execute();
            assert_eq!(off_out.result, on_out.result, "{s}: tallies must match");
            assert_eq!(off_out.classes, on_out.classes, "{s}: classes must match");
            let (off_recs, on_recs) = (off_out.records.unwrap(), on_out.records.unwrap());
            for (a, b) in off_recs.iter().zip(&on_recs) {
                if b.class != FaultClass::Masked {
                    assert_eq!(a, b, "{s}: non-masked records must be engine-invariant");
                    assert!(!b.pruned, "only Masked verdicts can come from the pruner");
                }
            }
            if s == Structure::RegFile {
                assert!(
                    on_recs.iter().any(|r| r.pruned),
                    "a RegFile campaign lands some faults in dead bit-cycles"
                );
            }
        }
    }

    #[test]
    fn verify_mode_agrees_with_unpruned_and_does_not_panic() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let base = CampaignConfig {
            plan: SamplingPlan::fixed(40),
            seed: 4,
            ..CampaignConfig::default()
        };
        let verify = CampaignConfig {
            plan: base.plan.prune(PruneMode::Verify),
            ..base
        };
        for s in [
            Structure::RegFile,
            Structure::LoadQueue,
            Structure::RobFlags,
            Structure::L1DTag,
        ] {
            let off = inj.run(s, &base).execute();
            let v = inj.run(s, &verify).execute();
            assert_eq!(
                off.result, v.result,
                "{s}: verify simulates exactly like off"
            );
            let records = inj.run(s, &verify).records(true).execute().records.unwrap();
            assert!(
                records.iter().all(|r| !r.pruned),
                "{s}: verify-mode records are all simulated"
            );
        }
    }

    #[test]
    fn static_pruned_campaign_matches_unpruned_and_flags_static_records() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let base = CampaignConfig {
            plan: SamplingPlan::fixed(60),
            seed: 13,
            ..CampaignConfig::default()
        };
        let static_only = CampaignConfig {
            plan: base.plan.prune_static(PruneMode::On),
            ..base
        };
        let both = CampaignConfig {
            plan: base.plan.prune(PruneMode::On).prune_static(PruneMode::On),
            ..base
        };
        for s in [Structure::RegFile, Structure::L1DData] {
            let off_out = inj.run(s, &base).records(true).execute();
            let st_out = inj.run(s, &static_only).records(true).execute();
            let both_out = inj.run(s, &both).records(true).execute();
            assert_eq!(off_out.result, st_out.result, "{s}: tallies must match");
            assert_eq!(off_out.result, both_out.result, "{s}: tallies must match");
            assert_eq!(off_out.classes, st_out.classes, "{s}: classes must match");
            assert_eq!(off_out.classes, both_out.classes, "{s}: classes must match");
            let st_recs = st_out.records.unwrap();
            let both_recs = both_out.records.unwrap();
            for r in st_recs.iter().chain(&both_recs) {
                assert!(
                    !(r.pruned && r.pruned_static),
                    "{s}: prune attribution must be exclusive"
                );
                if r.pruned || r.pruned_static {
                    assert_eq!(r.class, FaultClass::Masked);
                }
            }
            // Static pruning subsumes liveness pruning, so everything the
            // dynamic stage would prune is pruned here too (attributed to
            // the static stage in a static-only campaign).
            let dyn_recs = inj
                .run(
                    s,
                    &CampaignConfig {
                        plan: base.plan.prune(PruneMode::On),
                        ..base
                    },
                )
                .records(true)
                .execute()
                .records
                .unwrap();
            let dyn_n = dyn_recs.iter().filter(|r| r.pruned).count();
            let st_n = st_recs.iter().filter(|r| r.pruned_static).count();
            assert!(st_n >= dyn_n, "{s}: static pruning must refine liveness");
            if s == Structure::RegFile {
                assert!(st_n > 0, "a RegFile campaign lands some prunable faults");
            }
        }
    }

    #[test]
    fn static_verify_mode_agrees_with_unpruned_and_does_not_panic() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let base = CampaignConfig {
            plan: SamplingPlan::fixed(40),
            seed: 4,
            ..CampaignConfig::default()
        };
        let verify = CampaignConfig {
            plan: base.plan.prune_static(PruneMode::Verify),
            ..base
        };
        for s in [Structure::RegFile, Structure::RobFlags, Structure::L1DTag] {
            let off = inj.run(s, &base).execute();
            let v = inj.run(s, &verify).execute();
            assert_eq!(
                off.result, v.result,
                "{s}: static verify simulates exactly like off"
            );
            let records = inj.run(s, &verify).records(true).execute().records.unwrap();
            assert!(
                records.iter().all(|r| !r.pruned && !r.pruned_static),
                "{s}: verify-mode records are all simulated"
            );
        }
    }

    #[test]
    fn adaptive_sampling_stops_at_the_target_margin() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let cc = CampaignConfig {
            plan: SamplingPlan::adaptive(0.15, 25),
            seed: 6,
            ..CampaignConfig::default()
        };
        let r = inj.run(Structure::RegFile, &cc).execute().result;
        assert!(
            r.margin_99() <= 0.15,
            "margin {} misses the target",
            r.margin_99()
        );
        let population = r.bit_population * r.golden_cycles;
        assert!(r.total() > 0 && r.total() < population);
        // Deterministic: the same target settles on the same sample.
        let again = inj.run(Structure::RegFile, &cc).execute().result;
        assert_eq!(r, again);
        // A tighter target draws more faults.
        let tighter = CampaignConfig {
            plan: SamplingPlan::adaptive(0.08, 25),
            ..cc
        };
        let t = inj.run(Structure::RegFile, &tighter).execute().result;
        assert!(t.total() > r.total());
        assert!(t.margin_99() <= 0.08);
    }

    #[test]
    fn ghost_iq_valid_bit_asserts_instead_of_panicking() {
        // Satellite: a tag fault that corrupts capacity bookkeeping must end
        // in a SimOutcome::Assert *return*, not a panic — under
        // `panic = "abort"` a panicking child would take the whole campaign
        // down with it. Setting the dest-field valid bit of an empty issue
        // queue slot fabricates a ghost entry with no dispatched
        // instruction; the issue stage must refuse it gracefully. No
        // catch_unwind here on purpose: a panic fails the test.
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let mut sim = Sim::new(&cfg, &program);
        assert!(sim.run_to_cycle(20).is_none(), "program runs past cycle 20");
        let bpe = sim.bit_count(Structure::IqDest) / cfg.iq_entries as u64;
        let ghost_valid_bit = (cfg.iq_entries as u64 - 1) * bpe + (bpe - 1);
        sim.flip_bit(Structure::IqDest, ghost_valid_bit);
        let end = sim.run(2 * inj.golden().cycles);
        assert!(
            matches!(end, SimOutcome::Assert { .. }),
            "ghost IQ entry must classify as Assert, got {end:?}"
        );
        // And the campaign path agrees (the fault is never prunable: valid
        // bits of empty slots are exactly where ghosts come from).
        let fault = FaultSpec {
            structure: Structure::IqDest,
            bit: ghost_valid_bit,
            cycle: 20,
        };
        assert_eq!(inj.inject(fault), FaultClass::Assert);
        assert!(!inj.prunable(fault, 1), "ghost sites must never be pruned");
    }

    #[test]
    fn prune_mode_round_trips_through_str() {
        for mode in [PruneMode::Off, PruneMode::On, PruneMode::Verify] {
            assert_eq!(mode.name().parse::<PruneMode>().unwrap(), mode);
        }
        assert!("sometimes".parse::<PruneMode>().is_err());
    }

    #[test]
    fn class_counts_merge() {
        let mut a = ClassCounts::default();
        a.record(FaultClass::Masked);
        a.record(FaultClass::Sdc);
        let mut b = ClassCounts::default();
        b.record(FaultClass::Assert);
        b.record(FaultClass::Assert);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.get(FaultClass::Assert), 2);
    }

    #[test]
    fn importance_sampling_draws_only_live_sites_and_is_prefix_stable() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let s = Structure::RegFile;
        let a = inj.sample_importance(s, 40, 9);
        let b = inj.sample_importance(s, 40, 9);
        assert_eq!(a, b, "seed-keyed and reproducible");
        let big = inj.sample_importance(s, 80, 9);
        assert_eq!(&big[..40], &a[..], "prefix-stable for adaptive growth");
        let mut seen = std::collections::HashSet::new();
        for f in &big {
            assert!(
                inj.liveness().is_vulnerable(s, f.bit, f.cycle),
                "importance sampling must only draw live-and-demanded sites"
            );
            assert!(seen.insert((f.bit, f.cycle)), "no repeated sites");
        }
        // The drawn sites differ from uniform's (RegFile has dead sites the
        // pruner proves masked, which uniform happily draws).
        let uniform = inj.sample_faults(s, 80, 9);
        assert!(
            uniform
                .iter()
                .any(|f| !inj.liveness().is_vulnerable(s, f.bit, f.cycle)),
            "uniform draws some provably-dead sites on RegFile"
        );
        // Over-asking caps at the live population, not the full one.
        let sampler = crate::sampler::ImportanceSampler;
        let live = sampler.population(&inj, s);
        assert!(live > 0 && live < UniformSampler.population(&inj, s));
        let census = inj.sample_importance(s, live + 1000, 9);
        assert_eq!(census.len() as u64, live);
    }

    #[test]
    fn importance_campaign_reweights_and_agrees_with_uniform() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let s = Structure::RegFile;
        let uni_cfg = CampaignConfig {
            plan: SamplingPlan::adaptive(0.12, 25),
            seed: 10,
            ..CampaignConfig::default()
        };
        let imp_cfg = CampaignConfig {
            plan: uni_cfg.plan.sampler(SamplerKind::Importance),
            ..uni_cfg
        };
        let uni = inj.run(s, &uni_cfg).execute();
        let imp = inj.run(s, &imp_cfg).records(true).execute();
        let (u, i) = (&uni.result, &imp.result);
        assert_eq!(u.weight, 1.0);
        assert_eq!(u.live_population, None);
        assert!(i.weight > 0.0 && i.weight < 1.0, "RegFile has dead sites");
        assert_eq!(
            i.live_population,
            Some(crate::sampler::ImportanceSampler.population(&inj, s))
        );
        // Same margin target, fewer forked children: the whole point.
        assert!(i.margin_99() <= 0.12, "importance margin {}", i.margin_99());
        assert!(u.margin_99() <= 0.12, "uniform margin {}", u.margin_99());
        assert!(
            imp.simulated < uni.simulated,
            "importance simulated {} >= uniform {}",
            imp.simulated,
            uni.simulated
        );
        // Estimates agree within combined 99% margins.
        assert!(
            (i.avf() - u.avf()).abs() <= i.margin_99() + u.margin_99(),
            "importance AVF {} vs uniform {} beyond combined margins",
            i.avf(),
            u.avf()
        );
        // Every record carries the structure's live-mass weight, and the
        // five reweighted fractions still sum to 1.
        for r in imp.records.as_ref().unwrap() {
            assert_eq!(r.weight, i.weight);
        }
        let frac_sum: f64 = FaultClass::ALL.iter().map(|c| i.fraction(*c)).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9, "fractions sum to {frac_sum}");
    }

    #[test]
    fn importance_verify_campaign_cross_checks_against_uniform() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        for s in [Structure::RegFile, Structure::RobFlags] {
            let out = inj
                .run(
                    s,
                    &CampaignConfig {
                        plan: SamplingPlan::adaptive(0.15, 25)
                            .sampler(SamplerKind::ImportanceVerify),
                        seed: 12,
                        ..CampaignConfig::default()
                    },
                )
                .execute();
            // Verify mode draws exactly like plain importance; the uniform
            // cross-check runs on the side and panics only on disagreement.
            let plain = inj
                .run(
                    s,
                    &CampaignConfig {
                        plan: SamplingPlan::adaptive(0.15, 25).sampler(SamplerKind::Importance),
                        seed: 12,
                        ..CampaignConfig::default()
                    },
                )
                .execute();
            assert_eq!(out.result, plain.result, "{s}: verify draws identically");
        }
    }

    #[test]
    fn preset_fault_lists_always_carry_unit_weight() {
        // A caller-supplied fault list is the caller's own census — no
        // sampling distribution applies, even under an importance plan.
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let faults = inj.sample_importance(Structure::RegFile, 20, 3);
        let out = inj
            .run(
                Structure::RegFile,
                &CampaignConfig {
                    plan: SamplingPlan::fixed(20).sampler(SamplerKind::Importance),
                    seed: 3,
                    ..CampaignConfig::default()
                },
            )
            .faults(&faults)
            .records(true)
            .execute();
        assert_eq!(out.result.weight, 1.0);
        assert_eq!(out.result.live_population, None);
        assert!(out.records.unwrap().iter().all(|r| r.weight == 1.0));
    }
}
