//! Fault specification, single-run execution, and campaign orchestration.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use softerr_isa::Program;
use softerr_sim::{MachineConfig, Sim, SimOutcome, Structure};
use std::fmt;

/// One single-bit transient fault: flip `bit` of `structure` at `cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Target structure field.
    pub structure: Structure,
    /// Bit index within the structure (`0..bit_count`).
    pub bit: u64,
    /// Injection cycle (`0..golden_cycles`).
    pub cycle: u64,
}

/// Outcome class of one injection (the paper's classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultClass {
    /// No architecturally visible deviation.
    Masked,
    /// Silent data corruption: wrong output, no other indication.
    Sdc,
    /// Process/kernel crash (architectural fault at commit).
    Crash,
    /// Exceeded 2× the fault-free execution time.
    Timeout,
    /// Simulator assertion (unhandled microarchitectural state).
    Assert,
}

impl FaultClass {
    /// All classes, masked first.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::Masked,
        FaultClass::Sdc,
        FaultClass::Crash,
        FaultClass::Timeout,
        FaultClass::Assert,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Masked => "Masked",
            FaultClass::Sdc => "SDC",
            FaultClass::Crash => "Crash",
            FaultClass::Timeout => "Timeout",
            FaultClass::Assert => "Assert",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class injection counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Masked runs.
    pub masked: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Crashes.
    pub crash: u64,
    /// Timeouts.
    pub timeout: u64,
    /// Asserts.
    pub assert_: u64,
}

impl ClassCounts {
    /// Adds one outcome.
    pub fn record(&mut self, class: FaultClass) {
        match class {
            FaultClass::Masked => self.masked += 1,
            FaultClass::Sdc => self.sdc += 1,
            FaultClass::Crash => self.crash += 1,
            FaultClass::Timeout => self.timeout += 1,
            FaultClass::Assert => self.assert_ += 1,
        }
    }

    /// Count of one class.
    pub fn get(&self, class: FaultClass) -> u64 {
        match class {
            FaultClass::Masked => self.masked,
            FaultClass::Sdc => self.sdc,
            FaultClass::Crash => self.crash,
            FaultClass::Timeout => self.timeout,
            FaultClass::Assert => self.assert_,
        }
    }

    /// Total injections.
    pub fn total(&self) -> u64 {
        self.masked + self.sdc + self.crash + self.timeout + self.assert_
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &ClassCounts) {
        self.masked += other.masked;
        self.sdc += other.sdc;
        self.crash += other.crash;
        self.timeout += other.timeout;
        self.assert_ += other.assert_;
    }
}

/// Fault-free reference execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Golden {
    /// Execution time in cycles.
    pub cycles: u64,
    /// Retired instruction count.
    pub retired: u64,
    /// Program output.
    pub output: Vec<u64>,
}

/// The golden run failed (the program itself is broken).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenError(pub String);

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "golden run failed: {}", self.0)
    }
}

impl std::error::Error for GoldenError {}

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Injections per structure (the paper uses 2,000).
    pub injections: u64,
    /// RNG seed (campaigns are fully reproducible).
    pub seed: u64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig { injections: 100, seed: 0xB17F11B5, threads: 1 }
    }
}

/// Aggregated result of a campaign on one structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Target structure.
    pub structure: Structure,
    /// Injectable bit population of the structure.
    pub bit_population: u64,
    /// Golden execution time (cycles) the faults were sampled over.
    pub golden_cycles: u64,
    /// Per-class tallies.
    pub counts: ClassCounts,
}

impl CampaignResult {
    /// Total injections.
    pub fn total(&self) -> u64 {
        self.counts.total()
    }

    /// Architectural vulnerability factor: the non-masked fraction.
    pub fn avf(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        1.0 - self.counts.masked as f64 / n as f64
    }

    /// Fraction of injections in a class.
    pub fn fraction(&self, class: FaultClass) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        self.counts.get(class) as f64 / n as f64
    }

    /// Error margin of the AVF estimate at 99% confidence (Leveugle).
    pub fn margin_99(&self) -> f64 {
        crate::stats::error_margin(
            self.total(),
            self.bit_population.saturating_mul(self.golden_cycles.max(1)),
            crate::stats::Z_99,
        )
    }
}

/// Fault injector bound to one (machine, program) pair.
///
/// Holds the golden reference; every injection constructs a fresh simulator
/// so faults cannot leak between runs.
#[derive(Debug)]
pub struct Injector<'a> {
    cfg: &'a MachineConfig,
    program: &'a Program,
    golden: Golden,
}

impl<'a> Injector<'a> {
    /// Runs the golden execution and prepares the injector.
    ///
    /// # Errors
    ///
    /// [`GoldenError`] if the fault-free program does not halt cleanly.
    pub fn new(cfg: &'a MachineConfig, program: &'a Program) -> Result<Injector<'a>, GoldenError> {
        let mut sim = Sim::new(cfg, program);
        match sim.run(4_000_000_000) {
            SimOutcome::Halted { cycles, retired, output } => Ok(Injector {
                cfg,
                program,
                golden: Golden { cycles, retired, output },
            }),
            other => Err(GoldenError(format!("{other:?}"))),
        }
    }

    /// The golden reference run.
    pub fn golden(&self) -> &Golden {
        &self.golden
    }

    /// Number of injectable bits of `structure` on this machine.
    pub fn bit_count(&self, structure: Structure) -> u64 {
        Sim::new(self.cfg, self.program).bit_count(structure)
    }

    /// Executes one single-bit injection and classifies the outcome.
    pub fn inject(&self, fault: FaultSpec) -> FaultClass {
        self.inject_burst(fault, 1)
    }

    /// Executes a multi-bit-upset injection: `width` *adjacent* bits are
    /// flipped at the fault cycle (width 1 is the paper's single-event
    /// upset; larger widths model the MBU bursts of the authors' companion
    /// IISWC'19 study). Bits past the end of the structure wrap around.
    pub fn inject_burst(&self, fault: FaultSpec, width: u8) -> FaultClass {
        let mut sim = Sim::new(self.cfg, self.program);
        if let Some(early) = sim.run_to_cycle(fault.cycle) {
            // The golden run ended before the injection cycle (can only
            // happen with out-of-range cycles): the fault lands after the
            // program finished and is architecturally masked.
            return match early {
                SimOutcome::Halted { .. } => FaultClass::Masked,
                other => unreachable!("golden-equivalent prefix diverged: {other:?}"),
            };
        }
        let bits = sim.bit_count(fault.structure);
        for k in 0..width.max(1) as u64 {
            sim.flip_bit(fault.structure, (fault.bit + k) % bits);
        }
        match sim.run(2 * self.golden.cycles) {
            SimOutcome::Halted { output, .. } => {
                if output == self.golden.output {
                    FaultClass::Masked
                } else {
                    FaultClass::Sdc
                }
            }
            SimOutcome::Crash { .. } => FaultClass::Crash,
            SimOutcome::Assert { .. } => FaultClass::Assert,
            SimOutcome::CycleLimit { .. } => FaultClass::Timeout,
        }
    }

    /// Runs a campaign of `width`-bit burst upsets on one structure.
    pub fn campaign_burst(
        &self,
        structure: Structure,
        cfg: &CampaignConfig,
        width: u8,
    ) -> CampaignResult {
        let faults = self.sample_faults(structure, cfg.injections, cfg.seed);
        let mut counts = ClassCounts::default();
        for f in &faults {
            counts.record(self.inject_burst(*f, width));
        }
        CampaignResult {
            structure,
            bit_population: self.bit_count(structure),
            golden_cycles: self.golden.cycles,
            counts,
        }
    }

    /// Samples `n` faults for a structure uniformly over (bit × cycle),
    /// reproducibly from `seed`.
    pub fn sample_faults(&self, structure: Structure, n: u64, seed: u64) -> Vec<FaultSpec> {
        let bits = self.bit_count(structure);
        let cycles = self.golden.cycles.max(1);
        // Mix the structure into the seed so different structures draw
        // independent samples from the same campaign seed.
        let mut rng = SmallRng::seed_from_u64(
            seed ^ (structure as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        (0..n)
            .map(|_| FaultSpec {
                structure,
                bit: rng.gen_range(0..bits),
                cycle: rng.gen_range(0..cycles),
            })
            .collect()
    }

    /// Runs a full campaign on one structure.
    pub fn campaign(&self, structure: Structure, cfg: &CampaignConfig) -> CampaignResult {
        let faults = self.sample_faults(structure, cfg.injections, cfg.seed);
        let counts = if cfg.threads <= 1 {
            let mut counts = ClassCounts::default();
            for f in &faults {
                counts.record(self.inject(*f));
            }
            counts
        } else {
            self.parallel_counts(&faults, cfg.threads)
        };
        CampaignResult {
            structure,
            bit_population: self.bit_count(structure),
            golden_cycles: self.golden.cycles,
            counts,
        }
    }

    fn parallel_counts(&self, faults: &[FaultSpec], threads: usize) -> ClassCounts {
        let chunk = faults.len().div_ceil(threads).max(1);
        let partials: Vec<ClassCounts> = std::thread::scope(|scope| {
            let handles: Vec<_> = faults
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || {
                        let mut counts = ClassCounts::default();
                        for f in slice {
                            counts.record(self.inject(*f));
                        }
                        counts
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("injection worker panicked"))
                .collect()
        });
        let mut total = ClassCounts::default();
        for p in &partials {
            total.merge(p);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softerr_cc::{Compiler, OptLevel};

    fn setup() -> (MachineConfig, Program) {
        let cfg = MachineConfig::cortex_a15();
        let program = Compiler::new(cfg.profile, OptLevel::O1)
            .compile(
                "int tab[16];
                 void main() {
                     for (int i = 0; i < 16; i = i + 1) tab[i] = i * 3;
                     int s = 0;
                     for (int i = 0; i < 16; i = i + 1) s = s + tab[i];
                     out(s);
                 }",
            )
            .unwrap()
            .program;
        (cfg, program)
    }

    #[test]
    fn golden_run_is_recorded() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        assert_eq!(inj.golden().output, vec![360]);
        assert!(inj.golden().cycles > 0);
    }

    #[test]
    fn fault_sampling_is_reproducible_and_in_range() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let a = inj.sample_faults(Structure::RegFile, 50, 42);
        let b = inj.sample_faults(Structure::RegFile, 50, 42);
        assert_eq!(a, b);
        let bits = inj.bit_count(Structure::RegFile);
        for f in &a {
            assert!(f.bit < bits);
            assert!(f.cycle < inj.golden().cycles);
        }
        let c = inj.sample_faults(Structure::RegFile, 50, 43);
        assert_ne!(a, c, "different seeds draw different faults");
        let d = inj.sample_faults(Structure::IqSrc, 50, 42);
        assert!(
            a.iter().zip(&d).any(|(x, y)| x.cycle != y.cycle),
            "different structures draw independent samples"
        );
    }

    #[test]
    fn campaign_counts_sum_and_avf_bounds() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let r = inj.campaign(
            Structure::RegFile,
            &CampaignConfig { injections: 40, seed: 1, threads: 1 },
        );
        assert_eq!(r.total(), 40);
        assert!((0.0..=1.0).contains(&r.avf()));
        let frac_sum: f64 = FaultClass::ALL.iter().map(|c| r.fraction(*c)).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let cc = CampaignConfig { injections: 30, seed: 99, threads: 1 };
        let a = inj.campaign(Structure::IqSrc, &cc);
        let b = inj.campaign(Structure::IqSrc, &cc);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_campaign_matches_sequential() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let seq = inj.campaign(
            Structure::L1DData,
            &CampaignConfig { injections: 24, seed: 5, threads: 1 },
        );
        let par = inj.campaign(
            Structure::L1DData,
            &CampaignConfig { injections: 24, seed: 5, threads: 3 },
        );
        assert_eq!(seq.counts, par.counts);
    }

    #[test]
    fn lsq_campaign_outcomes_are_assert_or_masked() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        for s in [Structure::LoadQueue, Structure::StoreQueue] {
            let r = inj.campaign(s, &CampaignConfig { injections: 50, seed: 3, threads: 1 });
            assert_eq!(r.counts.sdc, 0, "{s}: paper reports no SDCs");
            assert_eq!(r.counts.crash, 0, "{s}: paper reports no crashes");
        }
    }

    #[test]
    fn injection_after_program_end_is_masked() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let class = inj.inject(FaultSpec {
            structure: Structure::RegFile,
            bit: 5,
            cycle: inj.golden().cycles * 10,
        });
        assert_eq!(class, FaultClass::Masked);
    }

    #[test]
    fn burst_width_one_equals_single_bit() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let f = FaultSpec { structure: Structure::RegFile, bit: 100, cycle: 20 };
        assert_eq!(inj.inject(f), inj.inject_burst(f, 1));
    }

    #[test]
    fn wider_bursts_are_at_least_as_vulnerable_on_average() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let cc = CampaignConfig { injections: 60, seed: 77, threads: 1 };
        let single = inj.campaign_burst(Structure::L1IData, &cc, 1);
        let quad = inj.campaign_burst(Structure::L1IData, &cc, 4);
        // Same fault sites: a 4-bit burst strictly contains the 1-bit flip,
        // so it can only add ways to fail.
        assert!(quad.avf() >= single.avf(), "{} < {}", quad.avf(), single.avf());
    }

    #[test]
    fn burst_wraps_at_structure_end_without_panicking() {
        let (cfg, program) = setup();
        let inj = Injector::new(&cfg, &program).unwrap();
        let bits = inj.bit_count(Structure::LoadQueue);
        let f = FaultSpec { structure: Structure::LoadQueue, bit: bits - 1, cycle: 10 };
        let _ = inj.inject_burst(f, 4);
    }

    #[test]
    fn class_counts_merge() {
        let mut a = ClassCounts::default();
        a.record(FaultClass::Masked);
        a.record(FaultClass::Sdc);
        let mut b = ClassCounts::default();
        b.record(FaultClass::Assert);
        b.record(FaultClass::Assert);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.get(FaultClass::Assert), 2);
    }
}
