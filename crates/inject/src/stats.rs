//! Statistical-fault-sampling mathematics (Leveugle et al., DATE 2009).
//!
//! The paper samples 2,000 faults per structure and reports a 2.88% error
//! margin at 99% confidence; [`error_margin`] reproduces that figure.

/// z-score for 90% confidence.
pub const Z_90: f64 = 1.6449;
/// z-score for 95% confidence.
pub const Z_95: f64 = 1.9600;
/// z-score for 99% confidence.
pub const Z_99: f64 = 2.5758;

/// Error margin of an estimated proportion from `n` samples drawn from a
/// population of `population` faults, at confidence `z`, assuming the
/// worst-case proportion p = 0.5 (finite-population corrected).
///
/// ```
/// use softerr_inject::{error_margin, Z_99};
/// let e = error_margin(2000, 1e12 as u64, Z_99);
/// assert!((e - 0.0288).abs() < 0.0002, "paper's 2.88% figure");
/// ```
pub fn error_margin(n: u64, population: u64, z: f64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let n_f = n as f64;
    let pop = population.max(n) as f64;
    let fpc = if pop > 1.0 {
        (pop - n_f) / (pop - 1.0)
    } else {
        0.0
    };
    z * (0.25 / n_f * fpc.max(0.0)).sqrt()
}

/// Sample size needed for a target error margin `e` at confidence `z`
/// (worst-case p = 0.5, finite population).
pub fn required_sample(e: f64, population: u64, z: f64) -> u64 {
    let pop = population as f64;
    let n0 = z * z * 0.25 / (e * e);
    let n = (pop * n0) / (n0 + pop - 1.0);
    n.ceil() as u64
}

/// Horvitz–Thompson class proportion: `count` of `n` samples were drawn
/// uniformly from a subpopulation carrying probability mass `weight` of the
/// full population, and everything outside that subpopulation is known to
/// contribute zero to the class. The full-population proportion is then
/// `weight * count / n`. With `weight = 1.0` this is the plain sample
/// proportion.
pub fn ht_fraction(count: u64, n: u64, weight: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    weight * (count as f64 / n as f64)
}

/// Reweighted Leveugle margin: the estimator behind an importance-sampled
/// campaign is `weight * p̂` with `p̂` a proportion over `n` draws from the
/// live subpopulation of `live_population` sites, so its worst-case margin
/// is `weight` times the uniform margin over that subpopulation. With
/// `weight = 1.0` this is bit-identical to [`error_margin`].
pub fn weighted_error_margin(n: u64, live_population: u64, weight: f64, z: f64) -> f64 {
    weight * error_margin(n, live_population, z)
}

/// Sample size needed for a reweighted margin of `e`: since the margin
/// scales by `weight`, the subpopulation only has to be sampled to a margin
/// of `e / weight` — the `weight²` factor behind importance sampling's
/// child-simulation savings. A non-positive weight means the subpopulation
/// is empty (the estimate is exact at zero samples). With `weight = 1.0`
/// this is bit-identical to [`required_sample`].
pub fn weighted_required_sample(e: f64, live_population: u64, weight: f64, z: f64) -> u64 {
    if weight >= 1.0 {
        return required_sample(e, live_population, z);
    }
    if weight <= 0.0 || live_population == 0 {
        return 0;
    }
    required_sample(e / weight, live_population, z).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figures_reproduce() {
        // 2,000 injections → 2.88% at 99% confidence (paper §III.A).
        let e = error_margin(2000, u64::MAX / 2, Z_99);
        assert!((e - 0.0288).abs() < 2e-4, "got {e}");
    }

    #[test]
    fn margin_shrinks_with_samples() {
        let pop = 1_000_000_000;
        assert!(error_margin(100, pop, Z_95) > error_margin(1000, pop, Z_95));
        assert!(error_margin(1000, pop, Z_95) > error_margin(10000, pop, Z_95));
    }

    #[test]
    fn full_census_has_zero_margin() {
        assert_eq!(error_margin(1000, 1000, Z_99), 0.0);
    }

    #[test]
    fn required_sample_inverts_margin() {
        let pop = u64::MAX / 2;
        let n = required_sample(0.0288, pop, Z_99);
        assert!((1990..=2010).contains(&n), "got {n}");
        let e = error_margin(n, pop, Z_99);
        assert!(e <= 0.0288 + 1e-6);
    }

    #[test]
    fn zero_samples_is_total_uncertainty() {
        assert_eq!(error_margin(0, 100, Z_99), 1.0);
    }

    #[test]
    fn unit_weight_reweighting_is_bit_identical_to_uniform() {
        for (n, pop) in [(0u64, 100u64), (100, 1_000_000), (2000, u64::MAX / 2)] {
            assert_eq!(
                weighted_error_margin(n, pop, 1.0, Z_99).to_bits(),
                error_margin(n, pop, Z_99).to_bits()
            );
        }
        assert_eq!(
            weighted_required_sample(0.0288, u64::MAX / 2, 1.0, Z_99),
            required_sample(0.0288, u64::MAX / 2, Z_99)
        );
    }

    #[test]
    fn ht_fraction_reweights_by_subpopulation_mass() {
        assert_eq!(ht_fraction(0, 0, 0.5), 0.0);
        assert!((ht_fraction(50, 100, 1.0) - 0.5).abs() < 1e-12);
        // Half the sample non-masked, but the live subpopulation is only
        // 1% of the sites: the full-population proportion is 0.5%.
        assert!((ht_fraction(50, 100, 0.01) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn weighted_required_sample_shrinks_with_the_weight() {
        let live = 10_000_000u64;
        let uniform = required_sample(0.005, u64::MAX / 2, Z_99);
        let importance = weighted_required_sample(0.005, live, 0.01, Z_99);
        assert!(
            importance.saturating_mul(10) <= uniform,
            "importance ({importance}) must need >=10x fewer samples than \
             uniform ({uniform}) at 1% live fraction"
        );
        // The achieved reweighted margin really is at or under the target.
        let achieved = weighted_error_margin(importance, live, 0.01, Z_99);
        assert!(achieved <= 0.005 + 1e-9, "got {achieved}");
        // Degenerate weights stop at zero samples, never panic.
        assert_eq!(weighted_required_sample(0.01, 0, 0.0, Z_99), 0);
        assert_eq!(weighted_required_sample(0.01, 100, 0.0, Z_99), 0);
    }
}
