//! Statistical-fault-sampling mathematics (Leveugle et al., DATE 2009).
//!
//! The paper samples 2,000 faults per structure and reports a 2.88% error
//! margin at 99% confidence; [`error_margin`] reproduces that figure.

/// z-score for 90% confidence.
pub const Z_90: f64 = 1.6449;
/// z-score for 95% confidence.
pub const Z_95: f64 = 1.9600;
/// z-score for 99% confidence.
pub const Z_99: f64 = 2.5758;

/// Error margin of an estimated proportion from `n` samples drawn from a
/// population of `population` faults, at confidence `z`, assuming the
/// worst-case proportion p = 0.5 (finite-population corrected).
///
/// ```
/// use softerr_inject::{error_margin, Z_99};
/// let e = error_margin(2000, 1e12 as u64, Z_99);
/// assert!((e - 0.0288).abs() < 0.0002, "paper's 2.88% figure");
/// ```
pub fn error_margin(n: u64, population: u64, z: f64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let n_f = n as f64;
    let pop = population.max(n) as f64;
    let fpc = if pop > 1.0 {
        (pop - n_f) / (pop - 1.0)
    } else {
        0.0
    };
    z * (0.25 / n_f * fpc.max(0.0)).sqrt()
}

/// Sample size needed for a target error margin `e` at confidence `z`
/// (worst-case p = 0.5, finite population).
pub fn required_sample(e: f64, population: u64, z: f64) -> u64 {
    let pop = population as f64;
    let n0 = z * z * 0.25 / (e * e);
    let n = (pop * n0) / (n0 + pop - 1.0);
    n.ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figures_reproduce() {
        // 2,000 injections → 2.88% at 99% confidence (paper §III.A).
        let e = error_margin(2000, u64::MAX / 2, Z_99);
        assert!((e - 0.0288).abs() < 2e-4, "got {e}");
    }

    #[test]
    fn margin_shrinks_with_samples() {
        let pop = 1_000_000_000;
        assert!(error_margin(100, pop, Z_95) > error_margin(1000, pop, Z_95));
        assert!(error_margin(1000, pop, Z_95) > error_margin(10000, pop, Z_95));
    }

    #[test]
    fn full_census_has_zero_margin() {
        assert_eq!(error_margin(1000, 1000, Z_99), 0.0);
    }

    #[test]
    fn required_sample_inverts_margin() {
        let pop = u64::MAX / 2;
        let n = required_sample(0.0288, pop, Z_99);
        assert!((1990..=2010).contains(&n), "got {n}");
        let e = error_margin(n, pop, Z_99);
        assert!(e <= 0.0288 + 1e-6);
    }

    #[test]
    fn zero_samples_is_total_uncertainty() {
        assert_eq!(error_margin(0, 100, Z_99), 1.0);
    }
}
