//! # softerr-inject
//!
//! The study's statistical fault-injection framework (the GeFIN
//! equivalent). A campaign samples single-bit transient faults uniformly
//! over (bit × cycle) — the statistical model of Leveugle et al. (DATE'09)
//! the paper follows — runs each fault to completion on the cycle-level
//! simulator, and classifies the outcome into the paper's five classes:
//!
//! * **Masked** — the run finished with output identical to the golden run,
//! * **SDC** — finished, but the output differs (silent data corruption),
//! * **Crash** — an architectural fault reached commit,
//! * **Timeout** — the run exceeded 2× the fault-free execution time,
//! * **Assert** — the simulator hit a state it cannot meaningfully
//!   continue from (corrupted linkage, out-of-map cache operation, …).
//!
//! The AVF of a structure is the non-masked fraction of its injections.
//!
//! Sampling is configured by a typed [`SamplingPlan`]: the sampling
//! distribution ([`SamplerKind`]), the stopping rule ([`StopRule`]), and
//! the prune policy ([`PrunePolicy`]). Importance sampling draws only from
//! the golden run's live-and-demanded subpopulation and reweights tallies
//! by its mass (Horvitz–Thompson), reaching the same confidence margin as
//! uniform sampling with far fewer simulated faults on sparse structures.
//!
//! ```
//! use softerr_cc::{Compiler, OptLevel};
//! use softerr_inject::{CampaignConfig, Injector, SamplingPlan};
//! use softerr_isa::Profile;
//! use softerr_sim::{MachineConfig, Structure};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = MachineConfig::cortex_a72();
//! let program = Compiler::new(Profile::A64, OptLevel::O1)
//!     .compile("void main() { int s = 0; for (int i = 0; i < 30; i = i + 1) s = s + i; out(s); }")?
//!     .program;
//! let injector = Injector::new(&cfg, &program)?;
//! let result = injector
//!     .run(
//!         Structure::RegFile,
//!         &CampaignConfig { plan: SamplingPlan::fixed(25), seed: 7, ..CampaignConfig::default() },
//!     )
//!     .execute()
//!     .result;
//! assert_eq!(result.total(), 25);
//! assert!(result.avf() >= 0.0 && result.avf() <= 1.0);
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

mod campaign;
mod manifest;
mod progress;
mod record;
mod sampler;
mod stats;

pub use campaign::{
    CampaignConfig, CampaignOutput, CampaignResult, CampaignRun, ClassCounts, FaultClass,
    FaultSpec, Golden, GoldenError, Injector, PruneMode,
};
pub use manifest::{fnv1a, RunManifest};
pub use progress::{CampaignObserver, ProgressLine};
pub use record::{DivergenceSite, FaultRecord, PropagationSample, PropagationTrace};
pub use sampler::{
    ImportanceSampler, PrunePolicy, Sampler, SamplerKind, SamplingPlan, StopRule, UniformSampler,
};
pub use stats::{
    error_margin, ht_fraction, required_sample, weighted_error_margin, weighted_required_sample,
    Z_90, Z_95, Z_99,
};
