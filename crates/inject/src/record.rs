//! Per-fault provenance records.
//!
//! A campaign's aggregate [`crate::CampaignResult`] answers *how often* a
//! structure's faults matter; the per-fault [`FaultRecord`] answers *how*
//! each one mattered: when the outcome was decided, how long the fault
//! stayed latent, and — for faults that corrupted execution — where the
//! microarchitectural state first diverged from the fault-free run.

use crate::campaign::{FaultClass, FaultSpec};
use serde::{Deserialize, Serialize};

/// Where a faulted run's state first differed from the golden run.
///
/// Captured at the injection cycle by diffing the forked simulator against
/// the golden one it was cloned from, so `component` names the structure
/// the flip actually corrupted (a flip into dead state is provably masked
/// and produces no site at all).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DivergenceSite {
    /// Cycle at which the divergence was first observed (the injection
    /// cycle).
    pub cycle: u64,
    /// Program counter the front end was fetching from at that cycle.
    pub pc: u64,
    /// First differing simulator component in the engine's cheapest-first
    /// comparison order (e.g. `"rf"`, `"rob"`, `"mem.l1d"`).
    pub component: String,
}

/// Full forensic record of one injection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// The injected fault.
    pub spec: FaultSpec,
    /// Outcome class.
    pub class: FaultClass,
    /// The faulted run's terminal cycle. A run the convoy engine proved
    /// converged back to the golden state necessarily halts exactly when
    /// the golden run does, so its record carries the golden cycle count;
    /// faults that land after the program ends (or flip nothing, or are
    /// pruned as provably dead) are decided at the injection cycle itself.
    /// This makes the field a pure function of the fault — independent of
    /// engine choice, thread count, and which other faults were sampled.
    pub end_cycle: u64,
    /// Golden (fault-free) execution time in cycles, for normalizing.
    pub golden_cycles: u64,
    /// First point where microarchitectural state diverged from the golden
    /// run, or `None` for faults that never corrupted live state.
    pub first_divergence: Option<DivergenceSite>,
    /// Verdict provenance: `true` when the liveness pruner classified the
    /// fault as Masked without simulating it (`prune = on` campaigns only;
    /// verify-mode campaigns simulate everything, so their records never
    /// set this).
    pub pruned: bool,
    /// Verdict provenance: `true` when the compiler's static bit-demand
    /// analysis classified the fault as Masked without simulating it
    /// (`prune_static = on` campaigns only). Mutually exclusive with
    /// `pruned` — a fault both stages could prune is attributed to the
    /// dynamic liveness pruner.
    pub pruned_static: bool,
}

impl FaultRecord {
    /// Cycles from injection to the outcome being decided — the detection
    /// latency for Crash/Assert faults, and the time-to-verdict for the
    /// other classes.
    pub fn detect_latency_cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.spec.cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softerr_sim::Structure;

    fn record(cycle: u64, end_cycle: u64) -> FaultRecord {
        FaultRecord {
            spec: FaultSpec {
                structure: Structure::RegFile,
                bit: 17,
                cycle,
            },
            class: FaultClass::Sdc,
            end_cycle,
            golden_cycles: 500,
            first_divergence: Some(DivergenceSite {
                cycle,
                pc: 0x40,
                component: "rf".to_string(),
            }),
            pruned: false,
            pruned_static: false,
        }
    }

    #[test]
    fn latency_is_end_minus_injection() {
        assert_eq!(record(100, 350).detect_latency_cycles(), 250);
        // Degenerate records (decided at the injection cycle) have zero
        // latency, never an underflow.
        assert_eq!(record(100, 100).detect_latency_cycles(), 0);
        assert_eq!(record(100, 90).detect_latency_cycles(), 0);
    }

    #[test]
    fn records_roundtrip_through_json() {
        let r = record(42, 99);
        let json = serde_json::to_string(&r).unwrap();
        let back: FaultRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let mut bare = record(1, 2);
        bare.first_divergence = None;
        bare.pruned = true;
        bare.pruned_static = false;
        let json = serde_json::to_string(&bare).unwrap();
        let back: FaultRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bare);
    }
}
