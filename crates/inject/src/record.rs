//! Per-fault provenance records.
//!
//! A campaign's aggregate [`crate::CampaignResult`] answers *how often* a
//! structure's faults matter; the per-fault [`FaultRecord`] answers *how*
//! each one mattered: when the outcome was decided, how long the fault
//! stayed latent, and — for faults that corrupted execution — where the
//! microarchitectural state first diverged from the fault-free run.

use crate::campaign::{FaultClass, FaultSpec};
use serde::{Deserialize, Serialize, Value};

/// Where a faulted run's state first differed from the golden run.
///
/// Captured at the injection cycle by diffing the forked simulator against
/// the golden one it was cloned from, so `component` names the structure
/// the flip actually corrupted (a flip into dead state is provably masked
/// and produces no site at all).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DivergenceSite {
    /// Cycle at which the divergence was first observed (the injection
    /// cycle).
    pub cycle: u64,
    /// Program counter the front end was fetching from at that cycle.
    pub pc: u64,
    /// First differing simulator component in the engine's cheapest-first
    /// comparison order (e.g. `"rf"`, `"rob"`, `"mem.l1d"`).
    pub component: String,
}

/// One snapshot of the diverging-component set, taken a fixed number of
/// cycles after injection by a propagation-traced convoy child.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropagationSample {
    /// Golden cycle the snapshot was taken at.
    pub cycle: u64,
    /// Every simulator component differing from the golden run at that
    /// cycle, in [`softerr_sim::Sim::DIVERGENCE_COMPONENTS`] probe order.
    /// An empty set means the child had (transiently) re-converged.
    pub components: Vec<String>,
}

/// Opt-in per-fault propagation timeline: how the set of corrupted
/// components evolved after injection.
///
/// Captured by the convoy engine for a deterministically sampled subset of
/// non-pruned faults (see `CampaignRun::propagation`). Sampling is purely
/// observational — it reads the child and golden simulators and mutates
/// neither, so enabling it never changes classes or the other record
/// fields. The timeline itself is best-effort observability: it ends when
/// the child converges, halts, or graduates off the convoy, so its length
/// (unlike everything else in a [`FaultRecord`]) may depend on convoy
/// composition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropagationTrace {
    /// Sampling period in cycles.
    pub every: u64,
    /// Snapshots in cycle order, starting at the injection cycle.
    pub samples: Vec<PropagationSample>,
    /// Golden cycle at which the child was proven re-converged, when the
    /// convoy classified it that way.
    pub converged_at: Option<u64>,
}

impl PropagationTrace {
    /// Peak number of simultaneously diverging components.
    pub fn peak_components(&self) -> usize {
        self.samples
            .iter()
            .map(|s| s.components.len())
            .max()
            .unwrap_or(0)
    }
}

/// Full forensic record of one injection.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// The injected fault.
    pub spec: FaultSpec,
    /// Outcome class.
    pub class: FaultClass,
    /// The faulted run's terminal cycle. A run the convoy engine proved
    /// converged back to the golden state necessarily halts exactly when
    /// the golden run does, so its record carries the golden cycle count;
    /// faults that land after the program ends (or flip nothing, or are
    /// pruned as provably dead) are decided at the injection cycle itself.
    /// This makes the field a pure function of the fault — independent of
    /// engine choice, thread count, and which other faults were sampled.
    pub end_cycle: u64,
    /// Golden (fault-free) execution time in cycles, for normalizing.
    pub golden_cycles: u64,
    /// First point where microarchitectural state diverged from the golden
    /// run, or `None` for faults that never corrupted live state.
    pub first_divergence: Option<DivergenceSite>,
    /// Verdict provenance: `true` when the liveness pruner classified the
    /// fault as Masked without simulating it (`prune = on` campaigns only;
    /// verify-mode campaigns simulate everything, so their records never
    /// set this).
    pub pruned: bool,
    /// Verdict provenance: `true` when the compiler's static bit-demand
    /// analysis classified the fault as Masked without simulating it
    /// (`prune_static = on` campaigns only). Mutually exclusive with
    /// `pruned` — a fault both stages could prune is attributed to the
    /// dynamic liveness pruner.
    pub pruned_static: bool,
    /// Horvitz–Thompson weight of the fault's campaign sample: 1.0 under
    /// uniform sampling, the structure's live-site fraction under
    /// importance sampling. A pure function of the fault's structure and
    /// the golden run — independent of thread count and of which other
    /// faults were sampled.
    pub weight: f64,
    /// Time-resolved propagation timeline, for faults selected by an
    /// opt-in `CampaignRun::propagation` campaign (`None` otherwise).
    pub propagation: Option<PropagationTrace>,
}

// Hand-written (rather than derived) so `propagation: None` is *omitted*
// from the JSON object instead of serialized as `null`, and so the unit
// `weight` of every uniform-sampled record is omitted too: record streams
// from campaigns that never opted into propagation tracing or importance
// sampling stay byte-identical to the pre-propagation format, and old
// JSONL files parse unchanged (an absent `weight` reads back as 1.0).
impl Serialize for FaultRecord {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("spec".to_string(), self.spec.to_value()),
            ("class".to_string(), self.class.to_value()),
            ("end_cycle".to_string(), self.end_cycle.to_value()),
            ("golden_cycles".to_string(), self.golden_cycles.to_value()),
            (
                "first_divergence".to_string(),
                self.first_divergence.to_value(),
            ),
            ("pruned".to_string(), self.pruned.to_value()),
            ("pruned_static".to_string(), self.pruned_static.to_value()),
        ];
        if self.weight != 1.0 {
            fields.push(("weight".to_string(), self.weight.to_value()));
        }
        if let Some(propagation) = &self.propagation {
            fields.push(("propagation".to_string(), propagation.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for FaultRecord {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        Ok(FaultRecord {
            spec: Deserialize::from_value(serde::obj_get(v, "spec")?)?,
            class: Deserialize::from_value(serde::obj_get(v, "class")?)?,
            end_cycle: Deserialize::from_value(serde::obj_get(v, "end_cycle")?)?,
            golden_cycles: Deserialize::from_value(serde::obj_get(v, "golden_cycles")?)?,
            first_divergence: Deserialize::from_value(serde::obj_get(v, "first_divergence")?)?,
            pruned: Deserialize::from_value(serde::obj_get(v, "pruned")?)?,
            pruned_static: Deserialize::from_value(serde::obj_get(v, "pruned_static")?)?,
            weight: match serde::obj_get(v, "weight") {
                Ok(w) => Deserialize::from_value(w)?,
                Err(_) => 1.0,
            },
            propagation: match serde::obj_get(v, "propagation") {
                Ok(p) => Some(Deserialize::from_value(p)?),
                Err(_) => None,
            },
        })
    }
}

impl FaultRecord {
    /// Cycles from injection to the outcome being decided — the detection
    /// latency for Crash/Assert faults, and the time-to-verdict for the
    /// other classes.
    pub fn detect_latency_cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.spec.cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softerr_sim::Structure;

    fn record(cycle: u64, end_cycle: u64) -> FaultRecord {
        FaultRecord {
            spec: FaultSpec {
                structure: Structure::RegFile,
                bit: 17,
                cycle,
            },
            class: FaultClass::Sdc,
            end_cycle,
            golden_cycles: 500,
            first_divergence: Some(DivergenceSite {
                cycle,
                pc: 0x40,
                component: "rf".to_string(),
            }),
            pruned: false,
            pruned_static: false,
            weight: 1.0,
            propagation: None,
        }
    }

    #[test]
    fn latency_is_end_minus_injection() {
        assert_eq!(record(100, 350).detect_latency_cycles(), 250);
        // Degenerate records (decided at the injection cycle) have zero
        // latency, never an underflow.
        assert_eq!(record(100, 100).detect_latency_cycles(), 0);
        assert_eq!(record(100, 90).detect_latency_cycles(), 0);
    }

    #[test]
    fn records_roundtrip_through_json() {
        let r = record(42, 99);
        let json = serde_json::to_string(&r).unwrap();
        let back: FaultRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let mut bare = record(1, 2);
        bare.first_divergence = None;
        bare.pruned = true;
        bare.pruned_static = false;
        let json = serde_json::to_string(&bare).unwrap();
        let back: FaultRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bare);
    }

    #[test]
    fn unit_weight_is_omitted_and_absent_weight_reads_back_as_one() {
        let plain = record(10, 20);
        let json = serde_json::to_string(&plain).unwrap();
        assert!(
            !json.contains("weight"),
            "uniform records keep the pre-weight JSONL format: {json}"
        );
        let back: FaultRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.weight, 1.0, "absent weight defaults to 1.0");

        let mut weighted = record(10, 20);
        weighted.weight = 0.03125;
        let json = serde_json::to_string(&weighted).unwrap();
        assert!(json.contains("weight"), "non-unit weight is serialized");
        let back: FaultRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, weighted);
    }

    #[test]
    fn propagation_is_omitted_when_absent_and_roundtrips_when_present() {
        let plain = record(10, 20);
        let json = serde_json::to_string(&plain).unwrap();
        assert!(
            !json.contains("propagation"),
            "non-propagation records keep the pre-propagation JSONL format: {json}"
        );

        let mut traced = record(10, 20);
        traced.propagation = Some(PropagationTrace {
            every: 32,
            samples: vec![
                PropagationSample {
                    cycle: 10,
                    components: vec!["rf".into()],
                },
                PropagationSample {
                    cycle: 42,
                    components: vec!["rf".into(), "rob".into()],
                },
                PropagationSample {
                    cycle: 74,
                    components: vec![],
                },
            ],
            converged_at: Some(80),
        });
        assert_eq!(traced.propagation.as_ref().unwrap().peak_components(), 2);
        let json = serde_json::to_string(&traced).unwrap();
        let back: FaultRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, traced);
        // And a pre-propagation line (no such key) still parses.
        let old_json = serde_json::to_string(&plain).unwrap();
        let old: FaultRecord = serde_json::from_str(&old_json).unwrap();
        assert_eq!(old.propagation, None);
    }
}
