//! Campaign liveness: an observer hook and a rate-limited stderr progress
//! line.
//!
//! Long campaigns previously ran silent until the final table. The engine
//! now reports every classification through [`CampaignObserver`];
//! [`ProgressLine`] is the standard observer, rendering a
//! carriage-return-overwritten status line (done/total, per-class tallies,
//! throughput, ETA) on stderr — but only when stderr is a terminal, so
//! redirected logs and CI output stay clean.

use crate::campaign::{ClassCounts, FaultClass};
use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Receives every per-fault classification a campaign engine makes, as it
/// is made (from whichever worker thread made it — implementations must be
/// thread-safe).
pub trait CampaignObserver: Sync {
    /// One fault was classified.
    fn fault_classified(&self, class: FaultClass);
}

/// Minimum microseconds between two progress-line renders.
const RENDER_INTERVAL_US: u64 = 100_000;

/// A live progress line for one campaign, driven through
/// [`CampaignObserver`].
///
/// Rendering is rate-limited (at most ten updates per second, claimed via
/// a compare-exchange so concurrent workers never double-render) and
/// TTY-gated: when stderr is not a terminal the observer still tallies but
/// never writes. Call [`ProgressLine::finish`] to clear the line before
/// printing final results.
pub struct ProgressLine {
    label: String,
    total: u64,
    start: Instant,
    done: AtomicU64,
    tallies: [AtomicU64; 5],
    /// Microseconds-since-start of the last render, used as the
    /// rate-limiter's claim word.
    last_render_us: AtomicU64,
    active: bool,
}

impl ProgressLine {
    /// A progress line labelled `label` (typically the structure name) for
    /// `total` expected faults, active only when stderr is a terminal.
    pub fn new(label: &str, total: u64) -> ProgressLine {
        ProgressLine::with_activity(label, total, std::io::stderr().is_terminal())
    }

    /// As [`ProgressLine::new`] with the TTY test overridden — for tests
    /// and for harnesses that know better.
    pub fn with_activity(label: &str, total: u64, active: bool) -> ProgressLine {
        ProgressLine {
            label: label.to_string(),
            total,
            start: Instant::now(),
            done: AtomicU64::new(0),
            tallies: std::array::from_fn(|_| AtomicU64::new(0)),
            last_render_us: AtomicU64::new(0),
            active,
        }
    }

    /// Faults classified so far and their per-class tallies.
    pub fn snapshot(&self) -> (u64, ClassCounts) {
        let tally = |c: FaultClass| self.tallies[c as usize].load(Ordering::Relaxed);
        (
            self.done.load(Ordering::Relaxed),
            ClassCounts {
                masked: tally(FaultClass::Masked),
                sdc: tally(FaultClass::Sdc),
                crash: tally(FaultClass::Crash),
                timeout: tally(FaultClass::Timeout),
                assert_: tally(FaultClass::Assert),
            },
        )
    }

    /// Clears the progress line (when active) so subsequent output starts
    /// on a clean row.
    pub fn finish(&self) {
        if !self.active {
            return;
        }
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{:width$}\r", "", width = self.line_width());
        let _ = err.flush();
    }

    /// Worst-case rendered width, for clearing.
    fn line_width(&self) -> usize {
        (self.label.len() + 80).max(100)
    }

    fn render(&self, done: u64) {
        let (_, counts) = self.snapshot();
        let (rate, eta) = rate_and_eta(done, self.total, self.start.elapsed().as_secs_f64());
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r{:width$}\r{}: {}/{} M:{} S:{} C:{} T:{} A:{} {rate} ETA {eta}",
            "",
            self.label,
            done,
            self.total,
            counts.masked,
            counts.sdc,
            counts.crash,
            counts.timeout,
            counts.assert_,
            width = self.line_width(),
        );
        let _ = err.flush();
    }
}

/// Elapsed seconds below which throughput and ETA are noise: inside the
/// first refresh window (elapsed ≈ 0 inflates `done / elapsed` absurdly),
/// and in all-pruned campaigns where every fault classifies in
/// microseconds.
const MIN_RATE_WINDOW_S: f64 = 0.2;

/// The throughput and ETA cells of the progress line. Until at least one
/// fault has landed *and* [`MIN_RATE_WINDOW_S`] has elapsed, both render
/// as placeholders (`--/s`, `--:--`) instead of the garbage the raw
/// division produces; afterwards the ETA is `mm:ss` of remaining work at
/// the observed rate (`0:00` once done).
fn rate_and_eta(done: u64, total: u64, elapsed_s: f64) -> (String, String) {
    if done == 0 || elapsed_s < MIN_RATE_WINDOW_S {
        return ("--/s".to_string(), "--:--".to_string());
    }
    let rate = done as f64 / elapsed_s;
    let eta_s = if done < total {
        ((total - done) as f64 / rate).ceil() as u64
    } else {
        0
    };
    (
        format!("{rate:.1}/s"),
        format!("{}:{:02}", eta_s / 60, eta_s % 60),
    )
}

impl CampaignObserver for ProgressLine {
    fn fault_classified(&self, class: FaultClass) {
        self.tallies[class as usize].fetch_add(1, Ordering::Relaxed);
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.active {
            return;
        }
        let now_us = self.start.elapsed().as_micros() as u64;
        let last = self.last_render_us.load(Ordering::Relaxed);
        let due = now_us.saturating_sub(last) >= RENDER_INTERVAL_US || done == self.total;
        if !due {
            return;
        }
        // One worker claims this render; the rest skip it.
        if self
            .last_render_us
            .compare_exchange(last, now_us, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.render(done);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_track_classifications_without_a_tty() {
        let p = ProgressLine::with_activity("regfile", 5, false);
        p.fault_classified(FaultClass::Masked);
        p.fault_classified(FaultClass::Masked);
        p.fault_classified(FaultClass::Sdc);
        p.fault_classified(FaultClass::Crash);
        let (done, counts) = p.snapshot();
        assert_eq!(done, 4);
        assert_eq!(counts.masked, 2);
        assert_eq!(counts.sdc, 1);
        assert_eq!(counts.crash, 1);
        assert_eq!(counts.total(), 4);
        p.finish(); // must be a no-op, not a panic
    }

    #[test]
    fn rate_and_eta_guard_the_degenerate_windows() {
        // First refresh window: elapsed ≈ 0 must not print a huge rate.
        assert_eq!(
            rate_and_eta(10, 100, 0.0),
            ("--/s".to_string(), "--:--".to_string())
        );
        assert_eq!(
            rate_and_eta(10, 100, 0.1),
            ("--/s".to_string(), "--:--".to_string())
        );
        // All-pruned campaign: everything classified before any time
        // passed — still placeholders, not NaN/inf or a 1e9 rate.
        assert_eq!(
            rate_and_eta(100, 100, 1e-9),
            ("--/s".to_string(), "--:--".to_string())
        );
        // Nothing done yet after a long wait: no rate, no ETA.
        assert_eq!(
            rate_and_eta(0, 100, 5.0),
            ("--/s".to_string(), "--:--".to_string())
        );
        // Meaningful window: 50 done in 10 s → 5.0/s, 50 left → 10 s.
        assert_eq!(
            rate_and_eta(50, 100, 10.0),
            ("5.0/s".to_string(), "0:10".to_string())
        );
        // ETA rolls into minutes and zero-pads seconds.
        assert_eq!(rate_and_eta(10, 700, 10.0).1, "11:30");
        // Finished: rate stays, ETA pins to zero.
        assert_eq!(
            rate_and_eta(100, 100, 10.0),
            ("10.0/s".to_string(), "0:00".to_string())
        );
    }

    #[test]
    fn concurrent_observers_lose_no_counts() {
        let p = ProgressLine::with_activity("rob", 400, false);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        p.fault_classified(FaultClass::Timeout);
                    }
                });
            }
        });
        let (done, counts) = p.snapshot();
        assert_eq!(done, 400);
        assert_eq!(counts.timeout, 400);
    }
}
