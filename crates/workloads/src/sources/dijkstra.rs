//! MiBench `dijkstra` equivalent: O(V²) single-source shortest paths over a
//! dense random graph, repeated from several sources.

use crate::{Scale, LCG_SNIPPET};

/// (vertex count, source count) per scale.
pub fn params(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Tiny => (12, 2),
        Scale::Small => (24, 4),
        Scale::Full => (48, 8),
    }
}

/// Returns the MiniC source.
pub fn source(scale: Scale) -> String {
    let (v, s) = params(scale);
    let vv = v * v;
    format!(
        r#"
// dijkstra: shortest paths over a dense {v}-vertex random graph, {s} sources.
int graph[{vv}];
int dist[{v}];
int visited[{v}];
{LCG_SNIPPET}

void init_graph() {{
    for (int i = 0; i < {v}; i = i + 1) {{
        for (int j = 0; j < {v}; j = j + 1) {{
            if (i == j) graph[i * {v} + j] = 0;
            else graph[i * {v} + j] = rnd() % 97 + 1;
        }}
    }}
}}

int dijkstra(int src) {{
    for (int i = 0; i < {v}; i = i + 1) {{
        dist[i] = 1000000;
        visited[i] = 0;
    }}
    dist[src] = 0;
    for (int round = 0; round < {v}; round = round + 1) {{
        int u = -1;
        int best = 1000001;
        for (int i = 0; i < {v}; i = i + 1) {{
            if (!visited[i] && dist[i] < best) {{
                best = dist[i];
                u = i;
            }}
        }}
        if (u < 0) break;
        visited[u] = 1;
        for (int w = 0; w < {v}; w = w + 1) {{
            int nd = dist[u] + graph[u * {v} + w];
            if (nd < dist[w]) dist[w] = nd;
        }}
    }}
    int total = 0;
    for (int i = 0; i < {v}; i = i + 1) total = total + dist[i];
    return total;
}}

void main() {{
    seed = 7;
    init_graph();
    int sum = 0;
    for (int src = 0; src < {s}; src = src + 1) {{
        sum = sum + dijkstra(src * ({v} / {s}));
    }}
    out(sum);
}}
"#
    )
}
