//! MiniC source generators, one module per benchmark.

pub mod blowfish;
pub mod dijkstra;
pub mod fft;
pub mod gsm;
pub mod patricia;
pub mod qsort;
pub mod rijndael;
pub mod sha;
