//! MiBench `blowfish` equivalent: a 16-round Blowfish-structure Feistel
//! cipher (standard F function over four 256-entry S-boxes and an 18-entry
//! P-array). The boxes are deterministic pseudo-random values rather than
//! the hexadecimal digits of π; the memory-access and dataflow structure —
//! what the vulnerability study measures — is identical. Every block is
//! encrypted, checksummed, decrypted, and verified against the plaintext.

use crate::{Scale, LCG_SNIPPET};

/// Number of 8-byte blocks per scale.
pub fn blocks(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 4,
        Scale::Small => 16,
        Scale::Full => 96,
    }
}

/// Deterministic box generator (splitmix32-style).
fn gen(state: &mut u32) -> u32 {
    *state = state.wrapping_add(0x9E37_79B9);
    let mut z = *state;
    z = (z ^ (z >> 16)).wrapping_mul(0x85EB_CA6B);
    z = (z ^ (z >> 13)).wrapping_mul(0xC2B2_AE35);
    z ^ (z >> 16)
}

/// The exact P-array and S-boxes baked into the workload (exposed so
/// host-side reference implementations can reproduce the cipher).
pub fn boxes() -> ([u32; 18], Vec<[u32; 256]>) {
    let mut state = 0xB10F_1511u32;
    let mut p = [0u32; 18];
    for v in &mut p {
        *v = gen(&mut state);
    }
    let mut sboxes = Vec::with_capacity(4);
    for _ in 0..4 {
        let mut s = [0u32; 256];
        for v in s.iter_mut() {
            *v = gen(&mut state);
        }
        sboxes.push(s);
    }
    (p, sboxes)
}

fn fmt_values(v: &[u32]) -> String {
    v.iter()
        .map(|x| format!("0x{x:08X}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Returns the MiniC source.
pub fn source(scale: Scale) -> String {
    let nblocks = blocks(scale);
    let (pbox, sboxes) = boxes();
    let p = fmt_values(&pbox);
    let s0 = fmt_values(&sboxes[0]);
    let s1 = fmt_values(&sboxes[1]);
    let s2 = fmt_values(&sboxes[2]);
    let s3 = fmt_values(&sboxes[3]);
    format!(
        r#"
// blowfish: 16-round Feistel over {nblocks} blocks, encrypt + verify decrypt.
u32 P[18] = {{{p}}};
u32 S0[256] = {{{s0}}};
u32 S1[256] = {{{s1}}};
u32 S2[256] = {{{s2}}};
u32 S3[256] = {{{s3}}};
{LCG_SNIPPET}

u32 feistel(u32 x) {{
    u32 r = S0[(x >> 24) & 255] + S1[(x >> 16) & 255];
    r = r ^ S2[(x >> 8) & 255];
    return r + S3[x & 255];
}}

void encrypt(u32 *xl, u32 *xr) {{
    u32 l = *xl;
    u32 r = *xr;
    for (int i = 0; i < 16; i = i + 1) {{
        l = l ^ P[i];
        r = r ^ feistel(l);
        u32 t = l;
        l = r;
        r = t;
    }}
    u32 t = l;
    l = r;
    r = t;
    r = r ^ P[16];
    l = l ^ P[17];
    *xl = l;
    *xr = r;
}}

void decrypt(u32 *xl, u32 *xr) {{
    u32 l = *xl;
    u32 r = *xr;
    for (int i = 17; i > 1; i = i - 1) {{
        l = l ^ P[i];
        r = r ^ feistel(l);
        u32 t = l;
        l = r;
        r = t;
    }}
    u32 t = l;
    l = r;
    r = t;
    r = r ^ P[1];
    l = l ^ P[0];
    *xl = l;
    *xr = r;
}}

void main() {{
    seed = 2024;
    u32 cks = 0;
    int ok = 0;
    for (int blk = 0; blk < {nblocks}; blk = blk + 1) {{
        u32 pl = (rnd() << 17) | (rnd() << 2) | (rnd() & 3);
        u32 pr = (rnd() << 17) | (rnd() << 2) | (rnd() & 3);
        u32 l = pl;
        u32 r = pr;
        encrypt(&l, &r);
        cks = cks ^ (l + ((r << 7) | (r >> 25)));
        decrypt(&l, &r);
        if (l == pl && r == pr) ok = ok + 1;
    }}
    out(ok);
    out(cks);
}}
"#
    )
}
