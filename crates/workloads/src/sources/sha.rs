//! MiBench `sha` equivalent: genuine SHA-1 (with padding) over a
//! deterministic pseudo-random message; the five hash words are the
//! program output. The host-side reference implementation in the test
//! suite validates the digest bit-for-bit.

use crate::{Scale, LCG_SNIPPET};

/// Number of 64-byte message blocks per scale (padding adds one more).
pub fn blocks(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 2,
        Scale::Small => 8,
        Scale::Full => 48,
    }
}

/// Returns the MiniC source.
pub fn source(scale: Scale) -> String {
    let b = blocks(scale);
    let words = b * 16;
    let bitlen = (b * 64 * 8) as u64;
    format!(
        r#"
// sha: SHA-1 of a {b}-block ({words}-word) pseudo-random message.
u32 msg[{words}];
u32 h[5];
u32 w[80];
{LCG_SNIPPET}

u32 rotl(u32 x, int n) {{
    return (x << n) | (x >> (32 - n));
}}

void process(int base, int pad) {{
    for (int t = 0; t < 16; t = t + 1) {{
        if (pad) {{
            if (t == 0) w[t] = 0x80000000;
            else if (t == 15) w[t] = {bitlen};
            else w[t] = 0;
        }} else {{
            w[t] = msg[base + t];
        }}
    }}
    for (int t = 16; t < 80; t = t + 1) {{
        w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    }}
    u32 a = h[0];
    u32 b = h[1];
    u32 c = h[2];
    u32 d = h[3];
    u32 e = h[4];
    for (int t = 0; t < 80; t = t + 1) {{
        u32 f;
        u32 k;
        if (t < 20) {{
            f = (b & c) | ((~b) & d);
            k = 0x5A827999;
        }} else if (t < 40) {{
            f = b ^ c ^ d;
            k = 0x6ED9EBA1;
        }} else if (t < 60) {{
            f = (b & c) | (b & d) | (c & d);
            k = 0x8F1BBCDC;
        }} else {{
            f = b ^ c ^ d;
            k = 0xCA62C1D6;
        }}
        u32 tmp = rotl(a, 5) + f + e + k + w[t];
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = tmp;
    }}
    h[0] = h[0] + a;
    h[1] = h[1] + b;
    h[2] = h[2] + c;
    h[3] = h[3] + d;
    h[4] = h[4] + e;
}}

void main() {{
    seed = 99;
    for (int i = 0; i < {words}; i = i + 1) {{
        msg[i] = (rnd() << 17) | (rnd() << 2) | (rnd() & 3);
    }}
    h[0] = 0x67452301;
    h[1] = 0xEFCDAB89;
    h[2] = 0x98BADCFE;
    h[3] = 0x10325476;
    h[4] = 0xC3D2E1F0;
    for (int blk = 0; blk < {b}; blk = blk + 1) {{
        process(blk * 16, 0);
    }}
    process(0, 1);
    out(h[0]);
    out(h[1]);
    out(h[2]);
    out(h[3]);
    out(h[4]);
}}
"#
    )
}
