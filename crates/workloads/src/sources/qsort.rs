//! MiBench `qsort` equivalent: recursive quicksort of pseudo-random
//! integers, followed by a sortedness check and a position-weighted
//! checksum.

use crate::{Scale, LCG_SNIPPET};

/// Array length per scale.
pub fn n(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 48,
        Scale::Small => 160,
        Scale::Full => 700,
    }
}

/// Returns the MiniC source.
pub fn source(scale: Scale) -> String {
    let n = n(scale);
    format!(
        r#"
// qsort: recursive quicksort over {n} pseudo-random integers.
int a[{n}];
{LCG_SNIPPET}

void quicksort(int lo, int hi) {{
    if (lo >= hi) return;
    int p = a[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {{
        while (a[i] < p) i = i + 1;
        while (a[j] > p) j = j - 1;
        if (i <= j) {{
            int t = a[i];
            a[i] = a[j];
            a[j] = t;
            i = i + 1;
            j = j - 1;
        }}
    }}
    quicksort(lo, j);
    quicksort(i, hi);
}}

void main() {{
    seed = 42;
    for (int k = 0; k < {n}; k = k + 1) a[k] = rnd();
    quicksort(0, {n} - 1);
    int ok = 1;
    int sum = 0;
    for (int k = 0; k < {n}; k = k + 1) {{
        if (k > 0 && a[k - 1] > a[k]) ok = 0;
        sum = sum + a[k] * (k + 1);
    }}
    out(ok);
    out(sum);
}}
"#
    )
}
