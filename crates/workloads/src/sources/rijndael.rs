//! MiBench `rijndael` equivalent: genuine AES-128 ECB encryption — real
//! S-box (generated from GF(2⁸) inversion plus the affine transform), full
//! key expansion, and all ten rounds. The host-side reference in the test
//! suite validates ciphertexts bit-for-bit.

use crate::{Scale, LCG_SNIPPET};

/// Number of 16-byte blocks per scale.
pub fn blocks(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 3,
        Scale::Small => 10,
        Scale::Full => 64,
    }
}

fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1B } else { 0 })
}

/// The AES S-box, computed (not transcribed).
pub fn aes_sbox() -> [u8; 256] {
    let mut alog = [0u8; 256];
    let mut log = [0u8; 256];
    let mut p: u8 = 1;
    #[allow(clippy::needless_range_loop)] // i indexes alog and feeds log[p]
    for i in 0..255 {
        alog[i] = p;
        log[p as usize] = i as u8;
        p ^= xtime(p); // multiply by the generator 0x03
    }
    let mut sbox = [0u8; 256];
    for i in 0..256usize {
        let inv = if i == 0 {
            0
        } else {
            alog[(255 - log[i] as usize) % 255]
        };
        let mut x = inv;
        let mut y = inv;
        for _ in 0..4 {
            y = y.rotate_left(1);
            x ^= y;
        }
        sbox[i] = x ^ 0x63;
    }
    sbox
}

/// Returns the MiniC source.
pub fn source(scale: Scale) -> String {
    let nblocks = blocks(scale);
    let sbox = aes_sbox()
        .iter()
        .map(|b| format!("0x{b:02X}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        r#"
// rijndael: AES-128 ECB over {nblocks} blocks (computed S-box, 10 rounds).
int sbox[256] = {{{sbox}}};
int rcon[11] = {{0, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36}};
int rk[176];
int st[16];
{LCG_SNIPPET}

int xtime(int b) {{
    int r = b << 1;
    if (b & 0x80) r = r ^ 0x1B;
    return r & 0xFF;
}}

void key_expand() {{
    for (int i = 16; i < 176; i = i + 4) {{
        int t0 = rk[i - 4];
        int t1 = rk[i - 3];
        int t2 = rk[i - 2];
        int t3 = rk[i - 1];
        if (i % 16 == 0) {{
            int tmp = t0;
            t0 = sbox[t1] ^ rcon[i / 16];
            t1 = sbox[t2];
            t2 = sbox[t3];
            t3 = sbox[tmp];
        }}
        rk[i] = rk[i - 16] ^ t0;
        rk[i + 1] = rk[i - 15] ^ t1;
        rk[i + 2] = rk[i - 14] ^ t2;
        rk[i + 3] = rk[i - 13] ^ t3;
    }}
}}

void add_round_key(int round) {{
    for (int i = 0; i < 16; i = i + 1) {{
        st[i] = st[i] ^ rk[round * 16 + i];
    }}
}}

void sub_bytes() {{
    for (int i = 0; i < 16; i = i + 1) st[i] = sbox[st[i]];
}}

// State is column-major: st[row + 4*col]; row r rotates left by r.
void shift_rows() {{
    int t = st[1];
    st[1] = st[5]; st[5] = st[9]; st[9] = st[13]; st[13] = t;
    t = st[2]; st[2] = st[10]; st[10] = t;
    t = st[6]; st[6] = st[14]; st[14] = t;
    t = st[3];
    st[3] = st[15]; st[15] = st[11]; st[11] = st[7]; st[7] = t;
}}

void mix_columns() {{
    for (int c = 0; c < 4; c = c + 1) {{
        int a0 = st[4 * c];
        int a1 = st[4 * c + 1];
        int a2 = st[4 * c + 2];
        int a3 = st[4 * c + 3];
        st[4 * c]     = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
        st[4 * c + 1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
        st[4 * c + 2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
        st[4 * c + 3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
    }}
}}

void encrypt_block() {{
    add_round_key(0);
    for (int round = 1; round < 10; round = round + 1) {{
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(round);
    }}
    sub_bytes();
    shift_rows();
    add_round_key(10);
}}

void main() {{
    seed = 5150;
    for (int i = 0; i < 16; i = i + 1) rk[i] = rnd() & 0xFF;
    key_expand();
    u32 cks = 0;
    for (int blk = 0; blk < {nblocks}; blk = blk + 1) {{
        for (int i = 0; i < 16; i = i + 1) st[i] = rnd() & 0xFF;
        encrypt_block();
        for (int i = 0; i < 16; i = i + 1) {{
            cks = (cks * 31) + st[i];
        }}
    }}
    out(cks);
}}
"#
    )
}
