//! MiBench `patricia` equivalent: a bitwise routing trie over 16-bit keys
//! with array-based nodes — insertions, successful lookups, and guaranteed
//! misses, finishing with a structural checksum. Pointer-chasing dominated,
//! like the original routing-table benchmark.

use crate::{Scale, LCG_SNIPPET};

/// Number of inserted keys per scale.
pub fn keys(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 24,
        Scale::Small => 90,
        Scale::Full => 400,
    }
}

/// Returns the MiniC source.
pub fn source(scale: Scale) -> String {
    let k = keys(scale);
    let maxn = k * 16 + 2;
    format!(
        r#"
// patricia: bit-trie over {k} 16-bit keys ({maxn} node slots).
int left[{maxn}];
int right[{maxn}];
int value[{maxn}];
int nnodes;
{LCG_SNIPPET}

int insert(int key) {{
    int node = 0;
    for (int b = 15; b >= 0; b = b - 1) {{
        int bit = (key >> b) & 1;
        int next;
        if (bit) next = right[node];
        else next = left[node];
        if (next == 0) {{
            next = nnodes;
            nnodes = nnodes + 1;
            left[next] = 0;
            right[next] = 0;
            value[next] = 0;
            if (bit) right[node] = next;
            else left[node] = next;
        }}
        node = next;
    }}
    value[node] = value[node] + 1;
    return node;
}}

int lookup(int key) {{
    int node = 0;
    for (int b = 15; b >= 0; b = b - 1) {{
        int bit = (key >> b) & 1;
        if (bit) node = right[node];
        else node = left[node];
        if (node == 0) return -1;
    }}
    return value[node];
}}

void main() {{
    nnodes = 1;
    seed = 31337;
    // Insert phase: keys have bit 15 clear.
    for (int i = 0; i < {k}; i = i + 1) {{
        insert(rnd() & 0x7FFF);
    }}
    // Lookup phase: regenerate the same keys (hits), then probe keys with
    // bit 15 set (guaranteed misses).
    seed = 31337;
    int hits = 0;
    int found = 0;
    for (int i = 0; i < {k}; i = i + 1) {{
        int v = lookup(rnd() & 0x7FFF);
        if (v > 0) {{
            hits = hits + 1;
            found = found + v;
        }}
    }}
    int misses = 0;
    for (int i = 0; i < {k}; i = i + 1) {{
        if (lookup(0x8000 | (rnd() & 0x7FFF)) < 0) misses = misses + 1;
    }}
    int cks = 0;
    for (int i = 0; i < nnodes; i = i + 1) {{
        cks = cks + left[i] * 3 + right[i] * 5 + value[i] * 7;
    }}
    out(hits);
    out(found);
    out(misses);
    out(nnodes);
    out(cks);
}}
"#
    )
}
