//! MiBench `gsm` equivalent: the LPC front end of a GSM 06.10-style codec —
//! per-frame autocorrelation followed by a fixed-point Levinson-Durbin
//! recursion producing eight reflection/predictor coefficients. Dominated
//! by multiply-accumulate loops with data-dependent divisions, like the
//! original `toast` encoder.

use crate::{Scale, LCG_SNIPPET};

/// Number of 160-sample frames per scale.
pub fn frames(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 2,
        Scale::Small => 8,
        Scale::Full => 40,
    }
}

/// Returns the MiniC source.
pub fn source(scale: Scale) -> String {
    let f = frames(scale);
    format!(
        r#"
// gsm: LPC analysis (autocorrelation + Levinson-Durbin) over {f} frames.
int pcm[160];
int acf[9];
int lpc[9];
int prev[9];
{LCG_SNIPPET}

void autocorrelate() {{
    for (int k = 0; k <= 8; k = k + 1) {{
        int sum = 0;
        for (int i = k; i < 160; i = i + 1) {{
            sum = sum + pcm[i] * pcm[i - k];
        }}
        acf[k] = sum;
    }}
    // Normalize so Q12 fixed-point products below stay inside 32 bits.
    while (acf[0] >= 16384) {{
        for (int k = 0; k <= 8; k = k + 1) acf[k] = acf[k] >> 1;
    }}
}}

// Fixed-point Levinson-Durbin; returns a checksum of the reflection
// coefficients (Q12).
int levinson() {{
    int err = acf[0];
    if (err == 0) return 0;
    int cks = 0;
    for (int i = 0; i <= 8; i = i + 1) lpc[i] = 0;
    for (int n = 1; n <= 8; n = n + 1) {{
        int acc = acf[n] << 12;
        for (int j = 1; j < n; j = j + 1) {{
            acc = acc - lpc[j] * acf[n - j];
        }}
        int k = acc / err;
        if (k > 4095) k = 4095;
        if (k < -4095) k = -4095;
        for (int j = 0; j <= 8; j = j + 1) prev[j] = lpc[j];
        for (int j = 1; j < n; j = j + 1) {{
            lpc[j] = prev[j] - ((k * prev[n - j]) >> 12);
        }}
        lpc[n] = k;
        err = err - ((((k * k) >> 12) * err) >> 12);
        if (err < 1) err = 1;
        cks = cks + k * n;
    }}
    return cks;
}}

void main() {{
    seed = 777;
    int total = 0;
    for (int frame = 0; frame < {f}; frame = frame + 1) {{
        for (int i = 0; i < 160; i = i + 1) {{
            pcm[i] = rnd() % 512 - 256;
        }}
        autocorrelate();
        total = total + levinson();
    }}
    out(total);
}}
"#
    )
}
