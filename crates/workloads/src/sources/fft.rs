//! MiBench `fft` equivalent: iterative radix-2 fixed-point FFT (Q12
//! twiddles, per-stage scaling to keep every intermediate inside 32 bits so
//! the kernel is profile-independent).

use crate::{Scale, LCG_SNIPPET};

/// (FFT size, repetitions) per scale.
pub fn params(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Tiny => (32, 1),
        Scale::Small => (64, 3),
        Scale::Full => (128, 8),
    }
}

fn twiddle_tables(n: usize) -> (String, String) {
    let mut cos = Vec::with_capacity(n / 2);
    let mut sin = Vec::with_capacity(n / 2);
    for k in 0..n / 2 {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
        cos.push(((ang.cos() * 4096.0).round()) as i64);
        sin.push(((ang.sin() * 4096.0).round()) as i64);
    }
    let fmt = |v: &[i64]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    (fmt(&cos), fmt(&sin))
}

/// Returns the MiniC source.
pub fn source(scale: Scale) -> String {
    let (n, reps) = params(scale);
    let (costab, sintab) = twiddle_tables(n);
    let half = n / 2;
    format!(
        r#"
// fft: {reps} fixed-point radix-2 FFTs of size {n} (Q12 twiddles).
int re[{n}];
int im[{n}];
int costab[{half}] = {{{costab}}};
int sintab[{half}] = {{{sintab}}};
{LCG_SNIPPET}

void bit_reverse() {{
    int j = 0;
    for (int i = 1; i < {n} - 1; i = i + 1) {{
        int bit = {n} >> 1;
        while (j & bit) {{
            j = j ^ bit;
            bit = bit >> 1;
        }}
        j = j | bit;
        if (i < j) {{
            int t = re[i]; re[i] = re[j]; re[j] = t;
            t = im[i]; im[i] = im[j]; im[j] = t;
        }}
    }}
}}

void fft() {{
    bit_reverse();
    for (int len = 2; len <= {n}; len = len << 1) {{
        int step = {n} / len;
        int halflen = len / 2;
        for (int base = 0; base < {n}; base = base + len) {{
            for (int k = 0; k < halflen; k = k + 1) {{
                int c = costab[k * step];
                int s = sintab[k * step];
                int p = base + k;
                int q = base + k + halflen;
                int tr = (re[q] * c - im[q] * s) >> 12;
                int ti = (re[q] * s + im[q] * c) >> 12;
                // Per-stage scaling keeps magnitudes bounded.
                re[q] = (re[p] - tr) >> 1;
                im[q] = (im[p] - ti) >> 1;
                re[p] = (re[p] + tr) >> 1;
                im[p] = (im[p] + ti) >> 1;
            }}
        }}
    }}
}}

void main() {{
    seed = 1234;
    int cks = 0;
    for (int rep = 0; rep < {reps}; rep = rep + 1) {{
        for (int i = 0; i < {n}; i = i + 1) {{
            re[i] = rnd() % 4096 - 2048;
            im[i] = 0;
        }}
        fft();
        for (int i = 0; i < {n}; i = i + 1) {{
            cks = cks + re[i] * (i + 1) + im[i] * (i + 3);
        }}
    }}
    out(cks);
}}
"#
    )
}
