//! # softerr-workloads
//!
//! The benchmark suite of the study: eight MiniC kernels mirroring the
//! MiBench programs used by the paper (`qsort`, `dijkstra`, `fft`, `sha`,
//! `blowfish`, `gsm`, `patricia`, `rijndael`). Every workload
//!
//! * generates its own input deterministically (an in-guest LCG — no file
//!   I/O exists on the bare-metal target),
//! * is *self-checking*: it emits validity flags and checksums through the
//!   `out` instruction, so silent data corruptions are observable as output
//!   differences against the fault-free golden run,
//! * comes in three input scales, standing in for MiBench's small/large
//!   datasets (scaled down so campaigns fit a single-machine budget).
//!
//! ```
//! use softerr_workloads::{Scale, Workload};
//! use softerr_cc::{Compiler, OptLevel};
//! use softerr_isa::{Emulator, Profile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = Workload::Qsort.source(Scale::Tiny);
//! let compiled = Compiler::new(Profile::A64, OptLevel::O2).compile(&src)?;
//! let out = Emulator::new(&compiled.program).run(10_000_000)?;
//! assert_eq!(out.output[0], 1, "qsort reports a sorted array");
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

mod sources;

pub use sources::blowfish::boxes as blowfish_boxes;
pub use sources::rijndael::aes_sbox;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Input scale, standing in for MiBench's dataset sizes.
///
/// `Tiny` is for unit tests, `Small` for single-machine injection
/// campaigns, `Full` for longer paper-style runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Smallest inputs (unit tests, smoke campaigns).
    Tiny,
    /// Default campaign scale.
    Small,
    /// Largest inputs (closest to the paper's *large* datasets).
    Full,
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scale::Tiny => write!(f, "tiny"),
            Scale::Small => write!(f, "small"),
            Scale::Full => write!(f, "full"),
        }
    }
}

/// One of the eight benchmark kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Recursive quicksort over pseudo-random integers (MiBench `qsort`).
    Qsort,
    /// Shortest paths from several sources, O(V²) Dijkstra (MiBench `dijkstra`).
    Dijkstra,
    /// Fixed-point radix-2 FFT with per-stage scaling (MiBench `fft`).
    Fft,
    /// Real SHA-1 with padding over a deterministic message (MiBench `sha`).
    Sha,
    /// Blowfish-style 16-round Feistel cipher, encrypt + verify decrypt
    /// (MiBench `blowfish`; S-boxes are deterministic pseudo-random rather
    /// than π digits — structurally identical).
    Blowfish,
    /// GSM-style LPC front end: autocorrelation + Schur reflection
    /// coefficients in fixed point (MiBench `gsm`).
    Gsm,
    /// Bitwise trie insert/lookup over routing-style keys (MiBench
    /// `patricia`).
    Patricia,
    /// Full AES-128 ECB encryption with key expansion (MiBench `rijndael`).
    Rijndael,
}

impl Workload {
    /// All workloads, in the paper's presentation order.
    pub const ALL: [Workload; 8] = [
        Workload::Qsort,
        Workload::Dijkstra,
        Workload::Fft,
        Workload::Sha,
        Workload::Blowfish,
        Workload::Gsm,
        Workload::Patricia,
        Workload::Rijndael,
    ];

    /// Short name (matches the paper's benchmark labels).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Qsort => "qsort",
            Workload::Dijkstra => "dijkstra",
            Workload::Fft => "fft",
            Workload::Sha => "sha",
            Workload::Blowfish => "blowfish",
            Workload::Gsm => "gsm",
            Workload::Patricia => "patricia",
            Workload::Rijndael => "rijndael",
        }
    }

    /// Parses a workload from its short name.
    pub fn from_name(name: &str) -> Option<Workload> {
        Workload::ALL.iter().copied().find(|w| w.name() == name)
    }

    /// One-line description of the kernel and its computational character.
    pub fn description(self) -> &'static str {
        match self {
            Workload::Qsort => "recursive quicksort; branch-heavy, data-dependent control flow",
            Workload::Dijkstra => "O(V^2) shortest paths; memory-scan dominated",
            Workload::Fft => "fixed-point radix-2 FFT; multiply-heavy with table lookups",
            Workload::Sha => "SHA-1; long dependence chains of rotates and adds",
            Workload::Blowfish => "16-round Feistel cipher; S-box lookups",
            Workload::Gsm => "LPC autocorrelation + Schur recursion; MAC loops with divisions",
            Workload::Patricia => "bitwise trie insert/lookup; pointer chasing",
            Workload::Rijndael => "AES-128; byte-level tables and xtime GF arithmetic",
        }
    }

    /// Returns the MiniC source for this workload at the given scale.
    pub fn source(self, scale: Scale) -> String {
        match self {
            Workload::Qsort => sources::qsort::source(scale),
            Workload::Dijkstra => sources::dijkstra::source(scale),
            Workload::Fft => sources::fft::source(scale),
            Workload::Sha => sources::sha::source(scale),
            Workload::Blowfish => sources::blowfish::source(scale),
            Workload::Gsm => sources::gsm::source(scale),
            Workload::Patricia => sources::patricia::source(scale),
            Workload::Rijndael => sources::rijndael::source(scale),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The guest-side LCG shared by all workloads (documented here so host-side
/// reference implementations can reproduce the inputs).
///
/// `seed = seed * 1103515245 + 12345` over `u32`; each draw returns
/// `(seed >> 16) & 0x7FFF`.
pub fn lcg_next(seed: &mut u32) -> u32 {
    *seed = seed.wrapping_mul(1_103_515_245).wrapping_add(12_345);
    (*seed >> 16) & 0x7FFF
}

/// MiniC snippet implementing the shared LCG as `rnd()` with a `u32 seed`
/// global (kept in one place so every workload uses identical input
/// generation).
pub(crate) const LCG_SNIPPET: &str = "
u32 seed;
int rnd() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 0x7FFF;
}
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for w in Workload::ALL {
            assert_eq!(Workload::from_name(w.name()), Some(w));
        }
        assert_eq!(Workload::from_name("nope"), None);
    }

    #[test]
    fn all_sources_nonempty_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for w in Workload::ALL {
            for s in [Scale::Tiny, Scale::Small, Scale::Full] {
                let src = w.source(s);
                assert!(src.contains("void main"), "{w}/{s} missing main");
                assert!(seen.insert(src), "{w}/{s} duplicates another source");
            }
        }
    }

    #[test]
    fn lcg_matches_documented_recurrence() {
        let mut s = 42u32;
        let a = lcg_next(&mut s);
        assert_eq!(s, 42u32.wrapping_mul(1_103_515_245).wrapping_add(12_345));
        assert_eq!(a, (s >> 16) & 0x7FFF);
    }
}
