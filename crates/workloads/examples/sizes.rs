//! Prints static and dynamic size of every workload at every level/scale.
use softerr_cc::{Compiler, OptLevel};
use softerr_isa::{Emulator, Profile};
use softerr_workloads::{Scale, Workload};

fn main() {
    for scale in [Scale::Tiny, Scale::Small] {
        println!("== scale {scale}");
        for w in Workload::ALL {
            print!("{:10}", w.name());
            for level in OptLevel::ALL {
                let c = Compiler::new(Profile::A64, level)
                    .compile(&w.source(scale))
                    .unwrap();
                let mut e = Emulator::new(&c.program);
                let out = e.run(2_000_000_000).unwrap();
                print!(
                    "  {level}: {:>6} w / {:>9} dyn",
                    c.stats.code_words, out.retired
                );
            }
            println!();
        }
    }
}
