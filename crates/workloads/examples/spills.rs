//! Prints spill counts per workload/level (regalloc pressure diagnostics).
use softerr_cc::{Compiler, OptLevel};
use softerr_isa::Profile;
use softerr_workloads::{Scale, Workload};

fn main() {
    for w in [
        Workload::Fft,
        Workload::Sha,
        Workload::Patricia,
        Workload::Dijkstra,
    ] {
        for level in [OptLevel::O2, OptLevel::O3] {
            let c = Compiler::new(Profile::A64, level)
                .compile(&w.source(Scale::Tiny))
                .unwrap();
            let spills: usize = c.stats.funcs.iter().map(|f| f.spills).sum();
            println!(
                "{:10} {level}: spills={spills} words={}",
                w.name(),
                c.stats.code_words
            );
        }
    }
}
