//! Workload validation:
//!
//! 1. **Differential**: every workload compiles at all four optimization
//!    levels on both profiles and produces identical output (the compiler
//!    optimizations are semantics-preserving on the real suite).
//! 2. **Reference**: host-side Rust implementations of the algorithms
//!    reproduce the guest outputs bit-for-bit (the workloads really compute
//!    SHA-1, AES-128, quicksort, Dijkstra, the Feistel cipher, …).

use softerr_cc::{Compiler, OptLevel};
use softerr_isa::{Emulator, Profile, Program};
use softerr_workloads::{aes_sbox, blowfish_boxes, lcg_next, Scale, Workload};

fn run(program: &Program) -> Vec<u64> {
    let mut emu = Emulator::new(program);
    let out = emu.run(500_000_000).expect("workload trapped");
    assert!(out.completed, "workload did not halt");
    out.output
}

fn compile_run(w: Workload, profile: Profile, level: OptLevel, scale: Scale) -> Vec<u64> {
    let src = w.source(scale);
    let compiled = Compiler::new(profile, level)
        .compile(&src)
        .unwrap_or_else(|e| panic!("{w} failed to compile at {level}: {e}"));
    run(&compiled.program)
}

#[test]
fn all_workloads_agree_across_levels_and_scales() {
    for w in Workload::ALL {
        for profile in [Profile::A32, Profile::A64] {
            let golden = compile_run(w, profile, OptLevel::O0, Scale::Tiny);
            assert!(!golden.is_empty(), "{w} produced no output");
            for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
                let out = compile_run(w, profile, level, Scale::Tiny);
                assert_eq!(out, golden, "{w} diverged at {profile}/{level}");
            }
        }
    }
}

#[test]
fn small_scale_agrees_on_a64_o0_vs_o3() {
    // One heavier spot check per workload (Tiny is covered exhaustively).
    for w in Workload::ALL {
        let o0 = compile_run(w, Profile::A64, OptLevel::O0, Scale::Small);
        let o3 = compile_run(w, Profile::A64, OptLevel::O3, Scale::Small);
        assert_eq!(o0, o3, "{w} diverged at Small scale");
    }
}

#[test]
fn qsort_sorts_and_checksums() {
    for scale in [Scale::Tiny, Scale::Small] {
        let out = compile_run(Workload::Qsort, Profile::A64, OptLevel::O2, scale);
        assert_eq!(out[0], 1, "array not sorted at {scale}");
        // Host reference: same LCG, same checksum.
        let n = match scale {
            Scale::Tiny => 48,
            Scale::Small => 160,
            Scale::Full => 700,
        };
        let mut seed = 42u32;
        let mut a: Vec<i64> = (0..n).map(|_| lcg_next(&mut seed) as i64).collect();
        a.sort_unstable();
        let sum: i64 = a.iter().enumerate().map(|(k, v)| v * (k as i64 + 1)).sum();
        assert_eq!(out[1], sum as u64, "checksum mismatch at {scale}");
    }
}

#[test]
fn sha_matches_reference_sha1() {
    let out = compile_run(Workload::Sha, Profile::A64, OptLevel::O2, Scale::Tiny);
    // Rebuild the message exactly as the guest does.
    let blocks = 2usize;
    let mut seed = 99u32;
    let words: Vec<u32> = (0..blocks * 16)
        .map(|_| {
            let a = lcg_next(&mut seed);
            let b = lcg_next(&mut seed);
            let c = lcg_next(&mut seed);
            (a << 17) | (b << 2) | (c & 3)
        })
        .collect();
    let mut msg = Vec::with_capacity(words.len() * 4);
    for w in &words {
        msg.extend_from_slice(&w.to_be_bytes());
    }
    let digest = reference_sha1(&msg);
    assert_eq!(out, digest.map(u64::from).to_vec(), "SHA-1 digest mismatch");
}

/// Plain reference SHA-1.
fn reference_sha1(msg: &[u8]) -> [u32; 5] {
    let mut data = msg.to_vec();
    let bitlen = (msg.len() as u64) * 8;
    data.push(0x80);
    while data.len() % 64 != 56 {
        data.push(0);
    }
    data.extend_from_slice(&bitlen.to_be_bytes());
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
    for block in data.chunks(64) {
        let mut w = [0u32; 80];
        for t in 0..16 {
            w[t] = u32::from_be_bytes(block[4 * t..4 * t + 4].try_into().unwrap());
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | (!b & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    h
}

#[test]
fn rijndael_matches_reference_aes() {
    let out = compile_run(Workload::Rijndael, Profile::A64, OptLevel::O2, Scale::Tiny);
    let nblocks = 3usize;
    let mut seed = 5150u32;
    let key: Vec<u8> = (0..16)
        .map(|_| (lcg_next(&mut seed) & 0xFF) as u8)
        .collect();
    let rk = aes_key_expand(key.as_slice().try_into().unwrap());
    let mut cks: u32 = 0;
    for _ in 0..nblocks {
        let mut st: [u8; 16] = std::array::from_fn(|_| (lcg_next(&mut seed) & 0xFF) as u8);
        aes_encrypt_block(&mut st, &rk);
        for b in st {
            cks = cks.wrapping_mul(31).wrapping_add(b as u32);
        }
    }
    assert_eq!(out, vec![cks as u64], "AES ciphertext checksum mismatch");
}

fn xtime(b: u8) -> u8 {
    (b << 1) ^ if b & 0x80 != 0 { 0x1B } else { 0 }
}

fn aes_key_expand(key: [u8; 16]) -> [u8; 176] {
    let sbox = aes_sbox();
    let rcon: [u8; 11] = [0, 1, 2, 4, 8, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36];
    let mut rk = [0u8; 176];
    rk[..16].copy_from_slice(&key);
    for i in (16..176).step_by(4) {
        let mut t = [rk[i - 4], rk[i - 3], rk[i - 2], rk[i - 1]];
        if i % 16 == 0 {
            t = [
                sbox[t[1] as usize] ^ rcon[i / 16],
                sbox[t[2] as usize],
                sbox[t[3] as usize],
                sbox[t[0] as usize],
            ];
        }
        for j in 0..4 {
            rk[i + j] = rk[i - 16 + j] ^ t[j];
        }
    }
    rk
}

fn aes_encrypt_block(st: &mut [u8; 16], rk: &[u8; 176]) {
    let sbox = aes_sbox();
    let add_rk = |st: &mut [u8; 16], round: usize| {
        for i in 0..16 {
            st[i] ^= rk[round * 16 + i];
        }
    };
    let sub_shift = |st: &mut [u8; 16]| {
        for b in st.iter_mut() {
            *b = sbox[*b as usize];
        }
        let t = st[1];
        st[1] = st[5];
        st[5] = st[9];
        st[9] = st[13];
        st[13] = t;
        st.swap(2, 10);
        st.swap(6, 14);
        let t = st[3];
        st[3] = st[15];
        st[15] = st[11];
        st[11] = st[7];
        st[7] = t;
    };
    add_rk(st, 0);
    for round in 1..10 {
        sub_shift(st);
        for c in 0..4 {
            let a: [u8; 4] = st[4 * c..4 * c + 4].try_into().unwrap();
            st[4 * c] = xtime(a[0]) ^ (xtime(a[1]) ^ a[1]) ^ a[2] ^ a[3];
            st[4 * c + 1] = a[0] ^ xtime(a[1]) ^ (xtime(a[2]) ^ a[2]) ^ a[3];
            st[4 * c + 2] = a[0] ^ a[1] ^ xtime(a[2]) ^ (xtime(a[3]) ^ a[3]);
            st[4 * c + 3] = (xtime(a[0]) ^ a[0]) ^ a[1] ^ a[2] ^ xtime(a[3]);
        }
        add_rk(st, round);
    }
    sub_shift(st);
    add_rk(st, 10);
}

#[test]
fn aes_sbox_is_the_real_one() {
    let sbox = aes_sbox();
    // Spot values from FIPS-197.
    assert_eq!(sbox[0x00], 0x63);
    assert_eq!(sbox[0x01], 0x7C);
    assert_eq!(sbox[0x53], 0xED);
    assert_eq!(sbox[0xFF], 0x16);
}

#[test]
fn blowfish_decrypt_verifies_and_matches_reference() {
    let out = compile_run(Workload::Blowfish, Profile::A64, OptLevel::O2, Scale::Tiny);
    let nblocks = 4u64;
    assert_eq!(out[0], nblocks, "all blocks must decrypt back to plaintext");

    let (p, s) = blowfish_boxes();
    let feistel = |x: u32| -> u32 {
        let r = s[0][(x >> 24) as usize].wrapping_add(s[1][((x >> 16) & 255) as usize]);
        (r ^ s[2][((x >> 8) & 255) as usize]).wrapping_add(s[3][(x & 255) as usize])
    };
    let encrypt = |mut l: u32, mut r: u32| -> (u32, u32) {
        for &pk in p.iter().take(16) {
            l ^= pk;
            r ^= feistel(l);
            std::mem::swap(&mut l, &mut r);
        }
        std::mem::swap(&mut l, &mut r);
        (l ^ p[17], r ^ p[16])
    };
    let mut seed = 2024u32;
    let mut word = || {
        let a = lcg_next(&mut seed);
        let b = lcg_next(&mut seed);
        let c = lcg_next(&mut seed);
        (a << 17) | (b << 2) | (c & 3)
    };
    let mut cks = 0u32;
    for _ in 0..nblocks {
        let pl = word();
        let pr = word();
        let (l, r) = encrypt(pl, pr);
        cks ^= l.wrapping_add(r.rotate_left(7));
    }
    assert_eq!(out[1], cks as u64, "ciphertext checksum mismatch");
}

#[test]
fn dijkstra_matches_reference() {
    let out = compile_run(Workload::Dijkstra, Profile::A64, OptLevel::O2, Scale::Tiny);
    let (v, srcs) = (12usize, 2usize);
    let mut seed = 7u32;
    let mut graph = vec![0i64; v * v];
    for i in 0..v {
        for j in 0..v {
            // The guest draws only for off-diagonal entries.
            graph[i * v + j] = if i == j {
                0
            } else {
                (lcg_next(&mut seed) % 97) as i64 + 1
            };
        }
    }
    let dijkstra = |src: usize| -> i64 {
        let mut dist = vec![1_000_000i64; v];
        let mut visited = vec![false; v];
        dist[src] = 0;
        for _ in 0..v {
            let mut u = None;
            let mut best = 1_000_001i64;
            for i in 0..v {
                if !visited[i] && dist[i] < best {
                    best = dist[i];
                    u = Some(i);
                }
            }
            let Some(u) = u else { break };
            visited[u] = true;
            for w in 0..v {
                let nd = dist[u] + graph[u * v + w];
                if nd < dist[w] {
                    dist[w] = nd;
                }
            }
        }
        dist.iter().sum()
    };
    let total: i64 = (0..srcs).map(|s| dijkstra(s * (v / srcs))).sum();
    assert_eq!(out, vec![total as u64]);
}

#[test]
fn patricia_hits_and_misses_are_exact() {
    let out = compile_run(Workload::Patricia, Profile::A64, OptLevel::O2, Scale::Tiny);
    let k = 24u64;
    // Every lookup regenerates an inserted key → all hit; all probes with
    // bit 15 set miss.
    assert_eq!(out[0], k, "hits");
    assert_eq!(out[2], k, "misses");
    // found = sum of insertion counts over the drawn keys.
    let mut seed = 31337u32;
    let mut counts = std::collections::HashMap::new();
    for _ in 0..k {
        *counts.entry(lcg_next(&mut seed) & 0x7FFF).or_insert(0u64) += 1;
    }
    let mut seed = 31337u32;
    let found: u64 = (0..k)
        .map(|_| counts[&(lcg_next(&mut seed) & 0x7FFF)])
        .sum();
    assert_eq!(out[1], found, "found counter");
}

#[test]
fn gsm_and_fft_are_deterministic_and_nonzero() {
    // These kernels are validated by cross-level agreement; here we pin the
    // values so regressions in either the compiler or the sources surface.
    let gsm1 = compile_run(Workload::Gsm, Profile::A64, OptLevel::O0, Scale::Tiny);
    let gsm2 = compile_run(Workload::Gsm, Profile::A64, OptLevel::O3, Scale::Tiny);
    assert_eq!(gsm1, gsm2);
    assert_ne!(gsm1[0], 0, "LPC checksum should be nonzero");

    let fft1 = compile_run(Workload::Fft, Profile::A32, OptLevel::O0, Scale::Tiny);
    let fft2 = compile_run(Workload::Fft, Profile::A64, OptLevel::O2, Scale::Tiny);
    // The FFT kernel is free of 32-bit overflow, so even the two *profiles*
    // agree on it.
    assert_eq!(fft1, fft2);
}
