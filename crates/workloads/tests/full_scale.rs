//! Paper-scale (`Scale::Full`) smoke validation: every workload compiles
//! and runs to completion at both remaining scales on the reference
//! emulator, with self-checks passing. (The cycle-level campaigns use the
//! smaller scales by default; this guarantees `--scale paper` works.)

use softerr_cc::{Compiler, OptLevel};
use softerr_isa::{Emulator, Profile};
use softerr_workloads::{Scale, Workload};

#[test]
fn full_scale_runs_and_self_checks() {
    for w in Workload::ALL {
        let src = w.source(Scale::Full);
        let compiled = Compiler::new(Profile::A64, OptLevel::O2)
            .compile(&src)
            .unwrap_or_else(|e| panic!("{w} failed to compile at Full: {e}"));
        let mut emu = Emulator::new(&compiled.program);
        let out = emu
            .run(4_000_000_000)
            .unwrap_or_else(|t| panic!("{w} trapped at Full: {t}"));
        assert!(out.completed, "{w} did not halt at Full scale");
        match w {
            Workload::Qsort => assert_eq!(out.output[0], 1, "qsort sortedness flag"),
            Workload::Blowfish => {
                assert_eq!(out.output[0], 96, "all blowfish blocks must verify")
            }
            Workload::Patricia => {
                assert_eq!(out.output[0], 400, "all patricia lookups must hit");
                assert_eq!(out.output[2], 400, "all patricia misses must miss");
            }
            _ => assert!(!out.output.is_empty()),
        }
    }
}

#[test]
fn scales_strictly_increase_work() {
    for w in Workload::ALL {
        let retired = |scale: Scale| {
            let compiled = Compiler::new(Profile::A64, OptLevel::O1)
                .compile(&w.source(scale))
                .unwrap();
            Emulator::new(&compiled.program)
                .run(4_000_000_000)
                .unwrap()
                .retired
        };
        let tiny = retired(Scale::Tiny);
        let small = retired(Scale::Small);
        let full = retired(Scale::Full);
        assert!(
            tiny < small && small < full,
            "{w}: scales must grow ({tiny} / {small} / {full})"
        );
    }
}
