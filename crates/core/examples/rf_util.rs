//! Compares RF utilization metrics and RF AVF across levels (diagnostic).
use softerr::{CampaignConfig, Injector, SamplingPlan};
use softerr::{Compiler, OptLevel};
use softerr::{MachineConfig, Sim, SimOutcome, Structure};
use softerr::{Scale, Workload};

fn main() {
    for w in [
        Workload::Blowfish,
        Workload::Dijkstra,
        Workload::Sha,
        Workload::Qsort,
    ] {
        for cfg in MachineConfig::paper_machines() {
            print!("{:9} {:16}", w.name(), cfg.name);
            for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
                let c = Compiler::new(cfg.profile, level)
                    .compile(&w.source(Scale::Tiny))
                    .unwrap();
                let mut sim = Sim::new(&cfg, &c.program);
                let SimOutcome::Halted { cycles, .. } = sim.run(1_000_000_000) else {
                    panic!()
                };
                let st = sim.stats();
                let inj = Injector::new(&cfg, &c.program).unwrap();
                let camp = inj
                    .run(
                        Structure::RegFile,
                        &CampaignConfig {
                            plan: SamplingPlan::fixed(250),
                            seed: 9,
                            ..CampaignConfig::default()
                        },
                    )
                    .execute()
                    .result;
                print!(
                    "  {level}: rd/c {:.2} avf {:.3}",
                    st.rf_reads as f64 / cycles as f64,
                    camp.avf()
                );
            }
            println!();
        }
    }
}
