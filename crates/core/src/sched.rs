//! Cell-parallel study orchestration.
//!
//! A study is a grid of independent **cells** — one (machine, workload,
//! level) coordinate, each owning a compile, a fault-free golden run, and
//! one campaign per structure. [`Orchestrator`] plans that grid as a small
//! DAG: compile units (deduplicated per ISA profile × workload × level, so
//! machines sharing a profile never recompile the same program) feed the
//! cells, and a work-stealing pool of cell workers claims cells from a
//! shared index — cell-level parallelism layered *on top of* the
//! intra-campaign `threads` of [`CampaignConfig`](softerr_inject::CampaignConfig).
//!
//! Completed cells are persisted to an optional content-addressed
//! [`ResultStore`], making re-runs incremental (only missing or
//! invalidated cells execute) and killed studies resumable: on the next
//! invocation every already-stored cell is served from disk.
//!
//! **Determinism:** the parallel path is bit-identical to the serial one.
//! Each cell's campaigns derive their RNG streams from `(seed, structure)`
//! alone and share nothing with other cells, cells are written into
//! plan-order slots regardless of completion order, and compile sharing
//! only deduplicates byte-identical work. `tests/sched_equivalence.rs`
//! asserts this rather than assuming it.

use crate::store::{cell_config_hash, ResultStore};
use crate::study::{CellKey, CellResult, StudyConfig, StudyError, StudyResults};
use softerr_cc::{Compiled, Compiler, OptLevel};
use softerr_inject::{CampaignConfig, CampaignResult, Injector};
use softerr_isa::Profile;
use softerr_sim::MachineConfig;
use softerr_telemetry::{event, span, Level};
use softerr_workloads::Workload;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Runs one cell of `cfg` — golden run plus one campaign per structure —
/// on an already-compiled program. This is the single execution path every
/// driver shares: the in-process [`Orchestrator`] workers, and the remote
/// [`crate::serve::run_worker`] processes of the distributed campaign
/// service, so the distributed study is bit-identical to a serial one by
/// construction (the equivalence tests assert it anyway).
///
/// # Errors
///
/// The golden-run failure message when the fault-free execution does not
/// halt cleanly.
pub(crate) fn run_cell(
    cfg: &StudyConfig,
    machine: &MachineConfig,
    compiled: &Compiled,
) -> Result<CellResult, String> {
    let injector = Injector::new(machine, &compiled.program).map_err(|e| e.to_string())?;
    let campaign_cfg = CampaignConfig {
        plan: cfg.plan,
        seed: cfg.seed,
        threads: cfg.threads,
        checkpoint: cfg.checkpoint,
    };
    let campaigns: Vec<CampaignResult> = cfg
        .structures
        .iter()
        .map(|&s| injector.run(s, &campaign_cfg).execute().result)
        .collect();
    let golden = injector.golden();
    Ok(CellResult {
        golden_cycles: golden.cycles,
        golden_retired: golden.retired,
        code_words: compiled.stats.code_words as u64,
        campaigns,
    })
}

/// One planned cell: a grid coordinate plus the compile unit it consumes
/// and the content hash it is stored under.
struct CellPlan<'c> {
    machine: &'c MachineConfig,
    workload: Workload,
    level: OptLevel,
    /// Index into the deduplicated compile-unit table.
    unit: usize,
    /// Content hash for [`ResultStore`] lookups.
    hash: String,
}

impl CellPlan<'_> {
    fn key(&self) -> CellKey {
        CellKey {
            machine: self.machine.name.clone(),
            workload: self.workload,
            level: self.level,
        }
    }
}

/// What one [`Orchestrator::execute`] invocation did, beyond the results.
#[derive(Debug)]
pub struct SweepReport {
    /// The complete study results (identical to a serial [`crate::Study::run`]).
    pub results: StudyResults,
    /// Cells actually compiled/simulated/injected this invocation.
    pub executed: usize,
    /// Cells served from the result store this invocation.
    pub store_hits: usize,
    /// Store lookups that missed (cell absent, stale, or corrupted).
    pub store_misses: u64,
    /// Cells written back to the result store this invocation.
    pub store_writes: u64,
    /// Total cells in the plan.
    pub cells: usize,
    /// Wall-clock seconds of the sweep.
    pub seconds: f64,
}

/// Plans and executes a study as a pool of parallel cells.
///
/// ```no_run
/// use softerr::{Orchestrator, ResultStore, StudyConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let report = Orchestrator::new(StudyConfig::quick(42))
///     .cell_workers(0) // 0 = one per available core
///     .store(ResultStore::open("target/softerr-store")?)
///     .execute(&|msg| eprintln!("{msg}"))?;
/// println!(
///     "{} cells: {} executed, {} from store",
///     report.cells, report.executed, report.store_hits
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Orchestrator {
    config: StudyConfig,
    cell_workers: usize,
    store: Option<ResultStore>,
    refresh: bool,
    cell_budget: Option<usize>,
}

impl Orchestrator {
    /// An orchestrator for `config`, initially serial (one cell worker),
    /// store-less, and unbudgeted — equivalent to [`crate::Study::run`].
    pub fn new(config: StudyConfig) -> Orchestrator {
        Orchestrator {
            config,
            cell_workers: 1,
            store: None,
            refresh: false,
            cell_budget: None,
        }
    }

    /// Sets the number of concurrent cell workers. `0` asks the OS for the
    /// available parallelism. Results are bit-identical for every value.
    pub fn cell_workers(mut self, workers: usize) -> Orchestrator {
        self.cell_workers = if workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            workers
        };
        self
    }

    /// Attaches a content-addressed result store: completed cells persist
    /// there and later invocations are served from it.
    pub fn store(mut self, store: ResultStore) -> Orchestrator {
        self.store = Some(store);
        self
    }

    /// When set, store *reads* are skipped (every cell re-executes) while
    /// completed cells are still written back — `--fresh` semantics.
    pub fn refresh(mut self, refresh: bool) -> Orchestrator {
        self.refresh = refresh;
        self
    }

    /// Caps the number of cells *executed* (store hits are free) in one
    /// invocation. With a store attached this turns a long study into
    /// resumable slices: each invocation completes up to `budget` more
    /// cells and returns [`StudyError::Incomplete`] until the grid is
    /// fully persisted.
    pub fn cell_budget(mut self, budget: usize) -> Orchestrator {
        self.cell_budget = Some(budget);
        self
    }

    /// The configuration this orchestrator runs.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The attached result store, if any (for hit/miss accounting).
    pub fn result_store(&self) -> Option<&ResultStore> {
        self.store.as_ref()
    }

    /// The cell keys in plan (= result) order.
    pub fn plan(&self) -> Vec<CellKey> {
        let mut keys = Vec::new();
        for machine in &self.config.machines {
            for &workload in &self.config.workloads {
                for &level in &self.config.levels {
                    keys.push(CellKey {
                        machine: machine.name.clone(),
                        workload,
                        level,
                    });
                }
            }
        }
        keys
    }

    /// Runs the study without a progress callback.
    ///
    /// # Errors
    ///
    /// As for [`Orchestrator::execute`].
    pub fn run(&self) -> Result<StudyResults, StudyError> {
        self.execute(&|_| {}).map(|report| report.results)
    }

    /// Runs the study, reporting each completed cell to `progress` (from
    /// whichever worker finished it; messages keep the serial
    /// `[done/total] machine/workload/level` shape, with ` (store)`
    /// appended for store-served cells).
    ///
    /// # Errors
    ///
    /// * [`StudyError::Config`] for an empty grid axis,
    /// * [`StudyError::Compile`] / [`StudyError::Golden`] when a cell's
    ///   program is broken,
    /// * [`StudyError::Io`] / [`StudyError::Format`] when the result store
    ///   cannot persist a cell,
    /// * [`StudyError::Incomplete`] when a [`Orchestrator::cell_budget`]
    ///   stopped the sweep before every cell was measured.
    pub fn execute(&self, progress: &(dyn Fn(&str) + Sync)) -> Result<SweepReport, StudyError> {
        let cfg = &self.config;
        cfg.validate().map_err(StudyError::Config)?;
        let t0 = Instant::now();

        // Plan: deduplicated compile units + one CellPlan per coordinate.
        let mut plan_sp = span("sched.plan");
        let mut units: Vec<(Profile, Workload, OptLevel)> = Vec::new();
        let mut cells: Vec<CellPlan<'_>> = Vec::new();
        for machine in &cfg.machines {
            for &workload in &cfg.workloads {
                for &level in &cfg.levels {
                    let unit_key = (machine.profile, workload, level);
                    let unit = units
                        .iter()
                        .position(|u| *u == unit_key)
                        .unwrap_or_else(|| {
                            units.push(unit_key);
                            units.len() - 1
                        });
                    cells.push(CellPlan {
                        machine,
                        workload,
                        level,
                        unit,
                        hash: cell_config_hash(cfg, machine, workload, level),
                    });
                }
            }
        }
        let total = cells.len();
        let workers = self.cell_workers.clamp(1, total.max(1));
        plan_sp.record("cells", total as u64);
        plan_sp.record("compile_units", units.len() as u64);
        drop(plan_sp);
        event!(
            Level::Info,
            "study.sched",
            {
                cells: total,
                compile_units: units.len(),
                workers: workers,
                injections: cfg.total_injections()
            },
            "planned {total} cells over {} compile units on {workers} worker(s) \
             ({} injections total)",
            units.len(),
            cfg.total_injections()
        );

        let compiled: Vec<OnceLock<Result<Compiled, String>>> =
            (0..units.len()).map(|_| OnceLock::new()).collect();
        let slots: Vec<OnceLock<(CellKey, CellResult)>> =
            (0..total).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let executed = AtomicUsize::new(0);
        let served = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let budget_hit = AtomicBool::new(false);
        let failure: Mutex<Option<StudyError>> = Mutex::new(None);

        let worker = || {
            loop {
                if failure.lock().expect("failure slot").is_some() {
                    break;
                }
                let k = next.fetch_add(1, Ordering::Relaxed);
                let Some(plan) = cells.get(k) else {
                    break;
                };
                let key = plan.key();
                let mut cell_sp = span("cell");
                cell_sp.record("machine", plan.machine.name.clone());
                cell_sp.record("workload", plan.workload.to_string());
                cell_sp.record("level", plan.level.to_string());
                // 1. Result store: an identical already-measured cell is
                //    served from disk instead of re-executed.
                if !self.refresh {
                    let lookup = {
                        let _sp = span("cell.lookup");
                        self.store.as_ref().and_then(|s| s.load(&plan.hash, &key))
                    };
                    if let Some(result) = lookup {
                        cell_sp.record("hit", true);
                        served.fetch_add(1, Ordering::Relaxed);
                        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                        event!(
                            Level::Info,
                            "study.sched",
                            { cell: key.to_string(), done: d, total: total, hash: plan.hash.clone() },
                            "[{d}/{total}] {key} served from result store"
                        );
                        let _ = slots[k].set((key.clone(), result));
                        progress(&format!("[{d}/{total}] {key} (store)"));
                        continue;
                    }
                }
                cell_sp.record("hit", false);
                // 2. Execution budget: leave the cell for a later
                //    invocation once this one's slice is spent.
                if let Some(budget) = self.cell_budget {
                    let claimed = executed.fetch_add(1, Ordering::Relaxed);
                    if claimed >= budget {
                        executed.fetch_sub(1, Ordering::Relaxed);
                        budget_hit.store(true, Ordering::Relaxed);
                        continue;
                    }
                } else {
                    executed.fetch_add(1, Ordering::Relaxed);
                }
                // 3. Compile (shared across machines with this profile;
                //    the span also covers waiting on another worker's
                //    in-flight compile of the same unit).
                let compiled = {
                    let _sp = span("cell.compile");
                    compiled[plan.unit].get_or_init(|| {
                        Compiler::new(plan.machine.profile, plan.level)
                            .compile(&plan.workload.source(cfg.scale))
                            .map_err(|e| format!("{} at {}: {e}", plan.workload, plan.level))
                    })
                };
                let compiled = match compiled {
                    Ok(compiled) => compiled,
                    Err(e) => {
                        fail(&failure, StudyError::Compile(e.clone()));
                        break;
                    }
                };
                // 4. Golden run + per-structure campaigns.
                let mut exec_sp = span("cell.execute");
                let result = match run_cell(cfg, plan.machine, compiled) {
                    Ok(result) => result,
                    Err(e) => {
                        fail(
                            &failure,
                            StudyError::Golden(format!(
                                "{} at {} on {}: {e}",
                                plan.workload, plan.level, plan.machine.name
                            )),
                        );
                        break;
                    }
                };
                exec_sp.record("campaigns", cfg.structures.len() as u64);
                drop(exec_sp);
                // 5. Persist before reporting, so a kill after this point
                //    never loses the cell.
                if let Some(store) = &self.store {
                    let _sp = span("cell.store");
                    if let Err(e) = store.save(&plan.hash, &key, &result) {
                        fail(&failure, e);
                        break;
                    }
                }
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                let elapsed = t0.elapsed().as_secs_f64();
                let eta = elapsed / d as f64 * (total - d) as f64;
                event!(
                    Level::Info,
                    "study.sched",
                    {
                        cell: key.to_string(),
                        done: d,
                        total: total,
                        elapsed_s: elapsed,
                        eta_s: eta
                    },
                    "[{d}/{total}] {key} done ({elapsed:.1}s elapsed, ETA {eta:.0}s)"
                );
                let _ = slots[k].set((key.clone(), result));
                progress(&format!("[{d}/{total}] {key}"));
            }
        };
        if workers <= 1 {
            worker();
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers).map(|_| scope.spawn(worker)).collect();
                for handle in handles {
                    handle.join().expect("cell worker panicked");
                }
            });
        }

        if let Some(error) = failure.lock().expect("failure slot").take() {
            return Err(error);
        }
        let executed = executed.load(Ordering::Relaxed);
        let store_hits = served.load(Ordering::Relaxed);
        if budget_hit.load(Ordering::Relaxed) {
            let completed = done.load(Ordering::Relaxed);
            event!(
                Level::Info,
                "study.sched",
                { completed: completed, total: total, executed: executed },
                "cell budget reached: {completed}/{total} cells persisted; \
                 re-run to resume"
            );
            return Err(StudyError::Incomplete { completed, total });
        }
        let results = StudyResults {
            config: cfg.clone(),
            cells: slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("every cell completed"))
                .collect(),
        };
        let seconds = t0.elapsed().as_secs_f64();
        let (store_misses, store_writes) = self
            .store
            .as_ref()
            .map_or((0, 0), |s| (s.misses(), s.stores()));
        if let Some(store) = &self.store {
            event!(
                Level::Info,
                "study.store",
                {
                    hits: store.hits(),
                    misses: store_misses,
                    stores: store_writes
                },
                "result store: {} hit(s), {store_misses} miss(es), {store_writes} write(s)",
                store.hits()
            );
        }
        if executed == 0 && store_hits == total {
            event!(
                Level::Info,
                "study.sched",
                { cells: total, seconds: seconds },
                "all {total} cells served from result store (0 campaigns executed)"
            );
        } else {
            event!(
                Level::Info,
                "study.sched",
                { executed: executed, store_hits: store_hits, seconds: seconds },
                "study complete: {executed} cell(s) executed, {store_hits} served \
                 from store in {seconds:.1}s"
            );
        }
        Ok(SweepReport {
            results,
            executed,
            store_hits,
            store_misses,
            store_writes,
            cells: total,
            seconds,
        })
    }
}

/// Records the sweep's first failure; later ones are dropped (workers stop
/// claiming as soon as one is set).
fn fail(slot: &Mutex<Option<StudyError>>, error: StudyError) {
    let mut slot = slot.lock().expect("failure slot");
    if slot.is_none() {
        *slot = Some(error);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softerr_sim::Structure;

    fn tiny_config() -> StudyConfig {
        StudyConfig {
            workloads: vec![Workload::Qsort],
            levels: vec![OptLevel::O0, OptLevel::O2],
            structures: vec![Structure::RegFile, Structure::RobPc],
            plan: softerr_inject::SamplingPlan::fixed(6),
            seed: 11,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn plan_matches_serial_iteration_order() {
        let orch = Orchestrator::new(tiny_config());
        let keys = orch.plan();
        // 2 machines x 1 workload x 2 levels.
        assert_eq!(keys.len(), 4);
        assert_eq!(keys[0].machine, "Cortex-A15-like");
        assert_eq!(keys[0].level, OptLevel::O0);
        assert_eq!(keys[1].level, OptLevel::O2);
        assert_eq!(keys[2].machine, "Cortex-A72-like");
    }

    #[test]
    fn parallel_cells_match_serial_cells() {
        let cfg = tiny_config();
        let serial = Orchestrator::new(cfg.clone()).run().unwrap();
        let parallel = Orchestrator::new(cfg).cell_workers(4).run().unwrap();
        assert_eq!(serial, parallel, "cell parallelism must be bit-identical");
    }

    #[test]
    fn compile_units_are_shared_per_profile() {
        // Two machines with different profiles: no sharing across them,
        // but a hypothetical same-profile pair would collapse. Assert the
        // plan's arithmetic instead of private state: 2 machines × 1
        // workload × 2 levels with distinct profiles = 4 units, and with a
        // duplicated machine the unit count must not grow.
        let mut cfg = tiny_config();
        let mut clone = cfg.machines[0].clone();
        clone.name = "Cortex-A15-twin".into();
        cfg.machines.push(clone);
        let orch = Orchestrator::new(cfg);
        let results = orch.run().unwrap();
        // The twin shares the A15's profile, so its cells reuse the same
        // compiled program and must produce identical measurements.
        for level in [OptLevel::O0, OptLevel::O2] {
            let a = results.cell("Cortex-A15-like", Workload::Qsort, level);
            let b = results.cell("Cortex-A15-twin", Workload::Qsort, level);
            assert_eq!(a, b, "shared compile units must not change results");
        }
    }

    #[test]
    fn empty_axis_is_a_typed_error() {
        let cfg = StudyConfig {
            workloads: vec![],
            ..tiny_config()
        };
        match Orchestrator::new(cfg).run() {
            Err(StudyError::Config(msg)) => assert!(msg.contains("workload"), "{msg}"),
            other => panic!("expected Config error, got {other:?}"),
        }
    }
}
