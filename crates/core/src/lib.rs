//! # softerr
//!
//! A full reproduction of *"Characterizing Soft Error Vulnerability of CPUs
//! Across Compiler Optimizations and Microarchitectures"* (IISWC 2021) as a
//! Rust library. This facade crate orchestrates the entire stack:
//!
//! 1. compile the eight MiBench-equivalent workloads ([`Workload`]) at each
//!    GCC-style optimization level ([`OptLevel`]) with the `softerr-cc`
//!    compiler,
//! 2. run them on the cycle-level out-of-order simulator (`softerr-sim`)
//!    configured as a Cortex-A15-like or Cortex-A72-like machine,
//! 3. inject statistically sampled single-bit transient faults into the
//!    fifteen structure fields of the paper ([`Structure`]) with
//!    `softerr-inject`,
//! 4. aggregate AVF / weighted-AVF / FIT / FPE with `softerr-analysis`.
//!
//! ```no_run
//! use softerr::{Study, StudyConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = StudyConfig::quick(42);
//! let results = Study::new(config).run()?;
//! for machine in results.machine_names() {
//!     for structure in softerr::Structure::ALL {
//!         let wavf = results.weighted_avf(&machine, softerr::OptLevel::O2, structure);
//!         println!("{machine} {structure}: wAVF = {wavf:.3}");
//!     }
//! }
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

mod sched;
pub mod serve;
mod store;
mod study;

pub use sched::{Orchestrator, SweepReport};
pub use serve::{run_worker, Coordinator, WorkerOptions, WorkerReport};
pub use store::{cell_config_hash, ResultStore};
pub use study::{
    CellKey, CellResult, Study, StudyConfig, StudyConfigBuilder, StudyError, StudyResults,
};

// Re-export the full vocabulary so downstream users need only this crate.
pub use softerr_analysis::{
    ace_estimate, cpu_fit, cpu_fit_by_class, fit_of_structure, forensics, fpe,
    mean_sampling_speedup, mean_static_uplift, profile, sampling_table,
    static_injected_rank_correlation, static_vuln_table, weighted_avf, AceEstimate, EccScheme,
    SamplingCell, StaticVulnCell, StructureAvf, StructureMeasurement,
};
pub use softerr_cc::{
    CompileError, Compiled, Compiler, OptLevel, PassConfig, StaticVulnMap, VerifyError,
};
pub use softerr_inject::{
    error_margin, fnv1a, ht_fraction, required_sample, weighted_error_margin,
    weighted_required_sample, CampaignConfig, CampaignObserver, CampaignOutput, CampaignResult,
    CampaignRun, ClassCounts, DivergenceSite, FaultClass, FaultRecord, FaultSpec, Golden,
    ImportanceSampler, Injector, ProgressLine, PropagationSample, PropagationTrace, PruneMode,
    PrunePolicy, RunManifest, Sampler, SamplerKind, SamplingPlan, StopRule, UniformSampler, Z_90,
    Z_95, Z_99,
};
pub use softerr_isa::{disassemble, Emulator, Profile, Program};
pub use softerr_sim::{
    LiveWindow, LivenessMap, MachineConfig, OccupancyHistogram, ResidencyReport, Sim, SimCounters,
    SimOutcome, SimStats, Structure, StructureLiveness, StructureResidency,
};
/// The structured event/telemetry facade (see [`mod@telemetry`]).
pub use softerr_telemetry as telemetry;
pub use softerr_telemetry::{
    event, set_tracing, span, take_trace, tracing_enabled, Level, Span, SpanRecord, Table, Trace,
};
pub use softerr_workloads::{Scale, Workload};
