//! Distributed campaign service: one coordinator, N untrusted worker
//! processes, the content-addressed [`crate::ResultStore`] as the shared
//! source of truth.
//!
//! The paper's full grid is 1,920,000 injection runs — hours of work that
//! scale-out across machines turns into minutes, *if* nothing about the
//! distribution can change the numbers. This module keeps that guarantee
//! structural rather than statistical:
//!
//! * cells are deterministic functions of the [`crate::StudyConfig`]
//!   (seeded per `(seed, structure)`, independent of thread count and of
//!   which process runs them),
//! * only the coordinator writes the store, after re-verifying each
//!   submission against its own plan (see [`Coordinator`]),
//! * workers execute through the exact same code path as the in-process
//!   orchestrator.
//!
//! So `serial == parallel == distributed` holds byte-for-byte, and
//! `tests/serve_equivalence.rs` asserts it end to end — including a
//! worker killed mid-study, whose leases expire and are re-granted.
//!
//! See DESIGN.md §15 for the wire protocol and the lease state machine.

mod coordinator;
mod wire;
mod worker;

pub use coordinator::Coordinator;
pub use wire::{read_frame, write_frame, LeaseGrant, Request, Response, PROTOCOL_VERSION};
pub use worker::{run_worker, WorkerOptions, WorkerReport};
