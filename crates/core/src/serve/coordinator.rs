//! The `softerr-serve` coordinator: plans a study, leases cells to worker
//! processes, verifies their submissions, and owns the result store.
//!
//! Trust model: workers are **untrusted processes**. The coordinator never
//! lets a worker address the store directly — every `Submit` is checked
//! against the coordinator's *own* plan: the hash must be one the
//! coordinator computed (a worker cannot invent cells or move results
//! between coordinates), the echoed key must match that hash's planned
//! coordinate, and the result's shape (one campaign per configured
//! structure, in order) must match the study. Only the coordinator
//! writes [`ResultStore`] cells, so a distributed store is byte-identical
//! to a serial one by construction.
//!
//! Lease state machine (per cell): `Pending → Leased → Done`, with
//! `Leased → Pending` on deadline expiry or worker disconnect, and
//! `Leased → Leased` when an expired cell is re-granted. `Done` is
//! terminal: a late submit from a lost lease is acknowledged idempotently
//! ([`SubmitVerdict::AlreadyDone`]) but its payload is discarded; and
//! because a *live* stale lease's payload is addressed by the same
//! content hash, accepting it early is equally sound — the cell's result
//! is a pure function of the config, so whoever finishes first wins.

use super::wire::{self, LeaseGrant, Request, Response, PROTOCOL_VERSION};
use crate::sched::SweepReport;
use crate::store::{cell_config_hash, ResultStore};
use crate::study::{CellKey, CellResult, StudyConfig, StudyError, StudyResults};
use softerr_telemetry::{event, span, Level};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Suggested worker retry delay when every remaining cell is leased out.
const WAIT_MS: u64 = 100;

/// Per-cell scheduling state. See the module docs for the transitions.
#[derive(Debug, Clone, PartialEq)]
enum CellState {
    /// Not yet granted to anyone (or reclaimed from a lost lease).
    Pending,
    /// Granted; past `deadline_ms` the cell is reclaimable.
    Leased {
        lease: u64,
        worker: String,
        deadline_ms: u64,
    },
    /// Verified, persisted, terminal.
    Done,
}

/// What a `Submit` did to the board.
#[derive(Debug, PartialEq, Eq)]
enum SubmitVerdict {
    /// First completion of the cell: persist and report it.
    Accept,
    /// The cell was already completed (store hit, or another worker beat
    /// this one after its lease expired). Acknowledge, discard payload.
    AlreadyDone,
}

/// Pure lease bookkeeping over the planned cells. Time is a parameter
/// (`now_ms`, milliseconds on the coordinator's clock) rather than read
/// from a wall clock, so expiry and re-lease logic is unit-testable
/// without sleeping.
#[derive(Debug)]
struct LeaseBoard {
    states: Vec<CellState>,
    lease_ms: u64,
    next_lease: u64,
    done: usize,
}

impl LeaseBoard {
    fn new(cells: usize, lease_ms: u64) -> LeaseBoard {
        LeaseBoard {
            states: vec![CellState::Pending; cells],
            lease_ms,
            next_lease: 0,
            done: 0,
        }
    }

    /// Marks a cell complete outside the lease flow (store-served at plan
    /// time).
    fn mark_done(&mut self, idx: usize) {
        if self.states[idx] != CellState::Done {
            self.states[idx] = CellState::Done;
            self.done += 1;
        }
    }

    /// Returns expired leases to `Pending`. Called before every grant, so
    /// a dead worker's cells become grantable the next time any live
    /// worker asks for work.
    fn reclaim_expired(&mut self, now_ms: u64) -> usize {
        let mut reclaimed = 0;
        for state in &mut self.states {
            if let CellState::Leased { deadline_ms, .. } = state {
                if *deadline_ms <= now_ms {
                    *state = CellState::Pending;
                    reclaimed += 1;
                }
            }
        }
        reclaimed
    }

    /// Cells currently leased to `worker` (the backpressure measure).
    fn inflight(&self, worker: &str) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, CellState::Leased { worker: w, .. } if w == worker))
            .count()
    }

    /// Grants up to `want` pending cells (plan order) to `worker`,
    /// reclaiming expired leases first. Returns `(cell index, lease id,
    /// deadline)` triples.
    fn grant(&mut self, worker: &str, want: usize, now_ms: u64) -> Vec<(usize, u64, u64)> {
        self.reclaim_expired(now_ms);
        let deadline_ms = now_ms + self.lease_ms;
        let mut grants = Vec::new();
        for (idx, state) in self.states.iter_mut().enumerate() {
            if grants.len() >= want {
                break;
            }
            if *state == CellState::Pending {
                let lease = self.next_lease;
                self.next_lease += 1;
                *state = CellState::Leased {
                    lease,
                    worker: worker.to_string(),
                    deadline_ms,
                };
                grants.push((idx, lease, deadline_ms));
            }
        }
        grants
    }

    /// Applies a (hash-verified) submission for cell `idx`. The lease id
    /// is not required to still be current: the payload is addressed by a
    /// content hash the coordinator computed itself, so a submission from
    /// an expired-and-re-granted lease is just the same deterministic
    /// result arriving from a different worker.
    fn submit(&mut self, idx: usize) -> SubmitVerdict {
        match self.states[idx] {
            CellState::Done => SubmitVerdict::AlreadyDone,
            CellState::Pending | CellState::Leased { .. } => {
                self.states[idx] = CellState::Done;
                self.done += 1;
                SubmitVerdict::Accept
            }
        }
    }

    /// Returns a disconnected worker's leases to `Pending` immediately,
    /// without waiting for their deadlines.
    fn release_worker(&mut self, worker: &str) -> usize {
        let mut released = 0;
        for state in &mut self.states {
            if matches!(state, CellState::Leased { worker: w, .. } if w == worker) {
                *state = CellState::Pending;
                released += 1;
            }
        }
        released
    }

    fn all_done(&self) -> bool {
        self.done == self.states.len()
    }
}

/// Shared coordinator state: the board plus plan-order result slots.
struct Shared {
    board: LeaseBoard,
    slots: Vec<Option<CellResult>>,
    /// Cells executed by workers (accepted submissions).
    executed: usize,
    /// Submissions rejected by verification.
    rejected: usize,
    error: Option<StudyError>,
}

/// One planned cell, from the coordinator's point of view.
struct PlannedCell {
    key: CellKey,
    hash: String,
}

/// Serves a [`StudyConfig`] to remote workers over TCP and assembles the
/// same [`SweepReport`] a local [`crate::Orchestrator`] would produce.
///
/// ```no_run
/// use softerr::{Coordinator, ResultStore, StudyConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let listener = std::net::TcpListener::bind("127.0.0.1:7077")?;
/// let report = Coordinator::new(
///     StudyConfig::quick(42),
///     ResultStore::open("target/softerr-store")?,
/// )
/// .serve(&listener)?;
/// println!("{} cells, {} executed remotely", report.cells, report.executed);
/// # Ok(())
/// # }
/// ```
pub struct Coordinator {
    config: StudyConfig,
    store: ResultStore,
    lease_ms: u64,
    max_inflight: usize,
    refresh: bool,
    progress_log: Option<PathBuf>,
}

impl Coordinator {
    /// A coordinator for `config` whose source of truth is `store`.
    /// Defaults: 60 s leases, at most 4 in-flight cells per worker, store
    /// reads enabled, no progress log.
    pub fn new(config: StudyConfig, store: ResultStore) -> Coordinator {
        Coordinator {
            config,
            store,
            lease_ms: 60_000,
            max_inflight: 4,
            refresh: false,
            progress_log: None,
        }
    }

    /// Sets the lease duration in milliseconds: how long a worker may sit
    /// on a granted cell before it becomes re-grantable. Also bounds the
    /// per-connection read timeout used to detect dead peers.
    pub fn lease_ms(mut self, ms: u64) -> Coordinator {
        self.lease_ms = ms.max(1);
        self
    }

    /// Caps the cells one worker may hold concurrently (backpressure: a
    /// fast `Lease`-looping worker cannot strip-mine the whole grid and
    /// then fail, stranding every cell until its leases expire).
    pub fn max_inflight(mut self, cells: usize) -> Coordinator {
        self.max_inflight = cells.max(1);
        self
    }

    /// When set, store *reads* are skipped (every cell re-executes) while
    /// completed cells are still written back — `--fresh` semantics.
    pub fn refresh(mut self, refresh: bool) -> Coordinator {
        self.refresh = refresh;
        self
    }

    /// Streams per-event forensics JSONL (leases, submissions, rejections,
    /// disconnects, progress/ETA) to `path`, one object per line.
    pub fn progress_log(mut self, path: impl Into<PathBuf>) -> Coordinator {
        self.progress_log = Some(path.into());
        self
    }

    /// The study this coordinator serves.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Serves the study on `listener` until every cell is complete.
    /// Blocks; returns the same report (modulo wall-clock `seconds`) a
    /// serial [`crate::Orchestrator`] run of the config would.
    ///
    /// # Errors
    ///
    /// * [`StudyError::Config`] for a degenerate grid,
    /// * [`StudyError::Io`] when the listener fails or the store cannot
    ///   persist a verified cell.
    pub fn serve(&self, listener: &TcpListener) -> Result<SweepReport, StudyError> {
        self.config.validate().map_err(StudyError::Config)?;
        let t0 = Instant::now();
        let mut serve_sp = span("serve");

        // Plan: same nesting (and therefore same plan order) as the
        // in-process orchestrator.
        let mut cells = Vec::new();
        for machine in &self.config.machines {
            for &workload in &self.config.workloads {
                for &level in &self.config.levels {
                    cells.push(PlannedCell {
                        key: CellKey {
                            machine: machine.name.clone(),
                            workload,
                            level,
                        },
                        hash: cell_config_hash(&self.config, machine, workload, level),
                    });
                }
            }
        }
        let total = cells.len();
        serve_sp.record("cells", total as u64);

        let log = match &self.progress_log {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
            None => None,
        };

        // Resolve store hits up front: those cells never go on the wire.
        let mut shared = Shared {
            board: LeaseBoard::new(total, self.lease_ms),
            slots: (0..total).map(|_| None).collect(),
            executed: 0,
            rejected: 0,
            error: None,
        };
        let mut store_hits = 0;
        if !self.refresh {
            for (idx, cell) in cells.iter().enumerate() {
                if let Some(result) = self.store.load(&cell.hash, &cell.key) {
                    shared.slots[idx] = Some(result);
                    shared.board.mark_done(idx);
                    store_hits += 1;
                    self.log_line(
                        log.as_ref(),
                        &format!(
                            r#"{{"event":"store","cell":"{}","done":{},"total":{total}}}"#,
                            cell.key, shared.board.done
                        ),
                    );
                }
            }
        }
        event!(
            Level::Info,
            "study.sched",
            {
                cells: total,
                store_hits: store_hits,
                lease_ms: self.lease_ms,
                max_inflight: self.max_inflight
            },
            "serving {total} cells ({store_hits} already in store) at {}",
            listener
                .local_addr()
                .map_or_else(|_| "<unknown>".to_string(), |a| a.to_string())
        );

        if !shared.board.all_done() {
            let local = listener.local_addr()?;
            let shared = Mutex::new(shared);
            let done_flag = AtomicBool::new(false);
            let mut accept_error: Option<std::io::Error> = None;
            std::thread::scope(|scope| {
                let mut conn_id = 0usize;
                loop {
                    if done_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let stream = match listener.accept() {
                        Ok((stream, _)) => stream,
                        Err(e) => {
                            accept_error = Some(e);
                            done_flag.store(true, Ordering::Release);
                            break;
                        }
                    };
                    if done_flag.load(Ordering::Acquire) {
                        break; // the completion wake-up self-connection
                    }
                    conn_id += 1;
                    let ctx = ConnCtx {
                        coordinator: self,
                        cells: &cells,
                        shared: &shared,
                        done_flag: &done_flag,
                        local,
                        total,
                        t0,
                        log: log.as_ref(),
                        conn_id,
                    };
                    scope.spawn(move || ctx.handle(stream));
                }
            });
            let mut shared = shared.into_inner().expect("coordinator state");
            if let Some(e) = accept_error {
                shared.error.get_or_insert(StudyError::Io(e));
            }
            if let Some(e) = shared.error.take() {
                return Err(e);
            }
            return self.finish(shared, cells, store_hits, total, t0);
        }
        self.finish(shared, cells, store_hits, total, t0)
    }

    /// Assembles the final report once every slot is filled.
    fn finish(
        &self,
        shared: Shared,
        cells: Vec<PlannedCell>,
        store_hits: usize,
        total: usize,
        t0: Instant,
    ) -> Result<SweepReport, StudyError> {
        let executed = shared.executed;
        let results = StudyResults {
            config: self.config.clone(),
            cells: cells
                .into_iter()
                .zip(shared.slots)
                .map(|(cell, slot)| (cell.key, slot.expect("every cell completed")))
                .collect(),
        };
        let seconds = t0.elapsed().as_secs_f64();
        event!(
            Level::Info,
            "study.sched",
            {
                executed: executed,
                store_hits: store_hits,
                rejected: shared.rejected,
                seconds: seconds
            },
            "distributed study complete: {executed} cell(s) executed remotely, \
             {store_hits} served from store in {seconds:.1}s"
        );
        event!(
            Level::Info,
            "study.store",
            {
                hits: self.store.hits(),
                misses: self.store.misses(),
                stores: self.store.stores()
            },
            "result store: {} hit(s), {} miss(es), {} write(s)",
            self.store.hits(),
            self.store.misses(),
            self.store.stores()
        );
        Ok(SweepReport {
            results,
            executed,
            store_hits,
            store_misses: self.store.misses(),
            store_writes: self.store.stores(),
            cells: total,
            seconds,
        })
    }

    fn log_line(&self, log: Option<&Mutex<std::fs::File>>, line: &str) {
        if let Some(log) = log {
            let mut file = log.lock().expect("progress log");
            let _ = writeln!(file, "{line}");
        }
    }
}

/// Everything one connection handler needs, bundled so the accept loop
/// can move a single value into the handler thread.
struct ConnCtx<'a> {
    coordinator: &'a Coordinator,
    cells: &'a [PlannedCell],
    shared: &'a Mutex<Shared>,
    done_flag: &'a AtomicBool,
    local: std::net::SocketAddr,
    total: usize,
    t0: Instant,
    log: Option<&'a Mutex<std::fs::File>>,
    conn_id: usize,
}

impl ConnCtx<'_> {
    fn now_ms(&self) -> u64 {
        self.t0.elapsed().as_millis() as u64
    }

    /// Drives one worker connection to completion. Any transport error —
    /// EOF, timeout, garbage — releases the worker's leases and closes
    /// the connection; the study is unharmed because its cells return to
    /// `Pending`.
    fn handle(&self, mut stream: TcpStream) {
        // A peer that holds leases but goes silent for two lease periods
        // is dead; its cells are reclaimable anyway, so stop waiting.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(
            self.coordinator.lease_ms.saturating_mul(2).max(1_000),
        )));
        let worker = match self.hello(&mut stream) {
            Some(worker) => worker,
            None => return,
        };
        loop {
            let request: Request = match wire::read_frame(&mut stream) {
                Ok(request) => request,
                Err(e) => {
                    self.disconnect(&worker, &e.to_string());
                    return;
                }
            };
            let response = match request {
                Request::Hello { .. } => Response::Reject {
                    reason: "already greeted".to_string(),
                },
                Request::Lease { want } => self.lease(&worker, want),
                Request::Submit {
                    lease,
                    hash,
                    key,
                    result,
                } => self.submit(&worker, lease, hash, key, result),
                Request::Bye => {
                    self.disconnect(&worker, "bye");
                    let _ = wire::write_frame(&mut stream, &Response::Bye);
                    return;
                }
            };
            if wire::write_frame(&mut stream, &response).is_err() {
                self.disconnect(&worker, "write failed");
                return;
            }
        }
    }

    /// Performs the version handshake; returns the connection-unique
    /// worker name.
    fn hello(&self, stream: &mut TcpStream) -> Option<String> {
        let request: Request = wire::read_frame(stream).ok()?;
        let Request::Hello { version, worker } = request else {
            let _ = wire::write_frame(
                stream,
                &Response::Reject {
                    reason: "expected Hello".to_string(),
                },
            );
            return None;
        };
        if version != PROTOCOL_VERSION {
            let _ = wire::write_frame(
                stream,
                &Response::Reject {
                    reason: format!(
                        "protocol version mismatch: coordinator {PROTOCOL_VERSION}, worker {version}"
                    ),
                },
            );
            return None;
        }
        // Two workers may introduce themselves identically; the
        // connection id keeps lease accounting per-connection.
        let worker = format!("{worker}#{}", self.conn_id);
        event!(
            Level::Info,
            "study.sched",
            { worker: worker.clone() },
            "worker {worker} connected"
        );
        self.coordinator.log_line(
            self.log,
            &format!(r#"{{"event":"connected","worker":{}}}"#, json_str(&worker)),
        );
        let welcome = Response::Welcome {
            version: PROTOCOL_VERSION,
            config: self.coordinator.config.clone(),
            cells: self.total,
        };
        wire::write_frame(stream, &welcome).ok()?;
        Some(worker)
    }

    fn lease(&self, worker: &str, want: usize) -> Response {
        let mut shared = self.shared.lock().expect("coordinator state");
        if shared.board.all_done() {
            return Response::Done;
        }
        let headroom = self
            .coordinator
            .max_inflight
            .saturating_sub(shared.board.inflight(worker));
        let now = self.now_ms();
        let granted = shared.board.grant(worker, want.min(headroom), now);
        if granted.is_empty() {
            return Response::Wait { ms: WAIT_MS };
        }
        let grants: Vec<LeaseGrant> = granted
            .iter()
            .map(|&(idx, lease, deadline_ms)| {
                let cell = &self.cells[idx];
                self.coordinator.log_line(
                    self.log,
                    &format!(
                        r#"{{"event":"leased","cell":"{}","lease":{lease},"worker":{},"deadline_ms":{deadline_ms}}}"#,
                        cell.key,
                        json_str(worker)
                    ),
                );
                LeaseGrant {
                    lease,
                    key: cell.key.clone(),
                    hash: cell.hash.clone(),
                    deadline_ms,
                }
            })
            .collect();
        event!(
            Level::Debug,
            "study.sched",
            { worker: worker.to_string(), granted: grants.len() },
            "leased {} cell(s) to {worker}",
            grants.len()
        );
        Response::Leases { grants }
    }

    /// Verifies and applies one submission. The hash is the load-bearing
    /// check: it must equal a coordinator-computed cell hash, so the
    /// worker can neither invent coordinates nor relabel one cell's
    /// result as another's.
    fn submit(
        &self,
        worker: &str,
        lease: u64,
        hash: String,
        key: CellKey,
        result: CellResult,
    ) -> Response {
        let rejected = |reason: String| {
            self.coordinator.log_line(
                self.log,
                &format!(
                    r#"{{"event":"rejected","lease":{lease},"worker":{},"reason":{}}}"#,
                    json_str(worker),
                    json_str(&reason)
                ),
            );
            event!(
                Level::Warn,
                "study.sched",
                { worker: worker.to_string(), lease: lease, reason: reason.clone() },
                "rejected submission from {worker}: {reason}"
            );
            Response::Rejected { lease, reason }
        };
        let Some(idx) = self.cells.iter().position(|c| c.hash == hash) else {
            let mut shared = self.shared.lock().expect("coordinator state");
            shared.rejected += 1;
            return rejected(format!("hash {hash} is not a cell of this study"));
        };
        let cell = &self.cells[idx];
        if cell.key != key {
            let mut shared = self.shared.lock().expect("coordinator state");
            shared.rejected += 1;
            return rejected(format!(
                "key mismatch: hash {hash} plans {}, submission claims {key}",
                cell.key
            ));
        }
        let structures: Vec<_> = result.campaigns.iter().map(|c| c.structure).collect();
        if structures != self.coordinator.config.structures {
            let mut shared = self.shared.lock().expect("coordinator state");
            shared.rejected += 1;
            return rejected(format!(
                "campaign structure list {structures:?} does not match the study"
            ));
        }
        let mut shared = self.shared.lock().expect("coordinator state");
        match shared.board.submit(idx) {
            SubmitVerdict::AlreadyDone => {
                // A lost lease finished late; same deterministic bytes,
                // nothing to do.
                Response::Accepted { lease }
            }
            SubmitVerdict::Accept => {
                // Persist before acknowledging, so a coordinator kill
                // after the ack never loses an accepted cell.
                if let Err(e) = self.coordinator.store.save(&hash, &key, &result) {
                    shared.board.states[idx] = CellState::Pending;
                    shared.board.done -= 1;
                    shared.error.get_or_insert(e);
                    self.wake();
                    return rejected("coordinator failed to persist the cell".to_string());
                }
                shared.slots[idx] = Some(result);
                shared.executed += 1;
                let d = shared.board.done;
                let elapsed = self.t0.elapsed().as_secs_f64();
                let eta = elapsed / d as f64 * (self.total - d) as f64;
                event!(
                    Level::Info,
                    "study.sched",
                    {
                        cell: key.to_string(),
                        worker: worker.to_string(),
                        done: d,
                        total: self.total,
                        elapsed_s: elapsed,
                        eta_s: eta
                    },
                    "[{d}/{}] {key} done by {worker} ({elapsed:.1}s elapsed, ETA {eta:.0}s)",
                    self.total
                );
                self.coordinator.log_line(
                    self.log,
                    &format!(
                        r#"{{"event":"completed","cell":"{key}","lease":{lease},"worker":{},"done":{d},"total":{},"elapsed_s":{elapsed:?},"eta_s":{eta:?}}}"#,
                        json_str(worker),
                        self.total
                    ),
                );
                if shared.board.all_done() {
                    self.wake();
                }
                Response::Accepted { lease }
            }
        }
    }

    /// Marks the study complete (or failed) and unblocks the accept loop.
    fn wake(&self) {
        self.done_flag.store(true, Ordering::Release);
        // The accept loop blocks in `accept`; a throwaway connection
        // makes it re-check the done flag.
        let _ = TcpStream::connect(self.local);
    }

    fn disconnect(&self, worker: &str, why: &str) {
        let released = {
            let mut shared = self.shared.lock().expect("coordinator state");
            shared.board.release_worker(worker)
        };
        if released > 0 {
            event!(
                Level::Warn,
                "study.sched",
                { worker: worker.to_string(), released: released, why: why.to_string() },
                "worker {worker} disconnected ({why}); {released} leased cell(s) \
                 returned to the pool"
            );
        }
        self.coordinator.log_line(
            self.log,
            &format!(
                r#"{{"event":"disconnected","worker":{},"released":{released},"why":{}}}"#,
                json_str(worker),
                json_str(why)
            ),
        );
    }
}

/// JSON string literal (quoted, escaped) for hand-rolled progress lines.
fn json_str(s: &str) -> String {
    serde_json::to_string(&s.to_string()).unwrap_or_else(|_| "\"?\"".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_plan_ordered_and_capped() {
        let mut board = LeaseBoard::new(5, 1_000);
        let grants = board.grant("w0", 3, 0);
        assert_eq!(
            grants.iter().map(|g| g.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(board.inflight("w0"), 3);
        // Distinct lease ids, shared deadline.
        assert_eq!(grants[0].1, 0);
        assert_eq!(grants[1].1, 1);
        assert_eq!(grants[0].2, 1_000);
        // A second worker gets the remainder.
        let grants = board.grant("w1", 10, 5);
        assert_eq!(grants.iter().map(|g| g.0).collect::<Vec<_>>(), vec![3, 4]);
        // Nothing left: an empty grant, not a panic.
        assert!(board.grant("w2", 1, 6).is_empty());
    }

    #[test]
    fn expired_leases_are_regranted_idempotently() {
        let mut board = LeaseBoard::new(2, 100);
        let first = board.grant("dead", 2, 0);
        assert_eq!(first.len(), 2);
        // Before the deadline nothing is reclaimable.
        assert!(board.grant("live", 2, 99).is_empty());
        // At/after the deadline both cells move to the live worker with
        // fresh lease ids.
        let second = board.grant("live", 2, 100);
        assert_eq!(second.len(), 2);
        assert_ne!(first[0].1, second[0].1, "re-grants mint new lease ids");
        assert_eq!(board.inflight("dead"), 0);
        assert_eq!(board.inflight("live"), 2);
        // The dead worker's late submission is still acknowledged once
        // the live worker already finished the cell.
        assert_eq!(board.submit(0), SubmitVerdict::Accept);
        assert_eq!(board.submit(0), SubmitVerdict::AlreadyDone);
        assert_eq!(board.done, 1);
    }

    #[test]
    fn release_worker_returns_cells_immediately() {
        let mut board = LeaseBoard::new(3, 1_000_000);
        board.grant("w0", 2, 0);
        board.grant("w1", 1, 0);
        assert_eq!(board.release_worker("w0"), 2);
        // Long before any deadline, the released cells are grantable.
        let grants = board.grant("w1", 3, 1);
        assert_eq!(grants.len(), 2);
        assert_eq!(board.inflight("w1"), 3);
        assert_eq!(board.release_worker("w0"), 0, "idempotent");
    }

    #[test]
    fn store_served_cells_never_enter_the_lease_pool() {
        let mut board = LeaseBoard::new(3, 1_000);
        board.mark_done(1);
        board.mark_done(1); // idempotent
        assert_eq!(board.done, 1);
        let grants = board.grant("w0", 3, 0);
        assert_eq!(
            grants.iter().map(|g| g.0).collect::<Vec<_>>(),
            vec![0, 2],
            "the store-served cell is skipped"
        );
        assert_eq!(board.submit(0), SubmitVerdict::Accept);
        assert_eq!(board.submit(2), SubmitVerdict::Accept);
        assert!(board.all_done());
    }
}
