//! Wire protocol of the distributed campaign service.
//!
//! Frames are length-prefixed JSON: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 JSON. JSON keeps the protocol
//! inspectable with `nc`/`tcpdump` and reuses the vendored serde stack,
//! whose `f64` encoding is shortest-roundtrip and therefore bit-exact —
//! a [`CellResult`] survives the wire unchanged, which the distributed
//! == serial equivalence guarantee depends on.
//!
//! The conversation is strictly client-driven request/response:
//!
//! ```text
//! worker                        coordinator
//!   Hello{version, worker}  ->
//!                           <-  Welcome{version, config, cells} | Reject
//!   Lease{want}             ->
//!                           <-  Leases{grants} | Wait{ms} | Done
//!   Submit{lease, hash,     ->
//!          key, result}
//!                           <-  Accepted{lease} | Rejected{lease, reason}
//!   Bye                     ->
//!                           <-  Bye
//! ```
//!
//! Version skew is rejected at `Hello` time, before any study state is
//! exchanged.

use crate::study::{CellKey, CellResult, StudyConfig};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Protocol revision; bumped whenever a frame's shape changes. A worker
/// and coordinator with different versions refuse to talk rather than
/// mis-deserialize each other.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one frame's payload, protecting both sides from a
/// corrupt or hostile length prefix. A full paper-grid `StudyConfig` and
/// the largest `CellResult` are each well under a megabyte.
pub const MAX_FRAME: usize = 64 << 20;

/// One leased cell: everything a worker needs to execute it and submit
/// the result back under the right address.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseGrant {
    /// Coordinator-unique lease id; quoted back in the `Submit`.
    pub lease: u64,
    /// The grid coordinate to execute.
    pub key: CellKey,
    /// The coordinator's content hash for the cell (see
    /// [`crate::cell_config_hash`]); the worker re-derives and
    /// cross-checks it, so a mismatched coordinator is caught before any
    /// injection work is spent.
    pub hash: String,
    /// Coordinator-clock deadline (milliseconds since it started serving).
    /// Informational for the worker: past it, the cell may be re-leased.
    pub deadline_ms: u64,
}

/// Worker → coordinator messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Opens the conversation; `worker` is a display name for telemetry.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
        /// Worker display name (made unique per connection server-side).
        worker: String,
    },
    /// Asks for up to `want` cells to execute.
    Lease {
        /// Maximum number of grants the worker can take right now.
        want: usize,
    },
    /// Returns one executed cell.
    Submit {
        /// The lease id from the grant.
        lease: u64,
        /// The grant's content hash, echoed back.
        hash: String,
        /// The grant's cell key, echoed back.
        key: CellKey,
        /// The measured cell.
        result: CellResult,
    },
    /// Ends the conversation.
    Bye,
}

/// Coordinator → worker messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Accepts a `Hello`: the full study configuration (workers derive
    /// everything — sources, compile flags, seeds — from it) and the grid
    /// size, for progress display.
    Welcome {
        /// Coordinator's [`PROTOCOL_VERSION`].
        version: u32,
        /// The study the worker will execute cells of.
        config: StudyConfig,
        /// Total cells in the plan.
        cells: usize,
    },
    /// Refuses a `Hello` (version skew).
    Reject {
        /// Human-readable refusal.
        reason: String,
    },
    /// Grants zero or more cells in response to `Lease`.
    Leases {
        /// The granted cells, in plan order.
        grants: Vec<LeaseGrant>,
    },
    /// Nothing grantable right now (every remaining cell is leased out);
    /// retry after `ms` milliseconds.
    Wait {
        /// Suggested retry delay.
        ms: u64,
    },
    /// Every cell is complete; the worker should say `Bye`.
    Done,
    /// A `Submit` passed verification and was persisted.
    Accepted {
        /// The submitted lease id.
        lease: u64,
    },
    /// A `Submit` failed verification and was discarded.
    Rejected {
        /// The submitted lease id.
        lease: u64,
        /// What the verification objected to.
        reason: String,
    },
    /// Acknowledges the worker's `Bye`.
    Bye,
}

/// Serializes `msg` as one length-prefixed JSON frame.
///
/// # Errors
///
/// Propagates write failures; an over-[`MAX_FRAME`] payload is an
/// `InvalidData` error (nothing is written).
pub fn write_frame<T: Serialize>(w: &mut impl Write, msg: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    if json.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", json.len()),
        ));
    }
    w.write_all(&(json.len() as u32).to_be_bytes())?;
    w.write_all(json.as_bytes())?;
    w.flush()
}

/// Reads and deserializes one length-prefixed JSON frame.
///
/// # Errors
///
/// `UnexpectedEof` when the peer closed the connection (clean or not),
/// `InvalidData` for an oversized length prefix or a payload that is not
/// valid `T`, and any underlying read failure (including a read-timeout
/// `WouldBlock`/`TimedOut`, which callers treat as a dead peer).
pub fn read_frame<T: Deserialize>(r: &mut impl Read) -> std::io::Result<T> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let json = std::str::from_utf8(&payload)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    serde_json::from_str(json)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use softerr_cc::OptLevel;
    use softerr_workloads::Workload;

    #[test]
    fn frames_roundtrip_through_a_buffer() {
        let msgs = vec![
            Request::Hello {
                version: PROTOCOL_VERSION,
                worker: "w0".into(),
            },
            Request::Lease { want: 3 },
            Request::Bye,
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut r = buf.as_slice();
        for m in &msgs {
            let back: Request = read_frame(&mut r).unwrap();
            assert_eq!(&back, m);
        }
        // The stream is fully consumed; one more read is a clean EOF.
        assert_eq!(
            read_frame::<Request>(&mut r).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn study_config_survives_the_wire_bit_exactly() {
        let cfg = StudyConfig::default();
        let msg = Response::Welcome {
            version: PROTOCOL_VERSION,
            config: cfg.clone(),
            cells: 64,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let back: Response = read_frame(&mut buf.as_slice()).unwrap();
        match back {
            Response::Welcome { config, cells, .. } => {
                assert_eq!(config, cfg, "config must roundtrip exactly");
                assert_eq!(cells, 64);
            }
            other => panic!("expected Welcome, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"garbage");
        assert_eq!(
            read_frame::<Request>(&mut buf.as_slice())
                .unwrap_err()
                .kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn grants_roundtrip() {
        let msg = Response::Leases {
            grants: vec![LeaseGrant {
                lease: 7,
                key: CellKey {
                    machine: "Cortex-A15-like".into(),
                    workload: Workload::Qsort,
                    level: OptLevel::O2,
                },
                hash: "00deadbeef00cafe".into(),
                deadline_ms: 60_000,
            }],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let back: Response = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(back, msg);
    }
}
