//! The worker side of the distributed campaign service.
//!
//! A worker is stateless and owns nothing: it connects, learns the full
//! [`StudyConfig`] from the coordinator's `Welcome`, and then loops
//! lease → compile (cached per compile unit) → execute → submit until
//! the coordinator says `Done`. All persistence happens on the
//! coordinator; a worker that dies mid-lease loses only wall-clock time,
//! never data, because its cells are re-leased after the deadline.
//!
//! Execution goes through the same `run_cell` path as the in-process
//! orchestrator, so a remotely-executed cell is bit-identical to a local
//! one.

use super::wire::{self, LeaseGrant, Request, Response, PROTOCOL_VERSION};
use crate::sched::run_cell;
use crate::study::{StudyConfig, StudyError};
use softerr_cc::{Compiled, Compiler, OptLevel};
use softerr_isa::Profile;
use softerr_sim::MachineConfig;
use softerr_telemetry::{event, Level};
use softerr_workloads::Workload;
use std::net::TcpStream;
use std::time::Duration;

/// Tuning and test knobs for [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Display name reported in the coordinator's telemetry (the
    /// coordinator appends a connection id to keep it unique).
    pub name: String,
    /// Cells requested per `Lease` round trip; the coordinator may grant
    /// fewer (its per-worker in-flight cap is the real backpressure).
    pub capacity: usize,
    /// Stop after completing this many cells (`None` = run to `Done`).
    pub max_cells: Option<usize>,
    /// Test hook simulating a worker crash: after this many cells have
    /// been *leased*, drop the connection without completing or
    /// returning them, leaving the coordinator to re-lease after the
    /// deadline.
    pub abandon_after: Option<usize>,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions {
            name: "worker".to_string(),
            capacity: 1,
            max_cells: None,
            abandon_after: None,
        }
    }
}

/// What one [`run_worker`] invocation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// Cells executed and accepted by the coordinator.
    pub completed: usize,
    /// Submissions the coordinator rejected.
    pub rejected: usize,
    /// True when the worker dropped the connection via
    /// [`WorkerOptions::abandon_after`].
    pub abandoned: bool,
}

/// Connects to a coordinator at `addr` (e.g. `127.0.0.1:7077`) and
/// executes leased cells until the study completes (or an option says to
/// stop earlier).
///
/// # Errors
///
/// * [`StudyError::Config`] when the coordinator rejects the handshake,
///   answers out of protocol, or serves a config this build cannot
///   execute (unknown machine, hash disagreement — a worker double-checks
///   every grant's hash against its own [`crate::cell_config_hash`]),
/// * [`StudyError::Compile`] / [`StudyError::Golden`] when a cell's
///   program is broken,
/// * [`StudyError::Io`] for transport failures.
pub fn run_worker(addr: &str, opts: &WorkerOptions) -> Result<WorkerReport, StudyError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let config = hello(&mut stream, &opts.name)?;
    config.validate().map_err(StudyError::Config)?;

    // Compile cache, keyed like the orchestrator's compile units. Linear
    // scan: a worker sees at most (profiles × workloads × levels) units.
    let mut units: Vec<((Profile, Workload, OptLevel), Compiled)> = Vec::new();
    let mut report = WorkerReport {
        completed: 0,
        rejected: 0,
        abandoned: false,
    };
    let mut leased_total = 0usize;

    loop {
        if let Some(max) = opts.max_cells {
            if report.completed >= max {
                break;
            }
        }
        wire::write_frame(
            &mut stream,
            &Request::Lease {
                want: opts.capacity.max(1),
            },
        )?;
        match wire::read_frame::<Response>(&mut stream)? {
            Response::Leases { grants } => {
                for grant in grants {
                    leased_total += 1;
                    if let Some(after) = opts.abandon_after {
                        if leased_total > after {
                            // Simulated crash: vanish with the lease.
                            report.abandoned = true;
                            event!(
                                Level::Warn,
                                "study.sched",
                                { worker: opts.name.clone(), leased: leased_total },
                                "worker {} abandoning after {} lease(s) (test hook)",
                                opts.name,
                                leased_total - 1
                            );
                            return Ok(report);
                        }
                    }
                    execute_grant(&mut stream, &config, &mut units, &grant, &mut report)?;
                }
            }
            Response::Wait { ms } => {
                std::thread::sleep(Duration::from_millis(ms.clamp(10, 2_000)));
            }
            Response::Done => break,
            other => {
                return Err(StudyError::Config(format!(
                    "coordinator answered Lease with {other:?}"
                )))
            }
        }
    }
    wire::write_frame(&mut stream, &Request::Bye)?;
    // The acknowledgement is best-effort: a coordinator tearing down
    // right after the final cell may already be gone.
    let _ = wire::read_frame::<Response>(&mut stream);
    event!(
        Level::Info,
        "study.sched",
        { worker: opts.name.clone(), completed: report.completed, rejected: report.rejected },
        "worker {} done: {} cell(s) completed, {} rejected",
        opts.name,
        report.completed,
        report.rejected
    );
    Ok(report)
}

/// Handshake: `Hello` out, `Welcome` (with the study config) back.
fn hello(stream: &mut TcpStream, name: &str) -> Result<StudyConfig, StudyError> {
    wire::write_frame(
        stream,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            worker: name.to_string(),
        },
    )?;
    match wire::read_frame::<Response>(stream)? {
        Response::Welcome {
            version,
            config,
            cells,
        } => {
            if version != PROTOCOL_VERSION {
                return Err(StudyError::Config(format!(
                    "coordinator speaks protocol v{version}, this worker v{PROTOCOL_VERSION}"
                )));
            }
            event!(
                Level::Info,
                "study.sched",
                { worker: name.to_string(), cells: cells },
                "worker {name} joined a {cells}-cell study"
            );
            Ok(config)
        }
        Response::Reject { reason } => Err(StudyError::Config(format!(
            "coordinator rejected the handshake: {reason}"
        ))),
        other => Err(StudyError::Config(format!(
            "coordinator answered Hello with {other:?}"
        ))),
    }
}

/// Executes one granted cell and submits the result.
fn execute_grant(
    stream: &mut TcpStream,
    config: &StudyConfig,
    units: &mut Vec<((Profile, Workload, OptLevel), Compiled)>,
    grant: &LeaseGrant,
    report: &mut WorkerReport,
) -> Result<(), StudyError> {
    let key = &grant.key;
    let machine: &MachineConfig = config
        .machines
        .iter()
        .find(|m| m.name == key.machine)
        .ok_or_else(|| {
            StudyError::Config(format!(
                "grant names machine {:?} which is not in the served config",
                key.machine
            ))
        })?;
    // Defend against a confused (or hostile) coordinator: the lease's
    // hash must match what this build derives from the served config, or
    // the executed cell would be stored under a key it does not answer to.
    let expected = crate::store::cell_config_hash(config, machine, key.workload, key.level);
    if expected != grant.hash {
        return Err(StudyError::Config(format!(
            "lease hash {} disagrees with locally derived {expected} for {key} \
             (version or config skew between worker and coordinator)",
            grant.hash
        )));
    }
    let unit_key = (machine.profile, key.workload, key.level);
    if !units.iter().any(|(k, _)| *k == unit_key) {
        let compiled = Compiler::new(machine.profile, key.level)
            .compile(&key.workload.source(config.scale))
            .map_err(|e| StudyError::Compile(format!("{} at {}: {e}", key.workload, key.level)))?;
        units.push((unit_key, compiled));
    }
    let compiled = units
        .iter()
        .find_map(|(k, c)| (*k == unit_key).then_some(c))
        .expect("just inserted");
    let result = run_cell(config, machine, compiled).map_err(|e| {
        StudyError::Golden(format!(
            "{} at {} on {}: {e}",
            key.workload, key.level, key.machine
        ))
    })?;
    wire::write_frame(
        stream,
        &Request::Submit {
            lease: grant.lease,
            hash: grant.hash.clone(),
            key: key.clone(),
            result,
        },
    )?;
    match wire::read_frame::<Response>(stream)? {
        Response::Accepted { .. } => {
            report.completed += 1;
            Ok(())
        }
        Response::Rejected { reason, .. } => {
            report.rejected += 1;
            event!(
                Level::Warn,
                "study.sched",
                { cell: key.to_string(), reason: reason.clone() },
                "coordinator rejected {key}: {reason}"
            );
            Ok(())
        }
        other => Err(StudyError::Config(format!(
            "coordinator answered Submit with {other:?}"
        ))),
    }
}
