//! Content-addressed on-disk store of completed study cells.
//!
//! Every (machine, workload, level) cell of a study is persisted as one
//! JSON file named by the FNV-1a hash of the *full* configuration that
//! produced it — machine geometry, workload, optimization level, input
//! scale, the full sampling plan (sampler kind, stopping rule, prune
//! policy), seed, checkpointing mode, structure list, and crate version.
//! Because the key is derived from content, a re-run with
//! any parameter changed misses the store and re-executes, while an
//! identical re-run (or a study killed halfway and restarted) is served
//! from disk without re-simulating a single fault. This replaces the old
//! whole-study JSON cache that was keyed by `(scale, injections, seed)`
//! only and silently served stale figures when anything else changed.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/cells/<16-hex-hash>.json   one StoredCell per completed cell
//! <root>/cells/quarantine/          hash-mismatched / unparsable entries
//! ```
//!
//! Loads verify the embedded hash and cell key against the request; a
//! mismatch (corrupted, renamed, or version-skewed file) is reported on
//! the `study.store` telemetry target, moved aside into `cells/quarantine/`
//! so it cannot re-warn on every later lookup, and treated as a miss,
//! never served. A read that fails for any reason *other* than the file
//! being absent (permissions, I/O) is **not** a plain miss: it is counted
//! separately ([`ResultStore::read_errors`]) and warned about, because
//! silently re-running a cell that is actually on disk burns hours of
//! injections.
//!
//! The store is safe for concurrent writers across *processes*, not just
//! threads: every save writes through a tmp path unique to the writer
//! (pid + per-process counter) before the atomic rename, so two workers
//! saving the same cell can never interleave their write bodies into a
//! torn file. When both rename, the last one wins — benign, because the
//! content-addressed key guarantees both wrote identical bytes.

use crate::study::{CellKey, CellResult, StudyConfig, StudyError};
use serde::{Deserialize, Serialize};
use softerr_cc::OptLevel;
use softerr_inject::fnv1a;
use softerr_sim::MachineConfig;
use softerr_telemetry::{event, Level};
use softerr_workloads::Workload;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Content hash (16 hex digits) of one study cell's full configuration:
/// everything that can change the cell's measured result, plus the crate
/// version so stores never leak across incompatible builds. Worker-thread
/// count is deliberately excluded — campaigns are bit-identical across
/// thread counts, so a store written with `--threads 8` serves a
/// single-threaded re-run and vice versa.
pub fn cell_config_hash(
    config: &StudyConfig,
    machine: &MachineConfig,
    workload: Workload,
    level: OptLevel,
) -> String {
    let canonical = format!(
        "v{}|machine={:?}|workload={}|level={}|scale={}|sampler={:?}|stop={:?}|prune={:?}|seed={}|checkpoint={}|structures={:?}",
        env!("CARGO_PKG_VERSION"),
        machine,
        workload,
        level,
        config.scale,
        config.plan.sampler,
        config.plan.stop,
        config.plan.prune,
        config.seed,
        config.checkpoint,
        config.structures,
    );
    format!("{:016x}", fnv1a(canonical.as_bytes()))
}

/// On-disk representation of one completed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoredCell {
    /// Crate version that wrote the file (informational; the version is
    /// also folded into the hash, so skew shows up as a plain miss).
    version: String,
    /// The content hash the file claims to be stored under.
    config_hash: String,
    /// The grid coordinate of the cell.
    key: CellKey,
    /// The measured cell.
    result: CellResult,
}

/// A content-addressed directory of completed study cells with hit/miss
/// accounting. Thread-safe: the orchestrator's cell workers load and save
/// concurrently through a shared reference.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    read_errors: AtomicU64,
    quarantined: AtomicU64,
}

/// Makes concurrent saves from the same process distinguishable; combined
/// with the pid this yields a tmp path no other writer (thread *or*
/// process) can be using.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl ResultStore {
    /// Opens (creating if necessary) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StudyError::Io`] if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<ResultStore, StudyError> {
        let root = root.into();
        std::fs::create_dir_all(root.join("cells"))?;
        Ok(ResultStore {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn cell_path(&self, hash: &str) -> PathBuf {
        self.root.join("cells").join(format!("{hash}.json"))
    }

    /// Moves a corrupted or mislabeled entry into `cells/quarantine/` (so
    /// it cannot re-warn on every later lookup) under a writer-unique name.
    /// The directory is created lazily — a healthy store never has one.
    fn quarantine(&self, path: &Path, reason: &str) {
        let dir = self.root.join("cells").join("quarantine");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            event!(
                Level::Warn,
                "study.store",
                { path: path.display().to_string() },
                "cannot create quarantine directory for {} ({e}); leaving the bad entry in place",
                path.display()
            );
            return;
        }
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "cell".to_string());
        let dest = dir.join(format!(
            "{name}.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // A concurrent process may have quarantined (or overwritten) the
        // entry first; a NotFound rename is then the desired end state.
        match std::fs::rename(path, &dest) {
            Ok(()) => {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                event!(
                    Level::Warn,
                    "study.store",
                    {
                        path: path.display().to_string(),
                        quarantined: dest.display().to_string()
                    },
                    "{reason}; quarantined {} to {} and re-running the cell",
                    path.display(),
                    dest.display()
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => event!(
                Level::Warn,
                "study.store",
                { path: path.display().to_string() },
                "{reason}; quarantine of {} failed ({e}); re-running the cell",
                path.display()
            ),
        }
    }

    /// Loads the cell stored under `hash`, verifying that the file really
    /// holds that hash and `key`. A mismatch or parse failure is reported
    /// via `event!`, quarantined, and counted as a miss — a stale or
    /// corrupted entry is never silently served. An absent file is a plain
    /// miss; any *other* read failure (permissions, I/O) is additionally
    /// counted in [`ResultStore::read_errors`] and warned about, since it
    /// means a cell that may well be on disk is about to re-run.
    pub fn load(&self, hash: &str, key: &CellKey) -> Option<CellResult> {
        let path = self.cell_path(hash);
        let json = match std::fs::read_to_string(&path) {
            Ok(json) => json,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(e) => {
                event!(
                    Level::Warn,
                    "study.store",
                    { path: path.display().to_string(), kind: format!("{:?}", e.kind()) },
                    "result store read error at {} ({e}): this is NOT a plain miss — the \
                     cell may exist but could not be read; re-running it",
                    path.display()
                );
                self.read_errors.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let stored: StoredCell = match serde_json::from_str(&json) {
            Ok(stored) => stored,
            Err(e) => {
                self.quarantine(&path, &format!("unreadable cell in result store ({e})"));
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if stored.config_hash != hash || stored.key != *key {
            self.quarantine(
                &path,
                &format!(
                    "result store hash mismatch (expected {hash}, file claims {} for {})",
                    stored.config_hash, stored.key
                ),
            );
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(stored.result)
    }

    /// Persists one completed cell under `hash`. The write goes through a
    /// temporary file unique to this writer (pid + per-process sequence
    /// number) and an atomic rename, so a killed study never leaves a
    /// half-written cell behind and concurrent saves of the same cell from
    /// different processes can never tear each other's bodies. If two
    /// writers race the final rename, the last one wins — benign, because
    /// the content-addressed key means both hold identical bytes.
    ///
    /// # Errors
    ///
    /// [`StudyError::Io`] / [`StudyError::Format`] on failure.
    pub fn save(&self, hash: &str, key: &CellKey, result: &CellResult) -> Result<(), StudyError> {
        let stored = StoredCell {
            version: env!("CARGO_PKG_VERSION").to_string(),
            config_hash: hash.to_string(),
            key: key.clone(),
            result: result.clone(),
        };
        let path = self.cell_path(hash);
        let tmp = self.root.join("cells").join(format!(
            "{hash}.json.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, serde_json::to_string(&stored)?)?;
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        self.stores.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Cells served from disk so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found no valid entry.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cells written to disk so far.
    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }

    /// Reads that failed for a reason other than the file being absent
    /// (each also counts as a miss; see [`ResultStore::load`]).
    pub fn read_errors(&self) -> u64 {
        self.read_errors.load(Ordering::Relaxed)
    }

    /// Corrupted or hash-mismatched entries moved to `cells/quarantine/`
    /// by this store handle.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softerr_inject::{CampaignResult, ClassCounts, SamplerKind, SamplingPlan};
    use softerr_sim::Structure;

    fn temp_store(tag: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("softerr-store-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ResultStore::open(dir).unwrap()
    }

    fn sample_cell() -> (CellKey, CellResult) {
        (
            CellKey {
                machine: "Cortex-A15-like".into(),
                workload: Workload::Qsort,
                level: OptLevel::O2,
            },
            CellResult {
                golden_cycles: 1234,
                golden_retired: 567,
                code_words: 89,
                campaigns: vec![CampaignResult {
                    structure: Structure::RegFile,
                    bit_population: 2048,
                    golden_cycles: 1234,
                    counts: ClassCounts {
                        masked: 9,
                        sdc: 1,
                        ..ClassCounts::default()
                    },
                    weight: 1.0,
                    live_population: None,
                }],
            },
        )
    }

    #[test]
    fn hash_covers_every_result_determining_parameter() {
        let base = StudyConfig::default();
        let machine = MachineConfig::cortex_a15();
        let h = |cfg: &StudyConfig| cell_config_hash(cfg, &machine, Workload::Sha, OptLevel::O1);
        let baseline = h(&base);
        assert_eq!(baseline, h(&base.clone()), "hash is deterministic");
        let mut c = base.clone();
        c.plan = SamplingPlan::fixed(c.plan.injections() + 1);
        assert_ne!(baseline, h(&c), "injections are keyed");
        let mut c = base.clone();
        c.plan = base.plan.sampler(SamplerKind::Importance);
        assert_ne!(baseline, h(&c), "sampler kind is keyed");
        let mut c = base.clone();
        c.plan = base.plan.sampler(SamplerKind::ImportanceVerify);
        assert_ne!(
            h(&StudyConfig {
                plan: base.plan.sampler(SamplerKind::Importance),
                ..base.clone()
            }),
            h(&c),
            "verify-mode sampling keys separately from plain importance"
        );
        let mut c = base.clone();
        c.seed += 1;
        assert_ne!(baseline, h(&c), "seed is keyed");
        let mut c = base.clone();
        c.checkpoint = !c.checkpoint;
        assert_ne!(baseline, h(&c), "checkpoint mode is keyed");
        let mut c = base.clone();
        c.plan = base.plan.prune(softerr_inject::PruneMode::On);
        assert_ne!(baseline, h(&c), "prune mode is keyed");
        let mut c = base.clone();
        c.plan = base.plan.prune_static(softerr_inject::PruneMode::On);
        assert_ne!(baseline, h(&c), "static prune mode is keyed");
        let mut c = base.clone();
        c.plan = SamplingPlan::adaptive(0.0288, base.plan.injections());
        assert_ne!(baseline, h(&c), "adaptive-sampling target is keyed");
        let mut c = base.clone();
        c.plan = SamplingPlan::adaptive(0.05, base.plan.injections());
        assert_ne!(
            h(&StudyConfig {
                plan: SamplingPlan::adaptive(0.0288, base.plan.injections()),
                ..base.clone()
            }),
            h(&c),
            "different targets key differently"
        );
        let mut c = base.clone();
        c.scale = softerr_workloads::Scale::Full;
        assert_ne!(baseline, h(&c), "scale is keyed");
        let mut c = base.clone();
        c.structures.pop();
        assert_ne!(baseline, h(&c), "structure list is keyed");
        let mut c = base.clone();
        c.threads += 7;
        assert_eq!(
            baseline,
            h(&c),
            "thread count must NOT be keyed: campaigns are thread-count-invariant"
        );
        assert_ne!(
            cell_config_hash(
                &base,
                &MachineConfig::cortex_a72(),
                Workload::Sha,
                OptLevel::O1
            ),
            baseline,
            "machine is keyed"
        );
        assert_ne!(
            cell_config_hash(&base, &machine, Workload::Fft, OptLevel::O1),
            baseline,
            "workload is keyed"
        );
        assert_ne!(
            cell_config_hash(&base, &machine, Workload::Sha, OptLevel::O3),
            baseline,
            "level is keyed"
        );
    }

    #[test]
    fn save_load_roundtrip_counts_hits() {
        let store = temp_store("roundtrip");
        let (key, result) = sample_cell();
        let hash = "00deadbeef00cafe";
        assert!(store.load(hash, &key).is_none());
        assert_eq!(store.misses(), 1);
        store.save(hash, &key, &result).unwrap();
        assert_eq!(store.stores(), 1);
        let loaded = store.load(hash, &key).expect("stored cell loads");
        assert_eq!(loaded, result);
        assert_eq!(store.hits(), 1);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn mismatched_hash_is_a_miss_and_is_quarantined() {
        let store = temp_store("mismatch");
        let (key, result) = sample_cell();
        store.save("1111111111111111", &key, &result).unwrap();
        // Simulate a renamed/corrupted entry: the file exists under the
        // requested name but claims a different hash inside.
        std::fs::rename(
            store.root().join("cells/1111111111111111.json"),
            store.root().join("cells/2222222222222222.json"),
        )
        .unwrap();
        assert!(
            store.load("2222222222222222", &key).is_none(),
            "a hash-mismatched entry must never be served"
        );
        assert_eq!(store.hits(), 0);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.quarantined(), 1);
        assert!(
            !store.root().join("cells/2222222222222222.json").exists(),
            "the mislabeled entry must be moved aside, not left to re-warn forever"
        );
        assert_eq!(
            std::fs::read_dir(store.root().join("cells/quarantine"))
                .unwrap()
                .count(),
            1,
            "quarantine holds the moved entry"
        );
        // The second lookup is a plain miss: the bad file is gone.
        assert!(store.load("2222222222222222", &key).is_none());
        assert_eq!(store.quarantined(), 1, "no double quarantine");
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn unparsable_entry_is_a_miss_and_is_quarantined() {
        let store = temp_store("corrupt");
        let (key, _) = sample_cell();
        std::fs::write(
            store.root().join("cells/3333333333333333.json"),
            "{not json",
        )
        .unwrap();
        assert!(store.load("3333333333333333", &key).is_none());
        assert_eq!(store.misses(), 1);
        assert_eq!(store.quarantined(), 1);
        assert!(!store.root().join("cells/3333333333333333.json").exists());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn absent_cell_is_a_plain_miss_not_a_read_error() {
        let store = temp_store("absent");
        let (key, _) = sample_cell();
        assert!(store.load("4444444444444444", &key).is_none());
        assert_eq!(store.misses(), 1);
        assert_eq!(store.read_errors(), 0, "NotFound is the normal cold path");
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn unreadable_cell_counts_as_a_read_error_not_a_plain_miss() {
        let store = temp_store("readerr");
        let (key, _) = sample_cell();
        // A directory where the cell file should be: read_to_string fails
        // with a non-NotFound kind, the shape of a permissions/IO failure.
        std::fs::create_dir(store.root().join("cells/5555555555555555.json")).unwrap();
        assert!(store.load("5555555555555555", &key).is_none());
        assert_eq!(store.misses(), 1, "still treated as a miss (cell re-runs)");
        assert_eq!(
            store.read_errors(),
            1,
            "but surfaced as a real error, not silently conflated with absence"
        );
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn concurrent_same_cell_saves_never_tear() {
        // Many threads save the same cell simultaneously; every writer
        // goes through its own tmp path, so the final file must always be
        // a complete, verifiable copy and no tmp litter can remain.
        let store = temp_store("race");
        let (key, result) = sample_cell();
        let hash = "6666666666666666";
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        store.save(hash, &key, &result).unwrap();
                    }
                });
            }
        });
        assert_eq!(store.stores(), 200);
        let loaded = store.load(hash, &key).expect("racing saves never tear");
        assert_eq!(loaded, result);
        assert_eq!(store.quarantined(), 0);
        let litter: Vec<String> = std::fs::read_dir(store.root().join("cells"))
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp"))
            .collect();
        assert!(litter.is_empty(), "tmp litter left behind: {litter:?}");
        std::fs::remove_dir_all(store.root()).ok();
    }
}
