//! Study orchestration: the full compile → simulate → inject → analyze
//! pipeline over a (machines × workloads × levels × structures) grid.

use crate::sched::Orchestrator;
use serde::{Deserialize, Serialize};
use softerr_analysis::{weighted_avf, EccScheme, StructureMeasurement};
use softerr_cc::OptLevel;
use softerr_inject::{CampaignResult, FaultClass, SamplingPlan};
use softerr_sim::{MachineConfig, Structure};
use softerr_workloads::{Scale, Workload};
use std::fmt;
use std::path::Path;
use std::sync::Mutex;

/// Configuration of a characterization study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Machines to evaluate (the paper uses both Table I configurations).
    pub machines: Vec<MachineConfig>,
    /// Benchmarks (the paper uses all eight).
    pub workloads: Vec<Workload>,
    /// Optimization levels (the paper uses O0–O3).
    pub levels: Vec<OptLevel>,
    /// Structure fields to inject into (the paper uses all fifteen).
    pub structures: Vec<Structure>,
    /// Input scale for the workloads.
    pub scale: Scale,
    /// Per-cell sampling plan: the sampling distribution, stopping rule,
    /// and prune policy every campaign in the grid runs under (see
    /// [`SamplingPlan`]). Replaces the former flat `injections` /
    /// `target_margin` / `prune` / `prune_static` knobs.
    pub plan: SamplingPlan,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Worker threads per campaign.
    pub threads: usize,
    /// Golden-prefix checkpointing for each campaign (see
    /// [`softerr_inject::CampaignConfig::checkpoint`]). Results are
    /// identical either way; checkpointing is just faster.
    pub checkpoint: bool,
}

impl Default for StudyConfig {
    /// The full paper grid at a laptop-scale sample size.
    fn default() -> StudyConfig {
        StudyConfig {
            machines: MachineConfig::paper_machines(),
            workloads: Workload::ALL.to_vec(),
            levels: OptLevel::ALL.to_vec(),
            structures: Structure::ALL.to_vec(),
            scale: Scale::Tiny,
            plan: SamplingPlan::fixed(100),
            seed: 0x5EED,
            threads: 1,
            checkpoint: true,
        }
    }
}

impl StudyConfig {
    /// A fast smoke configuration: two contrasting workloads, two levels,
    /// all structures, few injections.
    pub fn quick(seed: u64) -> StudyConfig {
        StudyConfig {
            workloads: vec![Workload::Qsort, Workload::Sha],
            levels: vec![OptLevel::O0, OptLevel::O2],
            plan: SamplingPlan::fixed(24),
            seed,
            ..StudyConfig::default()
        }
    }

    /// The paper-scale configuration: 2,000 injections per cell over the
    /// `Full` input scale (1,920,000 runs — needs a large machine).
    pub fn paper(seed: u64) -> StudyConfig {
        StudyConfig {
            scale: Scale::Full,
            plan: SamplingPlan::fixed(2000),
            seed,
            ..StudyConfig::default()
        }
    }

    /// Total number of injection runs this configuration performs.
    pub fn total_injections(&self) -> u64 {
        self.machines.len() as u64
            * self.workloads.len() as u64
            * self.levels.len() as u64
            * self.structures.len() as u64
            * self.plan.injections()
    }

    /// A builder pre-seeded with [`StudyConfig::default`], whose
    /// [`build`](StudyConfigBuilder::build) validates the grid instead of
    /// letting an empty axis or zero thread count surface as a confusing
    /// downstream failure.
    pub fn builder() -> StudyConfigBuilder {
        StudyConfigBuilder {
            config: StudyConfig::default(),
        }
    }

    /// Checks the configuration for degenerate values: every grid axis
    /// must be non-empty, `threads` non-zero, and the sampling plan
    /// self-consistent (see [`SamplingPlan::validate`] — a margin target
    /// outside `(0, 1)` or an importance sampler combined with
    /// `prune = verify` is rejected here rather than surfacing as a
    /// confusing downstream failure).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.machines.is_empty() {
            return Err("study has no machines: add at least one MachineConfig".to_string());
        }
        if self.workloads.is_empty() {
            return Err("study has no workloads: add at least one Workload".to_string());
        }
        if self.levels.is_empty() {
            return Err("study has no optimization levels: add at least one OptLevel".to_string());
        }
        if self.structures.is_empty() {
            return Err("study has no structures: add at least one Structure".to_string());
        }
        if self.threads == 0 {
            return Err(
                "threads must be at least 1 (0 worker threads can run nothing)".to_string(),
            );
        }
        self.plan.validate()?;
        Ok(())
    }
}

/// Validating builder for [`StudyConfig`].
///
/// ```
/// use softerr::{OptLevel, SamplingPlan, StudyConfig, Workload};
///
/// let cfg = StudyConfig::builder()
///     .workloads(vec![Workload::Qsort])
///     .levels(vec![OptLevel::O0, OptLevel::O2])
///     .plan(SamplingPlan::fixed(50))
///     .seed(7)
///     .build()
///     .expect("non-degenerate grid");
/// assert_eq!(cfg.total_injections(), 2 * 1 * 2 * 15 * 50);
/// assert!(StudyConfig::builder().workloads(vec![]).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct StudyConfigBuilder {
    config: StudyConfig,
}

impl StudyConfigBuilder {
    /// Machines to evaluate.
    pub fn machines(mut self, machines: Vec<MachineConfig>) -> StudyConfigBuilder {
        self.config.machines = machines;
        self
    }

    /// Benchmarks to run.
    pub fn workloads(mut self, workloads: Vec<Workload>) -> StudyConfigBuilder {
        self.config.workloads = workloads;
        self
    }

    /// Optimization levels to sweep.
    pub fn levels(mut self, levels: Vec<OptLevel>) -> StudyConfigBuilder {
        self.config.levels = levels;
        self
    }

    /// Structure fields to inject into.
    pub fn structures(mut self, structures: Vec<Structure>) -> StudyConfigBuilder {
        self.config.structures = structures;
        self
    }

    /// Workload input scale.
    pub fn scale(mut self, scale: Scale) -> StudyConfigBuilder {
        self.config.scale = scale;
        self
    }

    /// Per-cell sampling plan (distribution, stopping rule, prune policy).
    pub fn plan(mut self, plan: SamplingPlan) -> StudyConfigBuilder {
        self.config.plan = plan;
        self
    }

    /// Campaign RNG seed.
    pub fn seed(mut self, seed: u64) -> StudyConfigBuilder {
        self.config.seed = seed;
        self
    }

    /// Worker threads per campaign.
    pub fn threads(mut self, threads: usize) -> StudyConfigBuilder {
        self.config.threads = threads;
        self
    }

    /// Golden-prefix checkpointing per campaign.
    pub fn checkpoint(mut self, checkpoint: bool) -> StudyConfigBuilder {
        self.config.checkpoint = checkpoint;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`StudyError::Config`] for an empty grid axis or `threads == 0`
    /// (see [`StudyConfig::validate`]).
    pub fn build(self) -> Result<StudyConfig, StudyError> {
        self.config.validate().map_err(StudyError::Config)?;
        Ok(self.config)
    }
}

/// Identifies one (machine, workload, level) cell of the study grid.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellKey {
    /// Machine name (from [`MachineConfig::name`]).
    pub machine: String,
    /// Benchmark.
    pub workload: Workload,
    /// Optimization level.
    pub level: OptLevel,
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.machine, self.workload, self.level)
    }
}

/// Measured data of one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Fault-free execution time in cycles.
    pub golden_cycles: u64,
    /// Fault-free retired instruction count.
    pub golden_retired: u64,
    /// Static code size in instruction words.
    pub code_words: u64,
    /// One campaign result per structure.
    pub campaigns: Vec<CampaignResult>,
}

impl CellResult {
    /// The campaign for one structure.
    pub fn campaign(&self, s: Structure) -> Option<&CampaignResult> {
        self.campaigns.iter().find(|c| c.structure == s)
    }

    /// Converts the campaigns to analysis measurements.
    pub fn measurements(&self) -> Vec<StructureMeasurement> {
        self.campaigns
            .iter()
            .map(|c| StructureMeasurement {
                structure: c.structure,
                bits: c.bit_population,
                counts: c.counts,
            })
            .collect()
    }
}

/// Errors raised while running a study.
#[derive(Debug)]
pub enum StudyError {
    /// The configuration is degenerate (empty grid axis, zero threads).
    Config(String),
    /// A workload failed to compile (compiler or workload bug).
    Compile(String),
    /// A fault-free run did not halt cleanly (simulator or workload bug).
    Golden(String),
    /// Result persistence failed.
    Io(std::io::Error),
    /// Result deserialization failed.
    Format(serde_json::Error),
    /// A budgeted sweep stopped before measuring every cell; completed
    /// cells are already persisted, so re-running resumes where it left
    /// off (see [`Orchestrator::cell_budget`]).
    Incomplete {
        /// Cells measured (executed or store-served) before the budget ran out.
        completed: usize,
        /// Cells in the study grid.
        total: usize,
    },
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Config(m) => write!(f, "invalid study configuration: {m}"),
            StudyError::Compile(m) => write!(f, "compilation failed: {m}"),
            StudyError::Golden(m) => write!(f, "golden run failed: {m}"),
            StudyError::Io(e) => write!(f, "i/o error: {e}"),
            StudyError::Format(e) => write!(f, "result format error: {e}"),
            StudyError::Incomplete { completed, total } => write!(
                f,
                "study incomplete: cell budget reached after {completed}/{total} cells \
                 (completed cells are persisted; re-run to resume)"
            ),
        }
    }
}

impl std::error::Error for StudyError {}

impl From<std::io::Error> for StudyError {
    fn from(e: std::io::Error) -> StudyError {
        StudyError::Io(e)
    }
}

impl From<serde_json::Error> for StudyError {
    fn from(e: serde_json::Error) -> StudyError {
        StudyError::Format(e)
    }
}

/// A configured study, ready to run.
#[derive(Debug, Clone)]
pub struct Study {
    config: StudyConfig,
}

impl Study {
    /// Creates a study from a configuration.
    pub fn new(config: StudyConfig) -> Study {
        Study { config }
    }

    /// The configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Runs the full grid serially. A thin wrapper over a one-worker
    /// [`Orchestrator`]; use the orchestrator directly for cell
    /// parallelism, a result store, or budgeted/resumable sweeps.
    ///
    /// # Errors
    ///
    /// [`StudyError`] if the configuration is degenerate or any workload
    /// fails to compile or to complete its fault-free run.
    pub fn run(&self) -> Result<StudyResults, StudyError> {
        self.run_with_progress(|_| {})
    }

    /// Runs the full grid serially, reporting each completed cell to
    /// `progress` as `[done/total] machine/workload/level`.
    ///
    /// # Errors
    ///
    /// As for [`Study::run`].
    pub fn run_with_progress(
        &self,
        mut progress: impl FnMut(&str) + Send,
    ) -> Result<StudyResults, StudyError> {
        // The orchestrator's callback is shared across cell workers and so
        // must be `Fn + Sync`; with one worker the Mutex is uncontended and
        // keeps this signature caller-friendly (`FnMut`).
        let progress: Mutex<&mut (dyn FnMut(&str) + Send)> = Mutex::new(&mut progress);
        Orchestrator::new(self.config.clone())
            .execute(&|msg| (progress.lock().expect("progress callback"))(msg))
            .map(|report| report.results)
    }
}

/// Complete measured results of a study, queryable and persistable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyResults {
    /// The configuration that produced these results.
    pub config: StudyConfig,
    /// All measured cells.
    pub cells: Vec<(CellKey, CellResult)>,
}

impl StudyResults {
    /// The machine names in the study, in configuration order.
    pub fn machine_names(&self) -> Vec<String> {
        self.config
            .machines
            .iter()
            .map(|m| m.name.clone())
            .collect()
    }

    /// The machine configuration by name.
    pub fn machine(&self, name: &str) -> Option<&MachineConfig> {
        self.config.machines.iter().find(|m| m.name == name)
    }

    /// Looks up one cell.
    pub fn cell(&self, machine: &str, workload: Workload, level: OptLevel) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|(k, _)| k.machine == machine && k.workload == workload && k.level == level)
            .map(|(_, c)| c)
    }

    /// AVF of one structure in one cell.
    pub fn avf(
        &self,
        machine: &str,
        workload: Workload,
        level: OptLevel,
        structure: Structure,
    ) -> f64 {
        self.cell(machine, workload, level)
            .and_then(|c| c.campaign(structure))
            .map_or(0.0, |c| c.avf())
    }

    /// Fraction of one fault class in one cell/structure.
    pub fn fraction(
        &self,
        machine: &str,
        workload: Workload,
        level: OptLevel,
        structure: Structure,
        class: FaultClass,
    ) -> f64 {
        self.cell(machine, workload, level)
            .and_then(|c| c.campaign(structure))
            .map_or(0.0, |c| c.fraction(class))
    }

    /// Execution-time-weighted AVF of a structure over all workloads
    /// (paper eq. 1; the rightmost "wAVF" bars of Figs. 2–8).
    pub fn weighted_avf(&self, machine: &str, level: OptLevel, structure: Structure) -> f64 {
        let items: Vec<(f64, u64)> = self
            .config
            .workloads
            .iter()
            .filter_map(|&w| {
                let cell = self.cell(machine, w, level)?;
                let avf = cell.campaign(structure)?.avf();
                Some((avf, cell.golden_cycles))
            })
            .collect();
        weighted_avf(&items)
    }

    /// Weighted per-class fraction of a structure over all workloads.
    pub fn weighted_fraction(
        &self,
        machine: &str,
        level: OptLevel,
        structure: Structure,
        class: FaultClass,
    ) -> f64 {
        let items: Vec<(f64, u64)> = self
            .config
            .workloads
            .iter()
            .filter_map(|&w| {
                let cell = self.cell(machine, w, level)?;
                let frac = cell.campaign(structure)?.fraction(class);
                Some((frac, cell.golden_cycles))
            })
            .collect();
        weighted_avf(&items)
    }

    /// CPU FIT rate for one cell under an ECC scheme (paper eq. 2 summed
    /// over structures; Figs. 10 and 12).
    pub fn cpu_fit(
        &self,
        machine: &str,
        workload: Workload,
        level: OptLevel,
        ecc: EccScheme,
    ) -> f64 {
        let Some(cfg) = self.machine(machine) else {
            return 0.0;
        };
        let Some(cell) = self.cell(machine, workload, level) else {
            return 0.0;
        };
        softerr_analysis::cpu_fit(&cell.measurements(), cfg.raw_fit_per_bit, ecc)
    }

    /// CPU FIT split by fault class for one cell (paper Fig. 10).
    pub fn cpu_fit_by_class(
        &self,
        machine: &str,
        workload: Workload,
        level: OptLevel,
        ecc: EccScheme,
    ) -> Vec<(FaultClass, f64)> {
        let Some(cfg) = self.machine(machine) else {
            return Vec::new();
        };
        let Some(cell) = self.cell(machine, workload, level) else {
            return Vec::new();
        };
        softerr_analysis::cpu_fit_by_class(&cell.measurements(), cfg.raw_fit_per_bit, ecc)
    }

    /// CPU FIT at one level aggregated over all workloads using weighted
    /// AVFs (paper Fig. 12).
    pub fn aggregate_cpu_fit(&self, machine: &str, level: OptLevel, ecc: EccScheme) -> f64 {
        let Some(cfg) = self.machine(machine) else {
            return 0.0;
        };
        self.config
            .structures
            .iter()
            .filter(|s| !ecc.protects(**s))
            .map(|&s| {
                let bits = self
                    .config
                    .workloads
                    .iter()
                    .find_map(|&w| {
                        self.cell(machine, w, level)
                            .and_then(|c| c.campaign(s))
                            .map(|c| c.bit_population)
                    })
                    .unwrap_or(0);
                softerr_analysis::fit_of_structure(
                    cfg.raw_fit_per_bit,
                    bits,
                    self.weighted_avf(machine, level, s),
                )
            })
            .sum()
    }

    /// Failures per execution for one cell (paper eq. 3, Fig. 11), using
    /// the machine's clock frequency to convert cycles to seconds.
    pub fn fpe(&self, machine: &str, workload: Workload, level: OptLevel, ecc: EccScheme) -> f64 {
        let Some(cfg) = self.machine(machine) else {
            return 0.0;
        };
        let Some(cell) = self.cell(machine, workload, level) else {
            return 0.0;
        };
        let seconds = cell.golden_cycles as f64 / (cfg.freq_ghz * 1e9);
        softerr_analysis::fpe(self.cpu_fit(machine, workload, level, ecc), seconds)
    }

    /// Golden execution time of one cell, in cycles.
    pub fn cycles(&self, machine: &str, workload: Workload, level: OptLevel) -> u64 {
        self.cell(machine, workload, level)
            .map_or(0, |c| c.golden_cycles)
    }

    /// Speedup of `level` relative to O0 for one cell (paper Fig. 1).
    pub fn speedup_vs_o0(&self, machine: &str, workload: Workload, level: OptLevel) -> f64 {
        let base = self.cycles(machine, workload, OptLevel::O0);
        let this = self.cycles(machine, workload, level);
        if this == 0 {
            return 0.0;
        }
        base as f64 / this as f64
    }

    /// Saves results as JSON.
    ///
    /// # Errors
    ///
    /// [`StudyError::Io`] / [`StudyError::Format`] on failure.
    pub fn save(&self, path: &Path) -> Result<(), StudyError> {
        let json = serde_json::to_string(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads previously saved results.
    ///
    /// # Errors
    ///
    /// [`StudyError::Io`] / [`StudyError::Format`] on failure.
    pub fn load(path: &Path) -> Result<StudyResults, StudyError> {
        let json = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softerr_inject::PruneMode;

    #[test]
    fn config_cardinality() {
        let cfg = StudyConfig::default();
        assert_eq!(cfg.machines.len(), 2);
        assert_eq!(cfg.workloads.len(), 8);
        assert_eq!(cfg.levels.len(), 4);
        assert_eq!(cfg.structures.len(), 15);
        // 2 × 8 × 4 × 15 × n, the paper's 1,920,000 at n = 2000.
        assert_eq!(StudyConfig::paper(0).total_injections(), 1_920_000);
    }

    #[test]
    fn quick_config_is_small() {
        let cfg = StudyConfig::quick(1);
        assert!(cfg.total_injections() < 15_000);
    }

    #[test]
    fn builder_rejects_nonsense_plans() {
        use softerr_inject::SamplerKind;
        assert!(matches!(
            StudyConfig::builder()
                .plan(SamplingPlan::adaptive(0.0, 100))
                .build(),
            Err(StudyError::Config(_))
        ));
        assert!(matches!(
            StudyConfig::builder()
                .plan(
                    SamplingPlan::fixed(10)
                        .sampler(SamplerKind::Importance)
                        .prune(PruneMode::Verify)
                )
                .build(),
            Err(StudyError::Config(_))
        ));
        assert!(StudyConfig::builder()
            .plan(
                SamplingPlan::fixed(10)
                    .sampler(SamplerKind::Importance)
                    .prune(PruneMode::On)
            )
            .build()
            .is_ok());
    }
}
