//! Property-based differential testing of the compiler: randomly generated
//! MiniC programs must produce identical output at every optimization
//! level (the optimizer is semantics-preserving on programs far outside
//! the hand-written test set).

use proptest::prelude::*;
use softerr_cc::{Compiler, OptLevel};
use softerr_isa::{Emulator, Profile};

/// Binary operators used by the generator.
const OPS: [&str; 10] = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"];

#[derive(Debug, Clone)]
enum Stmt {
    /// `vD = vA op (vB | const)`
    Assign {
        dst: usize,
        a: usize,
        op: usize,
        b: Operand,
    },
    /// `if (vA < vB) vD = vA; else vD = expr;`
    Cond { dst: usize, a: usize, b: usize },
    /// `for (i = 0; i < n; i++) vD = vD op vA;`
    Loop {
        dst: usize,
        a: usize,
        op: usize,
        n: u8,
    },
    /// `arr[idxvar & 7] = vA; vD = arr[vB & 7];`
    Mem { dst: usize, a: usize, b: usize },
}

#[derive(Debug, Clone, Copy)]
enum Operand {
    Var(usize),
    Const(i16),
}

const NVARS: usize = 5;

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let var = 0..NVARS;
    prop_oneof![
        (var.clone(), var.clone(), 0..OPS.len(), arb_operand())
            .prop_map(|(dst, a, op, b)| Stmt::Assign { dst, a, op, b }),
        (var.clone(), var.clone(), var.clone()).prop_map(|(dst, a, b)| Stmt::Cond { dst, a, b }),
        (var.clone(), var.clone(), 0..OPS.len(), 1u8..6).prop_map(|(dst, a, op, n)| Stmt::Loop {
            dst,
            a,
            op,
            n
        }),
        (var.clone(), var.clone(), var).prop_map(|(dst, a, b)| Stmt::Mem { dst, a, b }),
    ]
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0..NVARS).prop_map(Operand::Var),
        any::<i16>().prop_map(Operand::Const),
    ]
}

/// Renders a generated program. Shift amounts are masked in-source so the
/// program has the same meaning at every level (shifts beyond the datapath
/// width are target-defined, which is fine, but keeping them small makes
/// failures easier to read).
fn render(init: &[i16], stmts: &[Stmt]) -> String {
    let mut src = String::from("int arr[8];\nvoid main() {\n");
    for (i, v) in init.iter().enumerate() {
        src.push_str(&format!("    int v{i} = {v};\n"));
    }
    for (k, s) in stmts.iter().enumerate() {
        match s {
            Stmt::Assign { dst, a, op, b } => {
                let rhs = match b {
                    Operand::Var(v) => format!("v{v}"),
                    Operand::Const(c) => format!("({c})"),
                };
                let rhs = if OPS[*op] == "<<" || OPS[*op] == ">>" {
                    format!("({rhs} & 15)")
                } else {
                    rhs
                };
                src.push_str(&format!("    v{dst} = v{a} {} {rhs};\n", OPS[*op]));
            }
            Stmt::Cond { dst, a, b } => {
                src.push_str(&format!(
                    "    if (v{a} < v{b}) v{dst} = v{a} + 1; else v{dst} = v{b} - v{dst};\n"
                ));
            }
            Stmt::Loop { dst, a, op, n } => {
                let ops = OPS[*op];
                let step = if ops == "<<" || ops == ">>" {
                    format!("(v{a} & 3)")
                } else {
                    format!("v{a}")
                };
                src.push_str(&format!(
                    "    for (int i{k} = 0; i{k} < {n}; i{k} = i{k} + 1) v{dst} = v{dst} {ops} {step};\n"
                ));
            }
            Stmt::Mem { dst, a, b } => {
                src.push_str(&format!(
                    "    arr[v{a} & 7] = v{a};\n    v{dst} = arr[v{b} & 7];\n"
                ));
            }
        }
    }
    for i in 0..NVARS {
        src.push_str(&format!("    out(v{i});\n"));
    }
    src.push_str("}\n");
    src
}

fn run(src: &str, profile: Profile, level: OptLevel) -> Vec<u64> {
    let compiled = Compiler::new(profile, level)
        .compile(src)
        .unwrap_or_else(|e| panic!("generated program failed to compile: {e}\n{src}"));
    let mut emu = Emulator::new(&compiled.program);
    let out = emu
        .run(5_000_000)
        .unwrap_or_else(|t| panic!("generated program trapped: {t}\n{src}"));
    assert!(out.completed, "generated program did not halt:\n{src}");
    out.output
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_levels_agree_on_random_programs(
        init in prop::collection::vec(any::<i16>(), NVARS),
        stmts in prop::collection::vec(arb_stmt(), 1..14),
        a64 in any::<bool>(),
    ) {
        let profile = if a64 { Profile::A64 } else { Profile::A32 };
        let src = render(&init, &stmts);
        let golden = run(&src, profile, OptLevel::O0);
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let out = run(&src, profile, level);
            prop_assert_eq!(&out, &golden, "{} diverged from O0 on:\n{}", level, src);
        }
    }

    /// The IR verifier accepts every prefix of the optimization pipeline
    /// on random programs: `with_verify(true)` re-runs the verifier after
    /// every individual pass application (and after register allocation),
    /// so one clean compile certifies each intermediate IR state, not just
    /// the final one.
    #[test]
    fn verifier_accepts_every_pipeline_prefix(
        init in prop::collection::vec(any::<i16>(), NVARS),
        stmts in prop::collection::vec(arb_stmt(), 1..12),
    ) {
        let src = render(&init, &stmts);
        for profile in [Profile::A32, Profile::A64] {
            for level in OptLevel::ALL {
                Compiler::new(profile, level)
                    .with_verify(true)
                    .compile(&src)
                    .unwrap_or_else(|e| panic!("compile failed at {level}: {e}\n{src}"));
            }
        }
    }

    /// The simulator also agrees with the emulator on random programs
    /// (a cross-crate property covering pipeline corner cases the curated
    /// suites may miss).
    #[test]
    fn sim_matches_emulator_on_random_programs(
        init in prop::collection::vec(any::<i16>(), NVARS),
        stmts in prop::collection::vec(arb_stmt(), 1..10),
    ) {
        // Note: softerr-sim is a dev-dependency direction we cannot take
        // (cycle: sim already dev-depends on cc), so this property lives in
        // the sim crate's tests; here we only pin emulator determinism.
        let src = render(&init, &stmts);
        let a = run(&src, Profile::A64, OptLevel::O2);
        let b = run(&src, Profile::A64, OptLevel::O2);
        prop_assert_eq!(a, b);
    }
}
